"""Wire-codec ablation — compression vs loss drift, and the auto regime.

Two workloads on byte-dominated hardware (the replication ablation's
100 Mbit/s NICs):

- **embedding** — a push-dominated skip-gram-with-negative-sampling loop
  over dense K-vectors: each pass pulls a snapshot of the 2V embedding
  rows once, then pushes one dense add-mode gradient per touched vector
  per pair (1 center + 1 positive + ``N_NEGATIVE`` negatives).  Dense
  gradient pushes are exactly the traffic the lossy codecs are built for:
  ``topk`` ships the largest coordinates and carries the rest in its
  error-feedback residual, ``int8``/``fp16`` quantize.  The ablation
  sweeps {off, fp16, int8, topk} and asserts the PR-8 acceptance bar:
  >= 2x total-wire-byte reduction for topk and int8 with final-loss
  drift <= 15% of the codec-off (BSP-exact) baseline.

- **fig09-style LR** — the sparse-classification training loop of the
  Figure 9/10 pipelines, run codec-off vs ``wire_codec="auto"``.  This
  is the *cost-model* demonstration: on the slow NICs the model chooses
  quantization per message (bytes drop, drift stays bounded); on default
  fast NICs the same "auto" run decides identity everywhere and is
  bit-identical to off — compression is a regime decision, not a knob.
"""

import os

import numpy as np
import pytest

from benchmarks._common import emit, run_once
from repro.config import ClusterConfig, NetworkSpec, NodeSpec
from repro.core.context import PS2Context
from repro.data.synth import sparse_classification
from repro.experiments import format_table
from repro.ml.deepwalk import build_embeddings
from repro.ml.linear import train_linear_ps2
from repro.ml.losses import sigmoid

# CI's benchmark-smoke job runs the ablation at reduced scale
# (REPRO_BENCH_ITERATIONS=4); the shape assertions hold at any scale.
PASSES = int(os.environ.get("REPRO_BENCH_ITERATIONS", "10"))

#: Byte-dominated hardware (same regime as the replication ablation).
NODE = dict(flops=2e11, nic_bandwidth=1.25e7)
NET = dict(latency=1e-5, bandwidth=1.25e7)

EMBED_CODECS = ("off", "fp16", "int8", "topk")
N_VERTICES, EMBED_DIM = 24, 128
PAIRS_PER_PASS, N_NEGATIVE = 36, 5
LEARNING_RATE = 0.05


def _make_context(wire_codec, slow=True):
    specs = dict(node=NodeSpec(**NODE), network=NetworkSpec(**NET)) \
        if slow else {}
    config = ClusterConfig(n_executors=2, n_servers=2, seed=13,
                           wire_codec=wire_codec, **specs)
    return PS2Context(config=config)


def _codec_stats(metrics):
    decisions = getattr(metrics, "codec_decisions", {})
    return {
        "decisions": dict(decisions),
        "non_identity": sum(count for (_tag, codec), count
                            in decisions.items() if codec != "identity"),
        "bytes_saved": sum(
            getattr(metrics, "codec_bytes_saved", {}).values()
        ),
    }


# -- the embedding workload ---------------------------------------------------


def _embedding_run(wire_codec):
    """SGNS over dense embedding rows: snapshot pulls + gradient pushes."""
    ctx = _make_context(wire_codec)
    embeddings = build_embeddings(ctx, N_VERTICES, EMBED_DIM, scale=0.5)
    rng = np.random.default_rng(13)
    final_loss = 0.0
    for _pass in range(PASSES):
        snapshot = np.stack([row.pull() for row in embeddings])
        loss_sum, count = 0.0, 0
        for _pair in range(PAIRS_PER_PASS):
            u = int(rng.integers(N_VERTICES))
            positive = int(rng.integers(N_VERTICES))
            grad_u = np.zeros(EMBED_DIM)
            contexts = [(positive, 1.0)] + [
                (int(rng.integers(N_VERTICES)), 0.0)
                for _ in range(N_NEGATIVE)
            ]
            for vertex, target in contexts:
                y = snapshot[vertex + N_VERTICES]
                prob = float(sigmoid(np.asarray(np.dot(snapshot[u], y))))
                coeff = LEARNING_RATE * (target - prob)
                grad_u += coeff * y
                grad_y = coeff * snapshot[u]
                embeddings[vertex + N_VERTICES].add(grad_y, defer=False)
                snapshot[vertex + N_VERTICES] += grad_y
                loss_sum += -np.log(max(prob if target else 1.0 - prob,
                                        1e-9))
                count += 1
            embeddings[u].add(grad_u, defer=False)
            snapshot[u] += grad_u
        final_loss = loss_sum / count
    metrics = ctx.cluster.metrics
    return {
        "loss": final_loss,
        "wire_bytes": metrics.total_bytes(),
        "makespan": ctx.elapsed(),
        "codec": _codec_stats(metrics),
    }


# -- the fig09-style LR workload ----------------------------------------------


def _lr_run(wire_codec, slow=True):
    ctx = _make_context(wire_codec, slow=slow)
    rows, _ = sparse_classification(200, 2048, 32, seed=13)
    result = train_linear_ps2(
        ctx, rows, 2048, optimizer="sgd", n_iterations=2,
        batch_fraction=0.25, seed=13,
    )
    metrics = ctx.cluster.metrics
    return {
        "losses": [loss for _t, loss in result.history],
        "wire_bytes": metrics.total_bytes(),
        "makespan": ctx.elapsed(),
        "codec": _codec_stats(metrics),
    }


def _sweep():
    return {
        "embedding": {codec: _embedding_run(codec)
                      for codec in EMBED_CODECS},
        "lr": {
            "off": _lr_run("off"),
            "auto": _lr_run("auto"),
            "fast_off": _lr_run("off", slow=False),
            "fast_auto": _lr_run("auto", slow=False),
        },
    }


@pytest.mark.benchmark(group="ablation")
def test_codec_ablation(benchmark):
    outcomes = run_once(benchmark, _sweep)
    embed = outcomes["embedding"]
    lr = outcomes["lr"]

    off = embed["off"]
    table = []
    for codec in EMBED_CODECS:
        run = embed[codec]
        reduction = off["wire_bytes"] / run["wire_bytes"]
        drift = abs(run["loss"] - off["loss"]) / abs(off["loss"])
        table.append((codec, "%.0f" % run["wire_bytes"],
                      "%.2fx" % reduction, "%.6f" % run["loss"],
                      "%.4f" % drift, run["codec"]["non_identity"]))
        benchmark.extra_info["embed_%s_reduction" % codec] = \
            round(reduction, 2)
        benchmark.extra_info["embed_%s_drift" % codec] = round(drift, 4)
    text = format_table(
        ["codec", "wire bytes", "reduction", "final loss", "loss drift",
         "compressed msgs"],
        table,
        title="Codec ablation: SGNS embedding (push-dominated, slow NIC)",
    )

    auto_saving = 1.0 - lr["auto"]["wire_bytes"] / lr["off"]["wire_bytes"]
    text += "\n\nLR (fig09-style) under the cost model:"
    text += "\n  slow NIC: auto wire bytes %.0f vs off %.0f (%.1f%% saved, " \
        "%d compressed messages)" % (
            lr["auto"]["wire_bytes"], lr["off"]["wire_bytes"],
            100.0 * auto_saving, lr["auto"]["codec"]["non_identity"])
    text += "\n  fast NIC: auto wire bytes %.0f vs off %.0f " \
        "(identity everywhere: %d compressed messages)" % (
            lr["fast_auto"]["wire_bytes"], lr["fast_off"]["wire_bytes"],
            lr["fast_auto"]["codec"]["non_identity"])
    emit("ablation_codecs", text)

    # The acceptance bar: >= 2x wire reduction for the sparsifier and the
    # 8-bit quantizer, with bounded loss drift, on the embedding workload.
    for codec in ("topk", "int8"):
        run = embed[codec]
        assert off["wire_bytes"] / run["wire_bytes"] >= 2.0, codec
        assert abs(run["loss"] - off["loss"]) <= 0.15 * abs(off["loss"]), \
            codec
        assert run["codec"]["non_identity"] > 0
        assert run["codec"]["bytes_saved"] > 0
    # fp16 compresses too (smaller win, tighter drift).
    assert embed["fp16"]["wire_bytes"] < off["wire_bytes"]
    assert abs(embed["fp16"]["loss"] - off["loss"]) <= \
        0.15 * abs(off["loss"])
    # The off run never consulted a codec.
    assert off["codec"]["decisions"] == {}

    # Cost-model regime on LR: slow NIC -> the model compresses and bytes
    # drop; fast NIC -> the same auto run chooses identity per message and
    # stays bit-identical to off (losses, bytes, makespan).
    assert lr["auto"]["codec"]["non_identity"] > 0
    assert lr["auto"]["wire_bytes"] < lr["off"]["wire_bytes"]
    assert lr["fast_auto"]["codec"]["non_identity"] == 0
    assert lr["fast_auto"]["codec"]["decisions"]  # it did run and decide
    assert lr["fast_auto"]["losses"] == lr["fast_off"]["losses"]
    assert lr["fast_auto"]["wire_bytes"] == lr["fast_off"]["wire_bytes"]
    assert lr["fast_auto"]["makespan"] == lr["fast_off"]["makespan"]
