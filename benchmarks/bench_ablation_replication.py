"""Hot-key replication ablation — Zipf-skewed LR, replication off vs on.

Runs the same train-then-serve LR pipeline twice on identical hardware:
once with ``ClusterConfig.replication="off"`` and once with the NuPS-style
hot-key manager enabled (``"topk"``).  The dataset's feature popularity is
Zipf-skewed (low indices dominate, as in CTR data), so under the column
layout one server owns the hot head of the feature range and serves about
half of all pull traffic — the single-server hotspot of Figure 4.

Expected shape, asserted below:

- **bit-identical losses** — replicas are kept in lockstep by synchronous
  fan-out, so turning replication on must not change a single float of the
  training/serving history;
- **lower makespan with replication on** — serve passes are pure reads,
  and the read router spreads the hot shard's pulls over
  ``1 + replication_factor`` queues;
- **lower max/mean per-server byte ratio** — the wire volume itself moves
  off the hot server, not just the latency.

The regime is deliberately byte-dominated (slow NICs, low latency, fast
CPUs): replication trades extra messages (fan-out, migration) for fewer
bytes on the hottest NIC, so its win only materializes where per-byte
costs outweigh per-message fixed costs — see the DESIGN.md §11 notes on
the cost model.
"""

import os

import pytest

from benchmarks._common import emit, run_once
from repro.config import ClusterConfig, NetworkSpec, NodeSpec
from repro.core.context import PS2Context
from repro.data.synth import sparse_classification
from repro.experiments import format_table
from repro.ml.linear import serve_linear_ps2, train_linear_ps2

# CI's benchmark-smoke job runs the ablation at reduced scale
# (REPRO_BENCH_ITERATIONS=4); the shape assertions hold at any scale.
SERVE_PASSES = int(os.environ.get("REPRO_BENCH_ITERATIONS", "10"))

TRAIN_ITERATIONS = 2
N_ROWS, DIM, NNZ = 800, 8192, 64

#: Byte-dominated hardware: 100 Mbit/s NICs, 10 us latency, derated only
#: lightly on compute so the hot NIC queue — not the CPUs — bounds stages.
NODE = dict(flops=2e11, nic_bandwidth=1.25e7)
NET = dict(latency=1e-5, bandwidth=1.25e7)


def _make_context(replication):
    config = ClusterConfig(
        n_executors=16,
        n_servers=8,
        seed=7,
        node=NodeSpec(**NODE),
        network=NetworkSpec(**NET),
        replication=replication,
        hot_key_fraction=0.125,
        replication_factor=3,
    )
    return PS2Context(config=config)


def _run(replication):
    ctx = _make_context(replication)
    rows, _ = sparse_classification(N_ROWS, DIM, NNZ, seed=7)
    trained = train_linear_ps2(
        ctx, rows, DIM, optimizer="sgd", n_iterations=TRAIN_ITERATIONS,
        batch_fraction=0.25, seed=7, pool_rows=2,
    )
    served = serve_linear_ps2(
        ctx, rows, trained.extras["weight"], n_passes=SERVE_PASSES,
    )
    metrics = ctx.cluster.metrics
    per_server = [
        metrics.bytes_sent.get(node_id, 0.0)
        + metrics.bytes_received.get(node_id, 0.0)
        for node_id in ctx.cluster.servers
    ]
    mean = sum(per_server) / len(per_server)
    return {
        "losses": [loss for _t, loss in trained.history + served.history],
        "makespan": ctx.elapsed(),
        "byte_ratio": max(per_server) / mean if mean else 0.0,
        "replica_reads": metrics.counters.get("replica-reads", 0),
        "fan_outs": metrics.counters.get("replica-fanouts", 0),
        "promotions": metrics.counters.get("replica-promotions", 0),
        "migration_bytes": metrics.bytes_for_tag("replica-migrate"),
    }


def _sweep():
    return {"off": _run("off"), "topk": _run("topk")}


@pytest.mark.benchmark(group="ablation")
def test_replication_ablation(benchmark):
    outcomes = run_once(benchmark, _sweep)
    off, on = outcomes["off"], outcomes["topk"]

    table = [
        (label, "%.6f s" % o["makespan"], "%.3f" % o["byte_ratio"],
         o["replica_reads"], o["fan_outs"], "%.0f" % o["migration_bytes"])
        for label, o in (("off", off), ("topk", on))
    ]
    text = format_table(
        ["replication", "makespan", "max/mean bytes", "replica reads",
         "fan-outs", "migration B"],
        table,
    )
    text += "\nmakespan win: %.1f%%" % (
        100.0 * (1.0 - on["makespan"] / off["makespan"])
    )
    emit("ablation_replication", text)

    benchmark.extra_info["off_makespan"] = off["makespan"]
    benchmark.extra_info["topk_makespan"] = on["makespan"]
    benchmark.extra_info["off_byte_ratio"] = off["byte_ratio"]
    benchmark.extra_info["topk_byte_ratio"] = on["byte_ratio"]

    # Replication must never change the math: same seed, same floats.
    assert on["losses"] == off["losses"]
    # The manager actually engaged on this workload.
    assert on["promotions"] > 0 and on["replica_reads"] > 0
    # ... and paid off: lower makespan AND lower byte skew.
    assert on["makespan"] < off["makespan"]
    assert on["byte_ratio"] < off["byte_ratio"]
    # The off run is bit-wise oblivious to the feature existing.
    assert off["replica_reads"] == 0 and off["fan_outs"] == 0
