"""Figure 10 — end-to-end LR-SGD comparison (Section 6.3.1).

PS2 vs DistML vs Spark MLlib vs Petuum on KDDB and KDD12 analogues, 20
executors/servers.  Paper: PS2 converges fastest (1.6x / 2.3x over Petuum),
MLlib slowest, DistML fails to converge on KDDB.  (The paper omits CTR here
because Petuum could not be deployed and DistML crashed.)
"""

import numpy as np
import pytest

from benchmarks._common import emit, run_once
from repro.baselines import train_lr_distml, train_lr_mllib, train_lr_petuum
from repro.data import dataset, spec
from repro.experiments import format_table, make_context
from repro.ml import train_logistic_regression
from repro.ml.optim import SGD

ITERATIONS = 20


#: The paper's 0.618 suits its 1000x larger batches; the scaled analogues
#: need a proportionally larger step to make visible progress in 20 rounds.
LEARNING_RATE = 2.0


def _race(name, seed):
    rows = dataset(name, seed=seed)
    dim = spec(name).params["dim"]
    kwargs = dict(n_iterations=ITERATIONS, batch_fraction=0.3, seed=seed)
    ps2 = train_logistic_regression(
        make_context(seed=seed), rows, dim,
        optimizer=SGD(learning_rate=LEARNING_RATE), system="PS2", **kwargs,
    )
    petuum = train_lr_petuum(make_context(seed=seed), rows, dim,
                             learning_rate=LEARNING_RATE, **kwargs)
    mllib = train_lr_mllib(
        make_context(seed=seed), rows, dim, optimizer="sgd",
        learning_rate=LEARNING_RATE, **kwargs,
    )
    distml = train_lr_distml(make_context(seed=seed), rows, dim,
                             learning_rate=LEARNING_RATE, **kwargs)
    return {"dataset": spec(name).name, "runs": [ps2, petuum, mllib, distml]}


@pytest.mark.benchmark(group="fig10")
def test_fig10_lr_end_to_end(benchmark):
    def run():
        return [_race("kddb", seed=7), _race("kdd12", seed=7)]

    outcomes = run_once(benchmark, run)
    table = []
    for outcome in outcomes:
        ps2, petuum, mllib, distml = outcome["runs"]
        # Petuum's per-worker normalization differs microscopically from
        # the global average; race to a loss every synchronized system hits.
        target = max(ps2.final_loss, petuum.final_loss, mllib.final_loss) \
            + 1e-6
        table.append((
            outcome["dataset"],
            "%.4f s" % ps2.time_to(target),
            "%.4f s" % petuum.time_to(target),
            "%.4f s" % mllib.time_to(target),
            ("%.4f" % distml.final_loss) + " (no converge)",
            "%.2fx" % (petuum.time_to(target) / ps2.time_to(target)),
        ))
        benchmark.extra_info["%s_petuum_over_ps2" % outcome["dataset"]] = \
            round(petuum.time_to(target) / ps2.time_to(target), 2)

        # Shape assertions: PS2 < Petuum < MLlib; identical losses for the
        # synchronized systems; DistML stuck near log(2).
        assert ps2.time_to(target) < petuum.time_to(target) \
            < mllib.time_to(target)
        assert petuum.final_loss == pytest.approx(ps2.final_loss, abs=2e-3)
        assert mllib.final_loss == pytest.approx(ps2.final_loss, rel=1e-9)
        distml_floor = min(l for _t, l in distml.history)
        assert distml_floor > 0.8 * np.log(2)
        assert ps2.final_loss < 0.97 * np.log(2)
        if outcome["dataset"] == "KDDB":
            # Figure 10(a)'s specific claim: DistML never reaches the loss
            # the synchronized systems converge to on KDDB.
            assert ps2.final_loss < distml_floor

    text = format_table(
        ["dataset", "PS2", "Petuum", "SparkMLlib", "DistML final loss",
         "Petuum/PS2 (paper 1.6x-2.3x)"],
        table,
        title="Figure 10: time to PS2's final training loss (LR with SGD)",
    )
    emit("fig10_lr_end2end", text)
