"""Figure 9(a,b) — effectiveness of DCV on LR with Adam (Section 6.2.1).

Three realizations of the same Adam-for-LR computation on KDDB and CTR
analogues: Spark-Adam (driver-centric), PS-Adam (parameter server with
pull/push only) and PS2-Adam (DCVs with server-side update).  The paper
reports, to a fixed training loss, PS2 beating Spark by 15.7x (KDDB) /
55.6x (CTR) and PS by 4.7x / 5x.
"""

import os

import pytest

from benchmarks._common import emit, run_once
from repro.baselines import train_lr_mllib, train_lr_ps_pushpull
from repro.data import dataset, spec
from repro.experiments import format_speedup, format_table, make_context
from repro.ml import train_logistic_regression

# CI's benchmark-smoke job runs this figure at reduced scale (fewer Adam
# iterations) so perf-path regressions fail fast; the paper-shape
# assertions below hold at any scale >= 3.
ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "10"))


def _compare(name, seed):
    rows = dataset(name, seed=seed)
    dim = spec(name).params["dim"]
    kwargs = dict(n_iterations=ITERATIONS, batch_fraction=0.1, seed=seed)
    ps2 = train_logistic_regression(
        make_context(seed=seed), rows, dim, optimizer="adam",
        system="PS2-Adam", **kwargs,
    )
    ps = train_lr_ps_pushpull(
        make_context(seed=seed), rows, dim, optimizer="adam", **kwargs,
    )
    spark = train_lr_mllib(
        make_context(seed=seed), rows, dim, optimizer="adam",
        system="Spark-Adam", **kwargs,
    )
    # All three follow the same loss trajectory; compare time to the loss
    # the slowest-converging point all runs reach.
    target = ps2.history[-1][1]
    return {
        "dataset": spec(name).name,
        "results": [ps2, ps, spark],
        "target": target,
        "t_ps2": ps2.time_to(target),
        "t_ps": ps.time_to(target),
        "t_spark": spark.time_to(target),
    }


@pytest.mark.benchmark(group="fig09")
def test_fig09ab_dcv_effect_on_lr(benchmark):
    def run():
        return [_compare("kddb", seed=5), _compare("ctr", seed=5)]

    outcomes = run_once(benchmark, run)
    table = []
    for outcome in outcomes:
        ps_speedup = outcome["t_ps"] / outcome["t_ps2"]
        spark_speedup = outcome["t_spark"] / outcome["t_ps2"]
        table.append((
            outcome["dataset"],
            "%.4f s" % outcome["t_ps2"],
            "%.4f s" % outcome["t_ps"],
            "%.4f s" % outcome["t_spark"],
            format_speedup(ps_speedup),
            format_speedup(spark_speedup),
        ))
        benchmark.extra_info["%s_vs_ps" % outcome["dataset"]] = \
            round(ps_speedup, 2)
        benchmark.extra_info["%s_vs_spark" % outcome["dataset"]] = \
            round(spark_speedup, 2)

    text = format_table(
        ["dataset", "PS2-Adam", "PS-Adam", "Spark-Adam",
         "PS/PS2 (paper 4.7x-5x)", "Spark/PS2 (paper 15.7x-55.6x)"],
        table,
        title="Figure 9(a,b): time to common training loss",
    )
    emit("fig09ab_dcv_lr", text)

    for outcome in outcomes:
        # Shape: PS2 < PS < Spark, with meaningful margins.
        assert outcome["t_ps2"] < outcome["t_ps"] < outcome["t_spark"]
        assert outcome["t_ps"] / outcome["t_ps2"] > 2.0
        assert outcome["t_spark"] / outcome["t_ps2"] > 5.0
    # CTR (the much bigger model) shows the larger Spark gap, as in the paper.
    assert (outcomes[1]["t_spark"] / outcomes[1]["t_ps2"]) > \
        (outcomes[0]["t_spark"] / outcomes[0]["t_ps2"])
