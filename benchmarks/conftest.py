"""Benchmark-runner options: ``--obs-trace`` / ``--obs-trace-out``.

``pytest benchmarks/... --obs-trace`` enables span tracing for every simulated
cluster a benchmark constructs.  After each benchmark, the traced contexts
are exported as one merged chrome-trace JSON plus an ``*_obs.txt``
breakdown (latency percentiles, server utilization, hot shards) next to
the benchmark's regular results under ``benchmarks/results/``.

Tracing never perturbs the cost model (spans only read the virtual
clocks), so traced and untraced benchmark numbers are identical.
"""

from __future__ import annotations

import re

import pytest

from benchmarks import _common


def pytest_addoption(parser):
    group = parser.getgroup("repro observability")
    group.addoption(
        "--obs-trace", action="store_true", default=False,
        help="record spans in every simulated cluster and export chrome "
             "traces + observability reports next to benchmark results",
    )
    group.addoption(
        "--obs-trace-out", default=None,
        help="explicit chrome-trace output path (default: "
             "benchmarks/results/<benchmark>.trace.json)",
    )


@pytest.fixture(autouse=True)
def _obs_trace(request):
    """Enable construction-time tracing around each benchmark under --obs-trace."""
    from repro import obs

    if not request.config.getoption("--obs-trace"):
        yield
        return
    obs.set_default_tracing(True)
    obs.drain_traced_clusters()
    try:
        yield
    finally:
        obs.set_default_tracing(False)
        clusters = obs.drain_traced_clusters()
        name = re.sub(r"\W+", "_", request.node.name).strip("_")
        _common.emit_observability(
            name, clusters, trace_out=request.config.getoption("--obs-trace-out")
        )
