"""Benchmark-runner capture: BENCH records + ``--obs-trace`` exports.

Every benchmark run emits a structured ``BENCH_<name>.json`` next to its
regular results under ``benchmarks/results/`` (and appends a one-line
summary to ``benchmarks/results/trajectory.jsonl``): the capture fixture
registers every simulated cluster a benchmark constructs, times the host
wall clock around the benchmark, and serializes makespans, wire bytes,
latency summaries, imbalance ratios and cache hit rates per context.
``python -m repro bench-gate`` compares those records against the
checked-in baselines in ``benchmarks/baselines/``.

``pytest benchmarks/... --obs-trace`` additionally enables span tracing
for every simulated cluster.  After each benchmark, the traced contexts
are exported as one merged chrome-trace JSON plus an ``*_obs.txt``
breakdown (latency percentiles, server utilization, hot shards,
critical-path attribution), and the BENCH record gains a per-context
``critical_path`` section.

Neither capture perturbs the cost model (spans and records only read the
virtual clocks), so instrumented and plain benchmark numbers are
identical.
"""

from __future__ import annotations

import re
import time

import pytest

from benchmarks import _common


def pytest_addoption(parser):
    group = parser.getgroup("repro observability")
    group.addoption(
        "--obs-trace", action="store_true", default=False,
        help="record spans in every simulated cluster and export chrome "
             "traces + observability reports next to benchmark results",
    )
    group.addoption(
        "--obs-trace-out", default=None,
        help="explicit chrome-trace output path (default: "
             "benchmarks/results/<benchmark>.trace.json)",
    )


@pytest.fixture(autouse=True)
def _obs_capture(request):
    """Capture every simulated cluster a benchmark builds into a BENCH
    record (always) and chrome-trace/report exports (under --obs-trace)."""
    from repro import obs

    traced = request.config.getoption("--obs-trace")
    if traced:
        obs.set_default_tracing(True)
        obs.drain_traced_clusters()
    obs.set_bench_capture(True)
    obs.drain_bench_clusters()
    started = time.perf_counter()
    try:
        yield
    finally:
        wall_seconds = time.perf_counter() - started
        obs.set_bench_capture(False)
        captured = obs.drain_bench_clusters()
        name = re.sub(r"\W+", "_", request.node.name).strip("_")
        if traced:
            obs.set_default_tracing(False)
            obs.drain_traced_clusters()
            _common.emit_observability(
                name, captured,
                trace_out=request.config.getoption("--obs-trace-out"),
            )
        _common.emit_bench(name, captured, wall_seconds)
