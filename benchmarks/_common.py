"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs the
experiment once under ``benchmark.pedantic`` (the simulation is
deterministic — repeated timing only measures the host, not the system
under study), prints the regenerated rows/series, and persists them under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name, text):
    """Print a result block and persist it to benchmarks/results/<name>.txt."""
    banner = "\n=== %s ===\n" % name
    print(banner + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.txt" % name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


def run_once(benchmark, fn):
    """Execute *fn* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit_observability(name, clusters, trace_out=None):
    """Export traced *clusters* of one benchmark: chrome trace + breakdown.

    Called by the ``--trace`` autouse fixture in ``benchmarks/conftest.py``
    after a benchmark finishes.  Writes one merged chrome-trace JSON (one
    process block per traced context) and one ``<name>_obs.txt`` report
    next to the benchmark's regular results.
    """
    import json

    from repro.obs import render_report, to_chrome_trace

    if not clusters:
        return None
    labeled = [("ctx%d" % i, c.tracer) for i, c in enumerate(clusters)]
    document = to_chrome_trace(labeled)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    trace_path = trace_out or os.path.join(
        RESULTS_DIR, "%s.trace.json" % name
    )
    with open(trace_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)

    reports = [
        render_report(cluster, title="%s / ctx%d" % (name, index))
        for index, cluster in enumerate(clusters)
    ]
    emit(name + "_obs", "\n\n".join(reports)
         + "\nchrome trace: %s" % trace_path)
    return trace_path
