"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs the
experiment once under ``benchmark.pedantic`` (the simulation is
deterministic — repeated timing only measures the host, not the system
under study), prints the regenerated rows/series, and persists them under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name, text):
    """Print a result block and persist it to benchmarks/results/<name>.txt."""
    banner = "\n=== %s ===\n" % name
    print(banner + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.txt" % name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


def run_once(benchmark, fn):
    """Execute *fn* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit_observability(name, clusters, trace_out=None):
    """Export traced *clusters* of one benchmark: chrome trace + breakdown.

    Called by the ``--trace`` autouse fixture in ``benchmarks/conftest.py``
    after a benchmark finishes.  Writes one merged chrome-trace JSON (one
    process block per traced context, plus counter tracks for any context
    with the time-series sampler enabled) and one ``<name>_obs.txt`` report
    next to the benchmark's regular results.
    """
    import json

    from repro.obs import render_report, timeseries_counter_events, \
        to_chrome_trace

    if not clusters:
        return None
    labeled = [("ctx%d" % i, c.tracer) for i, c in enumerate(clusters)]
    document = to_chrome_trace(labeled)
    counter_pid = 1000
    for index, cluster in enumerate(clusters):
        sampler = getattr(cluster, "timeseries", None)
        if sampler is not None:
            sampler.finalize()
            document["traceEvents"].extend(timeseries_counter_events(
                sampler, counter_pid,
                process_name="ctx%d/timeseries" % index,
            ))
            counter_pid += 1
    os.makedirs(RESULTS_DIR, exist_ok=True)
    trace_path = trace_out or os.path.join(
        RESULTS_DIR, "%s.trace.json" % name
    )
    with open(trace_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)

    reports = [
        render_report(cluster, title="%s / ctx%d" % (name, index))
        for index, cluster in enumerate(clusters)
    ]
    emit(name + "_obs", "\n\n".join(reports)
         + "\nchrome trace: %s" % trace_path)
    return trace_path


def bench_params():
    """The knob dict that must match for two BENCH records to compare.

    The benchmarks all read ``REPRO_BENCH_ITERATIONS`` (default 10), so
    that one knob identifies the configuration: the CI gate only compares
    records whose params equal the checked-in baselines' params.
    """
    return {"iterations": int(os.environ.get("REPRO_BENCH_ITERATIONS", "10"))}


def emit_bench(name, clusters, wall_seconds):
    """Write ``BENCH_<name>.json`` + trajectory line for one benchmark.

    Called by the autouse capture fixture with every simulated cluster the
    benchmark constructed.  Traced contexts carry a critical-path
    breakdown; before serializing, every traced stage is checked for the
    walk's partition invariant — categories must sum to the stage makespan
    within 1% — so a broken DAG fails the benchmark run instead of
    producing a silently wrong artifact.
    """
    from repro.obs import bench, critical_path

    if not clusters:
        return None
    for index, cluster in enumerate(clusters):
        if not (cluster.tracer.enabled and cluster.tracer.spans):
            continue
        for span, result in critical_path.stage_breakdowns(cluster.tracer):
            attributed = sum(result.categories.values())
            if span.duration > 0 and \
                    abs(attributed - span.duration) > 0.01 * span.duration:
                raise AssertionError(
                    "%s ctx%d %s: critical-path categories sum to %.6f s "
                    "but the stage makespan is %.6f s (>1%% apart)"
                    % (name, index, span.op, attributed, span.duration)
                )
    record = bench.bench_record(name, clusters, params=bench_params(),
                                wall_seconds=wall_seconds)
    path = bench.write_record(record, RESULTS_DIR)
    bench.append_trajectory(
        record, os.path.join(RESULTS_DIR, "trajectory.jsonl")
    )
    return path
