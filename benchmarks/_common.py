"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs the
experiment once under ``benchmark.pedantic`` (the simulation is
deterministic — repeated timing only measures the host, not the system
under study), prints the regenerated rows/series, and persists them under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name, text):
    """Print a result block and persist it to benchmarks/results/<name>.txt."""
    banner = "\n=== %s ===\n" % name
    print(banner + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.txt" % name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


def run_once(benchmark, fn):
    """Execute *fn* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
