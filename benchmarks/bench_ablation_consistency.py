"""Consistency-model ablation — BSP vs SSP(s) vs ASP on LR.

Sweeps the ``ClusterConfig.consistency`` / ``staleness`` knobs over the
same LR workload and reports makespan and final loss per model.  The
expected shape: relaxing the model monotonically shrinks the makespan
(each relaxation strictly weakens the synchronization gates on the same
task timeline), while the final loss drifts away from BSP's as workers
compute gradients on cached, stale weights.

SGD is used rather than Adam: momentum-style optimizers amplify stale
gradients into divergence, which would make the loss column noise rather
than signal.  With SGD the drift stays within ``LOSS_BOUND`` of BSP at
any iteration count the smoke job uses.
"""

import os

import pytest

from benchmarks._common import emit, run_once
from repro.data.synth import sparse_classification
from repro.experiments import format_table, make_context
from repro.ml.linear import train_linear_ps2

# CI's benchmark-smoke job runs the ablation at reduced scale
# (REPRO_BENCH_ITERATIONS=4); the shape assertions hold at any scale.
ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "10"))

# Final-loss drift tolerated vs BSP.  Measured drift with SGD on this
# workload is <= ~0.06 for s <= 3 across 4..20 iterations; 0.15 leaves
# headroom without masking a divergence (Adam-style blowups exceed 1.0).
LOSS_BOUND = 0.15

# (label, consistency, staleness); ASP runs with the same cache bound as
# SSP(3) so the two differ only in the gate, not cache freshness.
MODELS = [
    ("BSP", "bsp", 0),
    ("SSP(1)", "ssp", 1),
    ("SSP(3)", "ssp", 3),
    ("ASP", "asp", 3),
]


def _sweep(seed):
    rows, _ = sparse_classification(200, 64, 12, seed=7)
    outcomes = []
    for label, consistency, staleness in MODELS:
        ctx = make_context(n_executors=4, n_servers=3, seed=seed,
                           consistency=consistency, staleness=staleness)
        result = train_linear_ps2(ctx, rows, 64, n_iterations=ITERATIONS,
                                  seed=1, optimizer="sgd")
        metrics = ctx.cluster.metrics
        hits = sum(metrics.cache_hits.values())
        misses = sum(metrics.cache_misses.values())
        outcomes.append({
            "label": label,
            "makespan": ctx.elapsed(),
            "loss": result.final_loss,
            "hits": hits,
            "misses": misses,
            "waits": metrics.counters.get("staleness-waits", 0),
        })
    return outcomes


@pytest.mark.benchmark(group="ablation")
def test_consistency_ablation(benchmark):
    outcomes = run_once(benchmark, lambda: _sweep(seed=42))

    table = []
    for o in outcomes:
        total = o["hits"] + o["misses"]
        table.append((
            o["label"],
            "%.6f s" % o["makespan"],
            "%.4f" % o["loss"],
            "%.0f%%" % (100.0 * o["hits"] / total if total else 0.0),
            o["waits"],
        ))
        benchmark.extra_info["%s_makespan" % o["label"]] = \
            round(o["makespan"], 6)
    text = format_table(
        ["model", "makespan", "final_loss", "cache_hit_rate", "ssp_waits"],
        table,
        title="Consistency ablation: LR/SGD, %d iterations" % ITERATIONS,
    )
    emit("ablation_consistency", text)

    # Relaxing the model never slows the run down.
    makespans = [o["makespan"] for o in outcomes]
    assert makespans == sorted(makespans, reverse=True) or all(
        a >= b for a, b in zip(makespans, makespans[1:])
    )
    # Strict win somewhere: async must actually beat the barrier.
    assert makespans[-1] < makespans[0]
    # Statistical cost stays bounded: stale gradients drift the loss, but
    # within the documented envelope of the BSP trajectory.
    bsp_loss = outcomes[0]["loss"]
    for o in outcomes[1:]:
        assert abs(o["loss"] - bsp_loss) <= LOSS_BOUND, o
    # Relaxed models actually exercised the worker cache; BSP never did.
    assert outcomes[0]["hits"] == 0 and outcomes[0]["misses"] == 0
    for o in outcomes[1:]:
        assert o["hits"] > 0


@pytest.mark.benchmark(group="ablation")
def test_consistency_ablation_is_deterministic(benchmark):
    """Same seed, two invocations: bit-identical makespans and losses."""
    def run():
        return _sweep(seed=42), _sweep(seed=42)

    first, second = run_once(benchmark, run)
    for a, b in zip(first, second):
        assert a["makespan"] == b["makespan"], a["label"]
        assert a["loss"] == b["loss"], a["label"]
        assert a["hits"] == b["hits"] and a["misses"] == b["misses"]
