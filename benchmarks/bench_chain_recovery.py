"""Fault-tolerance ablation — chained replication vs checkpoint-only recovery.

Replays one open-loop serving stream (Zipf-free uniform reads with a
sprinkle of writes against a lazy table, plus a dense ballast matrix that
makes the crashed server's state non-trivial) three ways on identical
hardware and seed:

- ``baseline``  — chain replication on (M=1), nothing fails;
- ``chain``     — chain on (M=1), the middle server dies mid-serve;
- ``checkpoint``— chain off, same crash: recovery restores the last
  snapshot from simulated stable storage.

Each arm records every request's end-to-end latency (completion minus
open-loop arrival) so the recovery modes are compared where it matters —
the post-crash tail:

- the chain arm drops zero requests and its post-crash p99 stays within
  2x of the no-crash baseline: reads route to the ring successor the
  moment the primary dies, and the one promotion moves shard state at
  NIC speed;
- the checkpoint arm pays a visible pause: the first request that needs
  the dead server stalls behind retry backoff plus a storage-bandwidth
  restore, and open-loop arrivals pile up behind it;
- both crash arms are bit-identical under the seed (rerun asserted).
"""

import os

import numpy as np
import pytest

from benchmarks._common import emit, run_once
from repro.config import ClusterConfig
from repro.core.context import PS2Context
from repro.experiments import format_table

# CI's benchmark-smoke job runs the ablation at reduced scale
# (REPRO_BENCH_ITERATIONS=4); the shape assertions hold at any scale.
ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "10"))

SEED = 23
DIM = 64
N_ITEMS = 256
KEYS = 8
#: Dense ballast rows co-resident on the servers: state the crashed
#: server must get back one way (promotion) or the other (restore).
BALLAST_ROWS = 96
BALLAST_DIM = 4096
#: Requests scale with the iteration knob (ITERATIONS=10 -> 2000);
#: enough post-crash samples that the one-time promotion/resync spike
#: (a handful of requests) sits beyond the 99th percentile.
N_REQUESTS = 200 * ITERATIONS
CRASH_STEP = int(N_REQUESTS * 0.4)
#: Open-loop arrival rate (req/s of virtual time) across 2 workers.
RATE = 500.0
READ_FRACTION = 0.9


def _run_arm(chain_replicas, crash):
    ctx = PS2Context(config=ClusterConfig(
        n_executors=2, n_servers=3, seed=SEED,
        chain_replicas=chain_replicas,
    ))
    cluster = ctx.cluster
    master = ctx.master
    table = master.create_table(DIM, name="serve")
    ballast = master.create_matrix(BALLAST_DIM, n_rows=BALLAST_ROWS,
                                   name="ballast")
    clients = [ctx.client_for(node) for node in cluster.executors]

    # Warm phase: materialize the whole table and the ballast, then
    # snapshot — the state every recovery mode starts from.
    for start in range(0, N_ITEMS, 64):
        clients[0].pull_or_create(table, list(range(start, start + 64)))
    for row in range(BALLAST_ROWS):
        clients[0].push_assign(ballast, row, np.full(BALLAST_DIM, 1.0 + row))
    master.checkpoint_all()
    cluster.barrier()
    start_time = cluster.clock.global_time()

    rng = np.random.default_rng(SEED)
    gaps = rng.exponential(1.0 / RATE, size=N_REQUESTS)
    ids = rng.integers(0, N_ITEMS, size=(N_REQUESTS, KEYS))
    is_read = rng.random(N_REQUESTS) < READ_FRACTION
    arrivals = start_time + np.cumsum(gaps)

    latencies = np.zeros(N_REQUESTS)
    for step in range(N_REQUESTS):
        if crash and step == CRASH_STEP:
            master.servers[1].crash()
        worker = step % len(clients)
        node = cluster.executors[worker]
        cluster.clock.set_at_least(node, arrivals[step])
        request_ids = [int(i) for i in ids[step]]
        if is_read[step]:
            clients[worker].pull_or_create(table, request_ids)
        else:
            values = clients[worker].pull_or_create(table, request_ids)
            clients[worker].push_add(table, request_ids[0],
                                     values[0] * 1e-3)
        latencies[step] = cluster.clock.now(node) - arrivals[step]

    counters = cluster.metrics.counters
    post = latencies[CRASH_STEP:]
    return {
        "latencies": latencies,
        "post_p99": float(np.quantile(post, 0.99)),
        "post_max": float(post.max()),
        "makespan": ctx.elapsed(),
        "dropped": counters.get("client-dropped-ops", 0),
        "recoveries": counters.get("server-recoveries", 0),
        "promotions": counters.get("chain-promotions", 0),
        "fallbacks": counters.get("chain-fallbacks", 0),
        "restores": master.checkpoints.recoveries,
    }


def _sweep():
    return {
        "baseline": _run_arm(1, crash=False),
        "chain": _run_arm(1, crash=True),
        "chain_repeat": _run_arm(1, crash=True),
        "checkpoint": _run_arm(0, crash=True),
    }


@pytest.mark.benchmark(group="ablation")
def test_chain_recovery(benchmark):
    outcomes = run_once(benchmark, _sweep)
    baseline = outcomes["baseline"]
    chain = outcomes["chain"]
    repeat = outcomes["chain_repeat"]
    checkpoint = outcomes["checkpoint"]

    table = [
        (label, "%.6f s" % o["post_p99"], "%.6f s" % o["post_max"],
         "%.6f s" % o["makespan"], o["dropped"],
         o["promotions"], o["restores"])
        for label, o in (("baseline (no crash)", baseline),
                         ("chain M=1 + crash", chain),
                         ("checkpoint-only + crash", checkpoint))
    ]
    text = format_table(
        ["arm", "post-crash p99", "post-crash max", "makespan",
         "dropped", "promotions", "restores"],
        table,
    )
    text += "\nchain post-crash p99 vs baseline: %.2fx" % (
        chain["post_p99"] / baseline["post_p99"])
    text += "\ncheckpoint pause vs chain worst case: %.1fx" % (
        checkpoint["post_max"] / chain["post_max"])
    emit("chain_recovery", text)

    benchmark.extra_info["baseline_post_p99"] = baseline["post_p99"]
    benchmark.extra_info["chain_post_p99"] = chain["post_p99"]
    benchmark.extra_info["checkpoint_post_max"] = checkpoint["post_max"]

    # The chain arm dropped nothing and recovered by promotion alone.
    assert chain["dropped"] == 0
    assert chain["promotions"] >= 1
    assert chain["fallbacks"] == 0 and chain["restores"] == 0
    assert chain["recoveries"] == 1
    # Zero-downtime headline: post-crash p99 within 2x of never crashing.
    assert chain["post_p99"] <= 2.0 * baseline["post_p99"]
    # The checkpoint-only arm took the storage restore and visibly paused.
    assert checkpoint["restores"] == 1
    assert checkpoint["post_max"] > chain["post_max"]
    # Both crash arms served every request correctly all the same.
    assert checkpoint["dropped"] == 0
    # Bit-identical under the seed: the whole crash trajectory replays.
    assert np.array_equal(repeat["latencies"], chain["latencies"])
    assert repeat["makespan"] == chain["makespan"]
    assert repeat["post_p99"] == chain["post_p99"]
