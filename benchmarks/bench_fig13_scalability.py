"""Figure 13(a,b) — scalability of PS2 (Section 6.4).

(a) Resource grid on the CTR analogue: the paper trains with 50w/50s
    (4519 s), 100w/50s (2865 s) and 100w/100s (2199 s) — both more workers
    and more servers help, with ~2.05x for doubled resources.  We sweep
    5/5 -> 10/5 -> 10/10 -> 20/20 with CPUs derated to restore the paper's
    compute-to-overhead ratio (see make_context).

(b) Model-size sweep, 20w/20s: MLlib's per-iteration time degrades ~168x
    over 40K -> 60M features while PS2's grows only 8.5x.

Host throughput: the paper validated on clusters up to 2700 machines; what
keeps this reproduction at laptop scale is how many simulated events the
*host* sustains per wall-clock second.  ``test_fig13_host_throughput``
drives a PS-op storm (dense/sparse row fan-outs + coalesced block ops) over
a 100w/50s fabric and asserts the measured events-per-host-second against
the checked-in floor in ``benchmarks/baselines/`` — the simulator-speedup
regression gate.
"""

import json
import os
import time

import numpy as np
import pytest

from benchmarks._common import bench_params, emit, run_once
from repro.baselines import train_lr_mllib
from repro.data import dataset, spec, sparse_classification
from repro.experiments import format_table, make_context
from repro.ml import train_logistic_regression

RESOURCE_GRID = [(5, 5), (10, 5), (10, 10), (20, 20)]
FEATURE_SWEEP = [400, 30_000, 300_000, 600_000]
ITERATIONS = 5

#: Checked-in floor for simulated-events-per-host-second (regression gate).
THROUGHPUT_FLOOR_PATH = os.path.join(
    os.path.dirname(__file__), "baselines", "fig13_host_throughput_floor.json"
)


@pytest.mark.benchmark(group="fig13")
def test_fig13a_resource_scalability(benchmark):
    def run():
        rows = dataset("ctr", seed=17)
        dim = spec("ctr").params["dim"]
        timings = {}
        for n_executors, n_servers in RESOURCE_GRID:
            result = train_logistic_regression(
                make_context(n_executors=n_executors, n_servers=n_servers,
                             seed=17, node_flops=2e7),
                rows, dim, optimizer="sgd", n_iterations=ITERATIONS,
                batch_fraction=0.5, seed=17,
            )
            timings[(n_executors, n_servers)] = result.elapsed
        return timings

    timings = run_once(benchmark, run)
    base = timings[RESOURCE_GRID[0]]
    table = [
        ("%dw / %ds" % grid, "%.4f s" % timings[grid],
         "%.2fx" % (base / timings[grid]))
        for grid in RESOURCE_GRID
    ]
    doubled = base / timings[(10, 10)]
    text = format_table(
        ["resources", "time (%d iterations)" % ITERATIONS, "speedup vs 5w/5s"],
        table,
        title="Figure 13(a): PS2 scalability on CTR "
              "(paper: ~2.05x for doubled resources)",
    )
    emit("fig13a_scalability", text)
    benchmark.extra_info["doubled_resources_speedup"] = round(doubled, 2)

    # Shape: each step of the grid helps; doubling everything helps a lot.
    assert timings[(10, 5)] < timings[(5, 5)]
    assert timings[(10, 10)] < timings[(10, 5)]
    assert timings[(20, 20)] < timings[(10, 10)]
    assert doubled > 1.4


@pytest.mark.benchmark(group="fig13")
def test_fig13b_model_size_scalability(benchmark):
    def run():
        rows_out = []
        ps2_per_iter = {}
        mllib_per_iter = {}
        for dim in FEATURE_SWEEP:
            data, _ = sparse_classification(400, dim, 20, seed=17)
            # CPUs derated as in 13(a): PS2's dim-proportional server-side
            # work (zero + update kernels over D/S elements) is what grows
            # with model size, and must be visible next to fixed overheads.
            ps2 = train_logistic_regression(
                make_context(seed=17, node_flops=2e7), data, dim,
                optimizer="sgd", n_iterations=ITERATIONS,
                batch_fraction=0.1, seed=17,
            )
            mllib = train_lr_mllib(
                make_context(seed=17, node_flops=2e7), data, dim,
                optimizer="sgd", n_iterations=ITERATIONS,
                batch_fraction=0.1, seed=17,
            )
            ps2_per_iter[dim] = ps2.elapsed / ITERATIONS
            mllib_per_iter[dim] = mllib.elapsed / ITERATIONS
            rows_out.append((
                "%dK" % (dim // 10),
                "%.5f s" % ps2_per_iter[dim],
                "%.5f s" % mllib_per_iter[dim],
            ))
        return rows_out, ps2_per_iter, mllib_per_iter

    rows_out, ps2_per_iter, mllib_per_iter = run_once(benchmark, run)
    small, big = FEATURE_SWEEP[0], FEATURE_SWEEP[-1]
    ps2_growth = ps2_per_iter[big] / ps2_per_iter[small]
    mllib_growth = mllib_per_iter[big] / mllib_per_iter[small]
    text = format_table(
        ["features (paper-scale)", "PS2 time/iter", "MLlib time/iter"],
        rows_out,
        title="Figure 13(b): per-iteration time vs model size "
              "(growth PS2 %.1fx vs MLlib %.1fx; paper: 8.5x vs 168x)"
              % (ps2_growth, mllib_growth),
    )
    emit("fig13b_model_size", text)
    benchmark.extra_info["ps2_growth_x"] = round(ps2_growth, 1)
    benchmark.extra_info["mllib_growth_x"] = round(mllib_growth, 1)

    # Shape: PS2's degradation is far milder than MLlib's.
    assert mllib_growth > 5 * ps2_growth
    assert ps2_growth < 20


@pytest.mark.benchmark(group="fig13")
def test_fig13_host_throughput(benchmark):
    """PS-op storm: how many simulated events the host sustains per second.

    Unlike 13(a)/(b), this cell is deliberately framework-bound — dense and
    sparse row fan-outs plus coalesced block ops over 100 workers / 50
    servers, with next to no ML math — so its events-per-host-second tracks
    the simulator core (NIC timeline bookings, message dispatch, counter
    stamps) rather than numpy kernels.  The measured rate is asserted
    against the checked-in floor so the PR 7 vectorization win cannot
    silently regress.
    """
    iterations = bench_params()["iterations"]

    def run():
        ctx = make_context(n_executors=100, n_servers=50, seed=17)
        dim = 5000
        dense = ctx.dense(dim, rows=16, name="storm-dense")
        sparse = ctx.sparse(dim, rows=4, name="storm-sparse")
        executors = ctx.cluster.executors
        dense_vals = np.full(dim, 0.5)
        idx = np.arange(0, dim, 7, dtype=np.int64)
        sparse_vals = np.full(idx.size, 0.25)
        block_rows = list(range(8))
        block = np.full((len(block_rows), dim), 0.125)
        started = time.perf_counter()
        for it in range(iterations * 25):
            client = ctx.client_for(executors[it % len(executors)])
            client.push_add(dense.matrix_id, dense.row, dense_vals)
            client.pull_row(dense.matrix_id, dense.row)
            client.push_add(sparse.matrix_id, sparse.row, sparse_vals, idx)
            client.pull_row(sparse.matrix_id, sparse.row, idx)
            if it % 5 == 0:
                coord = ctx.coordinator_client
                coord.pull_block(dense.matrix_id, block_rows)
                coord.push_block_add(dense.matrix_id, block_rows, block)
        wall = time.perf_counter() - started
        metrics = ctx.metrics
        events = metrics.total_messages() + sum(metrics.compute_counts.values())
        return events, wall, ctx.elapsed()

    events, wall, makespan = run_once(benchmark, run)
    eps = events / wall
    benchmark.extra_info["host_events_per_second"] = round(eps, 1)
    benchmark.extra_info["simulated_events"] = events
    emit(
        "fig13_host_throughput",
        "Figure 13 (host): PS-op storm sustained %d simulated events in "
        "%.3f host-seconds (%.0f events/s; virtual makespan %.4f s)"
        % (events, wall, eps, makespan),
    )

    if os.path.exists(THROUGHPUT_FLOOR_PATH):
        with open(THROUGHPUT_FLOOR_PATH) as fh:
            floor = json.load(fh)
        # Host throughput is machine-dependent; the floor is set well below
        # the post-vectorization rate on the recording machine but above
        # anything the per-message slow path can reach.
        assert eps >= floor["host_events_per_second_floor"], (
            "simulator throughput regressed: %.0f events/s < floor %.0f"
            % (eps, floor["host_events_per_second_floor"])
        )
