"""Figure 1 — empirical analysis of Spark MLlib (Section 2).

(a) time per iteration of MLlib's LR-SGD as features grow (the paper sweeps
40K -> 60,000K over 20 executors and sees a 168x degradation);
(b) per-step breakdown showing gradient aggregation dominating.

Our sweep scales every dimension by ~1/100 (400 -> 600,000), preserving the
paper's 1 : 75 : 750 : 1500 feature ratios.
"""

import pytest

from benchmarks._common import emit, run_once
from repro.baselines import train_lr_mllib
from repro.data import sparse_classification
from repro.experiments import format_table, make_context

#: Paper: 40K, 3,000K, 30,000K, 60,000K features; ours are /100.
FEATURE_SWEEP = [400, 30_000, 300_000, 600_000]
ITERATIONS = 5


@pytest.mark.benchmark(group="fig01")
def test_fig01_mllib_time_per_iteration_and_breakdown(benchmark):
    def run():
        rows_out = []
        per_iter = {}
        for dim in FEATURE_SWEEP:
            data, _ = sparse_classification(400, dim, 20, seed=1)
            result = train_lr_mllib(
                make_context(n_executors=20, n_servers=1, seed=1),
                data, dim, optimizer="sgd", n_iterations=ITERATIONS,
                batch_fraction=0.1, seed=1,
            )
            seconds = result.elapsed / ITERATIONS
            per_iter[dim] = seconds
            b = result.extras["breakdown"]
            total = sum(b.values()) or 1.0
            rows_out.append((
                "%dK" % (dim // 10),
                "%.5f s" % seconds,
                "%.0f%%" % (100 * b["broadcast"] / total),
                "%.0f%%" % (100 * b["gradient"] / total),
                "%.0f%%" % (100 * b["aggregation"] / total),
                "%.0f%%" % (100 * b["update"] / total),
            ))
        return rows_out, per_iter

    rows_out, per_iter = run_once(benchmark, run)
    degradation = per_iter[FEATURE_SWEEP[-1]] / per_iter[FEATURE_SWEEP[0]]
    text = format_table(
        ["features (paper-scale)", "time/iter", "broadcast", "gradient",
         "aggregation", "update"],
        rows_out,
        title="Figure 1: MLlib degrades %.0fx from smallest to largest "
              "model (paper: 168x)" % degradation,
    )
    emit("fig01_mllib_analysis", text)
    benchmark.extra_info["degradation_x"] = round(degradation, 1)

    # Figure 1(a)'s shape: severe super-constant degradation with dimension.
    assert degradation > 20
    # Figure 1(b)'s shape: communication (broadcast+aggregation) dominates
    # at the largest model.
    last_dim = FEATURE_SWEEP[-1]
    assert per_iter[last_dim] > per_iter[FEATURE_SWEEP[1]]
