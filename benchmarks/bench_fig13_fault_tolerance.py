"""Figure 13(c) — fault tolerance under task failures (Section 6.5).

LR with 20 workers / 20 servers under injected task-failure probabilities
0, 0.01 and 0.1.  The paper reports 66 s / 74 s / 127 s to finish training,
all three converging to the same solution.
"""

import pytest

from benchmarks._common import emit, run_once
from repro.data import dataset, spec
from repro.experiments import format_table, make_context
from repro.ml import train_logistic_regression

FAILURE_PROBS = [0.0, 0.01, 0.1]
ITERATIONS = 20


@pytest.mark.benchmark(group="fig13")
def test_fig13c_task_failure_tolerance(benchmark):
    def run():
        rows = dataset("kddb", seed=19)
        dim = spec("kddb").params["dim"]
        outcomes = {}
        for prob in FAILURE_PROBS:
            ctx = make_context(seed=19, task_failure_prob=prob)
            result = train_logistic_regression(
                ctx, rows, dim, optimizer="sgd",
                n_iterations=ITERATIONS, batch_fraction=0.3, seed=19,
            )
            outcomes[prob] = {
                "result": result,
                "retries": ctx.spark.scheduler.tasks_failed,
            }
        return outcomes

    outcomes = run_once(benchmark, run)
    clean = outcomes[0.0]["result"]
    table = [
        ("%.0f%%" % (prob * 100),
         "%.4f s" % outcomes[prob]["result"].elapsed,
         "%.6f" % outcomes[prob]["result"].final_loss,
         outcomes[prob]["retries"])
        for prob in FAILURE_PROBS
    ]
    text = format_table(
        ["task failure prob", "time to finish", "final loss", "retries"],
        table,
        title="Figure 13(c): task failures cost retries and time, never "
              "correctness (paper: 66 s / 74 s / 127 s, same solution)",
    )
    emit("fig13c_fault_tolerance", text)
    slowdown = outcomes[0.1]["result"].elapsed / clean.elapsed
    benchmark.extra_info["slowdown_at_10pct"] = round(slowdown, 2)

    # Same solution at every failure rate (exactly-once pushes).
    for prob in FAILURE_PROBS[1:]:
        faulty = outcomes[prob]["result"]
        for (_tc, lc), (_tf, lf) in zip(clean.history, faulty.history):
            assert lc == pytest.approx(lf, rel=1e-12)
    # Time ordering: more failures, more time (paper: 1.12x, 1.92x).
    assert outcomes[0.01]["result"].elapsed > clean.elapsed
    assert outcomes[0.1]["result"].elapsed > outcomes[0.01]["result"].elapsed
    assert outcomes[0.1]["retries"] > outcomes[0.01]["retries"] > 0
