"""Figure 11 — GBDT: PS2 vs XGBoost (Section 6.3.2).

Same histogram-GBDT algorithm on the Gender analogue; PS2 pushes histograms
to DCVs and finds splits server-side, XGBoost ring-AllReduces full
histograms.  Paper: 100 trees in 2435 s (PS2) vs 7942 s (XGBoost) — 3.3x.
Spark MLlib OOMs on this dataset in the paper; we include the driver-gather
variant as the reference point MLlib would be if it survived.
"""

import pytest

from benchmarks._common import emit, run_once
from repro.data import dataset
from repro.experiments import format_speedup, format_table, make_context
from repro.ml import train_gbdt

#: Paper: 100 trees, depth 7, 100 bins; scaled to keep the bench quick.
N_TREES = 20
MAX_DEPTH = 5
N_BINS = 32


@pytest.mark.benchmark(group="fig11")
def test_fig11_gbdt_ps2_vs_xgboost(benchmark):
    def run():
        features, labels = dataset("gender", seed=11)
        kwargs = dict(n_trees=N_TREES, max_depth=MAX_DEPTH, n_bins=N_BINS,
                      seed=11)
        ps2 = train_gbdt(make_context(seed=11), features, labels,
                         method="ps2", **kwargs)
        xgb = train_gbdt(make_context(seed=11), features, labels,
                         method="allreduce", **kwargs)
        return ps2, xgb

    ps2, xgb = run_once(benchmark, run)
    speedup = xgb.elapsed / ps2.elapsed
    table = [
        (run.system, "%.3f s" % run.elapsed, "%.4f" % run.final_loss,
         format_speedup(run.elapsed / ps2.elapsed))
        for run in (ps2, xgb)
    ]
    text = format_table(
        ["system", "time to %d trees" % N_TREES, "final logloss", "vs PS2"],
        table,
        title="Figure 11: GBDT on Gender (paper: XGBoost/PS2 = 3.3x; "
              "Spark MLlib is absent, as in the paper - it OOMs there, and "
              "the laptop-scale analogue would not reproduce that failure)",
    )
    emit("fig11_gbdt", text)
    benchmark.extra_info["xgboost_over_ps2"] = round(speedup, 2)

    # Identical trees (same algorithm, different exchanges).
    assert xgb.final_loss == pytest.approx(ps2.final_loss)
    # Shape: PS2 beats AllReduce by a meaningful factor.
    assert speedup > 1.5
    # Trees genuinely learn.
    assert ps2.final_loss < 0.8 * ps2.history[0][1]
