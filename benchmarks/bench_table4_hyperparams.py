"""Table 4 — hyperparameter settings, checked against the code defaults."""

import pytest

from benchmarks._common import emit, run_once
from repro.experiments import format_table
from repro.ml.optim import Adam, SGD


@pytest.mark.benchmark(group="tables")
def test_table4_hyperparameters(benchmark):
    def run():
        import inspect

        from repro.ml import deepwalk, gbdt, lda

        adam = Adam()
        dw = inspect.signature(deepwalk.train_deepwalk).parameters
        gb = inspect.signature(gbdt.train_gbdt).parameters
        ld = inspect.signature(lda.train_lda).parameters
        return [
            ("LR", "learning_rate", "0.618", "%g" % SGD().learning_rate),
            ("LR", "beta1", "0.9", "%g" % adam.beta1),
            ("LR", "beta2", "0.999", "%g" % adam.beta2),
            ("LR", "epsilon", "1e-8", "%g" % adam.eps),
            ("DeepWalk", "walk_length", "8", "8 (data.random_walks default)"),
            ("DeepWalk", "learning_rate", "0.01",
             "%g" % dw["learning_rate"].default),
            ("DeepWalk", "window_size", "4", "%d" % dw["window"].default),
            ("DeepWalk", "negative_sampling", "5",
             "%d" % dw["n_negative"].default),
            ("DeepWalk", "batch_size", "512", "%d" % dw["batch_size"].default),
            ("GBDT", "learning_rate", "0.1",
             "%g" % gb["learning_rate"].default),
            ("GBDT", "number_of_trees", "100",
             "%d (benches use 20, scaled)" % gb["n_trees"].default),
            ("GBDT", "max_depth", "7",
             "%d (benches use 5, scaled)" % gb["max_depth"].default),
            ("GBDT", "size_of_histogram", "100",
             "%d (benches use 32, scaled)" % gb["n_bins"].default),
            ("LDA", "alpha", "0.5", "%g" % ld["alpha"].default),
            ("LDA", "beta", "0.01", "%g" % ld["beta"].default),
        ]

    rows_out = run_once(benchmark, run)
    text = format_table(
        ["model", "hyperparameter", "paper (Table 4)", "this reproduction"],
        rows_out,
        title="Table 4: hyperparameter settings",
    )
    emit("table4_hyperparams", text)

    # The statistical hyperparameters match the paper exactly.
    exact = {r[1]: (r[2], r[3]) for r in rows_out}
    for key in ("learning_rate", "beta1", "beta2", "alpha", "beta",
                "window_size", "negative_sampling", "batch_size",
                "number_of_trees", "max_depth", "size_of_histogram"):
        paper_value, ours = exact[key]
        assert paper_value.split()[0] in ours or ours.startswith(paper_value)
