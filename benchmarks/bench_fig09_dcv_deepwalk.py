"""Figure 9(c,d) — effectiveness of DCV on DeepWalk (Section 6.2.2).

PS2-DeepWalk (server-side dot + axpy; only scalars on the wire) against
PS-DeepWalk (pull both K-vectors, update locally, push back) on the Graph1
analogue with 2 servers and the Graph2 analogue with 30 servers.  The paper
measures 5x on Graph1 and only 1.4x on Graph2 — the per-request fan-out
overhead grows with the server count and erodes the DCV win, the tradeoff
Section 6.2.2 calls future work.
"""

import pytest

from benchmarks._common import emit, run_once
from repro.data import dataset
from repro.experiments import format_speedup, format_table, make_context
from repro.ml import train_deepwalk


def _compare(name, n_servers, seed=5):
    _adjacency, walks = dataset(name, seed=seed)
    n_vertices = max(int(w.max()) for w in walks) + 1
    kwargs = dict(
        embedding_dim=100, n_iterations=2, batch_size=256,
        learning_rate=0.01, window=4, n_negative=5, seed=seed,
    )
    ps2 = train_deepwalk(
        make_context(n_executors=20, n_servers=n_servers, seed=seed),
        walks, n_vertices, server_side=True, **kwargs,
    )
    ps = train_deepwalk(
        make_context(n_executors=20, n_servers=n_servers, seed=seed),
        walks, n_vertices, server_side=False, **kwargs,
    )
    return {"graph": name, "n_servers": n_servers, "ps2": ps2, "ps": ps}


@pytest.mark.benchmark(group="fig09")
def test_fig09cd_dcv_effect_on_deepwalk(benchmark):
    def run():
        return [_compare("graph1", n_servers=2),
                _compare("graph2", n_servers=30)]

    outcomes = run_once(benchmark, run)
    table = []
    speedups = []
    for outcome in outcomes:
        speedup = outcome["ps"].elapsed / outcome["ps2"].elapsed
        speedups.append(speedup)
        table.append((
            outcome["graph"],
            outcome["n_servers"],
            "%.3f s" % outcome["ps2"].elapsed,
            "%.3f s" % outcome["ps"].elapsed,
            format_speedup(speedup),
        ))
        benchmark.extra_info["%s_speedup" % outcome["graph"]] = \
            round(speedup, 2)
        # Same algorithm: identical losses.
        assert outcome["ps2"].final_loss == \
            pytest.approx(outcome["ps"].final_loss)

    text = format_table(
        ["graph", "servers", "PS2-DeepWalk", "PS-DeepWalk",
         "speedup (paper: 5x / 1.4x)"],
        table,
        title="Figure 9(c,d): DCV speedup on DeepWalk vs server count",
    )
    emit("fig09cd_dcv_deepwalk", text)

    # Shape: PS2 wins on few servers; the win shrinks with 30 servers.
    assert speedups[0] > 1.3
    assert speedups[1] < speedups[0]
    assert speedups[1] > 0.9  # never meaningfully *slower*
