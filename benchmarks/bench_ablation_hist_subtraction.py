"""Ablation: GBDT histogram subtraction (extension beyond the paper).

The DimBoost/TencentBoost lineage behind PS2's GBDT builds, per split, the
histogram of the *smaller* child only and derives the sibling server-side
as ``parent - child`` — on PS2 that is one co-located DCV ``sub``.  This
bench measures how much histogram-building compute and push traffic the
trick removes, at identical (up to float reassociation) trees.
"""

import pytest

from benchmarks._common import emit, run_once
from repro.data import dataset
from repro.experiments import format_table, make_context
from repro.ml import train_gbdt


@pytest.mark.benchmark(group="ablation")
def test_ablation_histogram_subtraction(benchmark):
    def run():
        features, labels = dataset("gender", seed=29)
        kwargs = dict(n_trees=8, max_depth=5, n_bins=32, seed=29)
        ctx_plain = make_context(seed=29)
        plain = train_gbdt(ctx_plain, features, labels, method="ps2",
                           **kwargs)
        ctx_sub = make_context(seed=29)
        subtracted = train_gbdt(ctx_sub, features, labels, method="ps2",
                                hist_subtraction=True, **kwargs)
        return {
            "plain": (plain, ctx_plain.metrics.bytes_for_tag("push:req")),
            "sub": (subtracted, ctx_sub.metrics.bytes_for_tag("push:req")),
        }

    outcome = run_once(benchmark, run)
    plain, plain_push = outcome["plain"]
    subtracted, sub_push = outcome["sub"]
    table = [
        ("direct build", "%.3f s" % plain.elapsed, "%d" % int(plain_push),
         "%.4f" % plain.final_loss),
        ("hist subtraction", "%.3f s" % subtracted.elapsed,
         "%d" % int(sub_push), "%.4f" % subtracted.final_loss),
    ]
    text = format_table(
        ["variant", "time to 8 trees", "histogram push bytes", "final loss"],
        table,
        title="Ablation: histogram subtraction (sibling = parent - child, "
              "one server-side DCV sub)",
    )
    emit("ablation_hist_subtraction", text)
    benchmark.extra_info["push_bytes_saved_pct"] = round(
        100 * (1 - sub_push / plain_push), 1
    )

    assert sub_push < 0.8 * plain_push
    assert subtracted.elapsed < plain.elapsed
    assert subtracted.final_loss == pytest.approx(plain.final_loss, rel=5e-2)
