"""Table 2 — dataset statistics, paper originals vs generated analogues."""

import numpy as np
import pytest

from benchmarks._common import emit, run_once
from repro.data import CATALOG, dataset
from repro.experiments import format_table


@pytest.mark.benchmark(group="tables")
def test_table2_dataset_statistics(benchmark):
    def run():
        rows_out = []
        for key, spec_obj in CATALOG.items():
            data = dataset(key, seed=1)
            if spec_obj.model in ("LR", "SVM"):
                n_rows = len(data)
                n_cols = spec_obj.params["dim"]
                nnz = sum(r.nnz for r in data)
                measured = "%d rows, %d cols, %d nnz" % (n_rows, n_cols, nnz)
            elif spec_obj.model == "LDA":
                tokens = sum(d.size for d in data)
                measured = "%d docs, %d vocab, %d tokens" % (
                    len(data), spec_obj.params["vocab"], tokens)
            elif spec_obj.model == "GBDT":
                features, _labels = data
                measured = "%d rows, %d features" % features.shape
            else:
                adjacency, walks = data
                measured = "%d vertices, %d walks" % (
                    len(adjacency), len(walks))
            paper = ", ".join(
                "%s=%s" % kv for kv in spec_obj.paper_stats.items()
            )
            rows_out.append((spec_obj.name, spec_obj.model, paper, measured))
        return rows_out

    rows_out = run_once(benchmark, run)
    text = format_table(
        ["dataset", "model", "paper (Table 2)", "generated analogue"],
        rows_out,
        title="Table 2: dataset statistics (originals vs scaled analogues)",
    )
    emit("table2_datasets", text)

    assert len(rows_out) == 8
    # Aspect ratios: CTR is the widest LR set; Graph2 >> Graph1; App has
    # more docs than PubMED — as in the paper.
    lr_dims = {name: CATALOG[name].params["dim"]
               for name in ("kddb", "kdd12", "ctr")}
    assert lr_dims["ctr"] == max(lr_dims.values())
    assert CATALOG["graph2"].params["n_vertices"] > \
        CATALOG["graph1"].params["n_vertices"]
    assert CATALOG["app"].params["n_docs"] > CATALOG["pubmed"].params["n_docs"]
    assert np.isfinite(len(rows_out))
