"""Table 3 — algorithms supported by each (reproduced) system."""

import pytest

from benchmarks._common import emit, run_once
from repro.experiments import (
    SUPPORT_MATRIX,
    TRAINER_INDEX,
    WORKLOADS,
    format_table,
    support_rows,
)


@pytest.mark.benchmark(group="tables")
def test_table3_capability_matrix(benchmark):
    def run():
        return [
            (system,) + tuple(
                "yes" if row[w] else "-" for w in WORKLOADS
            )
            for system, row in support_rows()
        ]

    rows_out = run_once(benchmark, run)
    text = format_table(
        ["system"] + list(WORKLOADS),
        rows_out,
        title="Table 3: algorithms supported by different systems "
              "(every 'yes' cell is backed by a runnable trainer here)",
    )
    emit("table3_capabilities", text)

    assert len(rows_out) == len(SUPPORT_MATRIX)
    # PS2 is the only full row, and every supported cell resolves to code.
    ps2_row = [r for r in rows_out if r[0] == "PS2"][0]
    assert all(cell == "yes" for cell in ps2_row[1:])
    for system, row in SUPPORT_MATRIX.items():
        for workload, supported in row.items():
            assert supported == ((system, workload) in TRAINER_INDEX)
