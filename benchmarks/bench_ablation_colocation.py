"""Ablations of the design choices DESIGN.md calls out.

1. **Co-location (Figure 4)** — ``dot`` between two ``derive``d DCVs vs two
   independently created ones: the non-co-located spelling is legal but
   pays a cross-server realignment whose cost scales with the dimension.
2. **Sparse pull** — PS2's pull-what-the-batch-needs vs Petuum's dense
   full-model pull at varying batch sparsity (the mechanism behind
   Figure 10's Petuum gap).
3. **Server-count tradeoff** — the PS2-vs-PS DeepWalk speedup as servers
   grow (the Figure 9(d) discussion the paper leaves as future work).
"""

import numpy as np
import pytest

from benchmarks._common import emit, run_once
from repro.data import preferential_attachment_graph, random_walks, \
    sparse_classification
from repro.experiments import format_table, make_context
from repro.ml import train_deepwalk
from repro.ml.linear import train_linear_ps2
from repro.baselines import train_lr_petuum


@pytest.mark.benchmark(group="ablation")
def test_ablation_colocated_vs_realigned_dot(benchmark):
    def run():
        rows_out = []
        for dim in (10_000, 100_000, 1_000_000):
            ctx = make_context(seed=23)
            a = ctx.dense(dim, rows=4)
            sibling = a.derive().fill(1.0)
            stranger = ctx.dense(dim).fill(1.0)
            a.fill(1.0)

            t0 = ctx.elapsed()
            colocated_value = a.dot(sibling)
            colocated_cost = ctx.elapsed() - t0

            t0 = ctx.elapsed()
            realigned_value = a.dot(stranger)
            realigned_cost = ctx.elapsed() - t0
            moved = ctx.metrics.bytes_for_tag("realign")

            assert colocated_value == pytest.approx(realigned_value)
            rows_out.append((dim, colocated_cost, realigned_cost, moved))
        return rows_out

    rows_out = run_once(benchmark, run)
    table = [
        ("%d" % dim, "%.6f s" % fast, "%.6f s" % slow, "%.1fx" % (slow / fast),
         "%d" % int(moved))
        for dim, fast, slow, moved in rows_out
    ]
    text = format_table(
        ["dim", "co-located dot", "non-co-located dot", "penalty",
         "realign bytes"],
        table,
        title="Ablation (Figure 4): derive() vs independent dense()",
    )
    emit("ablation_colocation", text)

    # The penalty grows with dimension; co-location moves zero bulk data.
    penalties = [slow / fast for _d, fast, slow, _m in rows_out]
    assert penalties[-1] > penalties[0]
    assert penalties[-1] > 3.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_sparse_pull_vs_dense_pull(benchmark):
    def run():
        dim = 200_000
        rows_out = []
        for nnz_per_row in (10, 1_000, 20_000):
            data, _ = sparse_classification(400, dim, nnz_per_row, seed=23)
            kwargs = dict(n_iterations=4, batch_fraction=0.5, seed=23)
            sparse = train_linear_ps2(
                make_context(seed=23), data, dim, optimizer="sgd", **kwargs
            )
            dense = train_lr_petuum(make_context(seed=23), data, dim, **kwargs)
            rows_out.append(
                (nnz_per_row, sparse.elapsed, dense.elapsed)
            )
        return rows_out

    rows_out = run_once(benchmark, run)
    table = [
        (nnz, "%.4f s" % s, "%.4f s" % d, "%.1fx" % (d / s))
        for nnz, s, d in rows_out
    ]
    text = format_table(
        ["nnz/row", "sparse pulls (PS2)", "dense pulls (Petuum-style)",
         "dense/sparse"],
        table,
        title="Ablation: sparse pull advantage vs batch density "
              "(dim=200000)",
    )
    emit("ablation_sparse_pull", text)

    # Sparse pulling wins, and wins hardest on the sparsest batches.
    ratios = [d / s for _n, s, d in rows_out]
    assert all(r > 1.0 for r in ratios)
    assert ratios[0] > ratios[-1]


@pytest.mark.benchmark(group="ablation")
def test_ablation_deepwalk_server_count_tradeoff(benchmark):
    def run():
        adjacency = preferential_attachment_graph(200, out_degree=3, seed=23)
        walks = random_walks(adjacency, 300, walk_length=8, seed=23)
        kwargs = dict(embedding_dim=100, n_iterations=2, batch_size=200,
                      learning_rate=0.01, seed=23)
        rows_out = []
        for n_servers in (2, 5, 10, 30):
            ps2 = train_deepwalk(
                make_context(n_servers=n_servers, seed=23), walks, 200,
                server_side=True, **kwargs,
            )
            ps = train_deepwalk(
                make_context(n_servers=n_servers, seed=23), walks, 200,
                server_side=False, **kwargs,
            )
            rows_out.append((n_servers, ps.elapsed / ps2.elapsed))
        return rows_out

    rows_out = run_once(benchmark, run)
    table = [(n, "%.2fx" % r) for n, r in rows_out]
    text = format_table(
        ["servers", "PS-DeepWalk / PS2-DeepWalk"],
        table,
        title="Ablation (Figure 9(d) discussion): the DCV win erodes as "
              "servers multiply",
    )
    emit("ablation_deepwalk_servers", text)

    ratios = np.array([r for _n, r in rows_out])
    # Monotone-ish erosion: the few-server win exceeds the many-server one.
    assert ratios[0] > ratios[-1]
    assert ratios[0] > 1.3
