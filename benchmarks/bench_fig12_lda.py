"""Figure 12 — LDA comparison (Section 6.3.3).

(a) PubMED analogue, large topic count: PS2 vs Petuum vs Glint — the paper
    measures convergence in 386 s / 1440 s / 3500 s (3.7x and 9x);
(b) PubMED, small topic count: PS2 vs Spark MLlib (paper: 17x) — MLlib
    cannot handle the large-K model at all;
(c) App analogue: PS2 alone (no other system handles it in the paper).
"""

import pytest

from benchmarks._common import emit, run_once
from repro.baselines import train_lda_glint, train_lda_mllib, train_lda_petuum
from repro.data import dataset, spec
from repro.experiments import format_speedup, format_table, make_context
from repro.ml import train_lda

#: Paper: K=1000 for (a), K=100 for (b); scaled by the usual ~1/10.
K_LARGE = 96
K_SMALL = 12
ITERATIONS = 5


@pytest.mark.benchmark(group="fig12")
def test_fig12_lda(benchmark):
    def run():
        docs = dataset("pubmed", seed=13)
        vocab = spec("pubmed").params["vocab"]
        kwargs = dict(n_topics=K_LARGE, n_iterations=ITERATIONS, seed=13)
        ps2 = train_lda(make_context(seed=13), docs, vocab, **kwargs)
        petuum = train_lda_petuum(make_context(seed=13), docs, vocab,
                                  **kwargs)
        glint = train_lda_glint(make_context(seed=13), docs, vocab, **kwargs)

        small_kwargs = dict(n_topics=K_SMALL, n_iterations=ITERATIONS,
                            seed=13)
        ps2_small = train_lda(make_context(seed=13), docs, vocab,
                              **small_kwargs)
        mllib_small = train_lda_mllib(make_context(seed=13), docs, vocab,
                                      **small_kwargs)

        app_docs = dataset("app", seed=13)
        app_vocab = spec("app").params["vocab"]
        ps2_app = train_lda(make_context(seed=13), app_docs, app_vocab,
                            n_topics=K_LARGE, n_iterations=3, seed=13)
        return {
            "large": (ps2, petuum, glint),
            "small": (ps2_small, mllib_small),
            "app": ps2_app,
        }

    outcome = run_once(benchmark, run)
    ps2, petuum, glint = outcome["large"]
    ps2_small, mllib_small = outcome["small"]
    ps2_app = outcome["app"]

    petuum_x = petuum.elapsed / ps2.elapsed
    glint_x = glint.elapsed / ps2.elapsed
    mllib_x = mllib_small.elapsed / ps2_small.elapsed

    table_a = [
        (r.system, "%.3f s" % r.elapsed, "%.4f" % r.final_loss,
         format_speedup(r.elapsed / ps2.elapsed))
        for r in (ps2, petuum, glint)
    ]
    table_b = [
        (r.system, "%.3f s" % r.elapsed, "%.4f" % r.final_loss,
         format_speedup(r.elapsed / ps2_small.elapsed))
        for r in (ps2_small, mllib_small)
    ]
    text = "\n\n".join([
        format_table(
            ["system", "time (%d sweeps)" % ITERATIONS, "final -loglik/token",
             "vs PS2"],
            table_a,
            title="Figure 12(a): PubMED, K=%d "
                  "(paper: Petuum/PS2=3.7x, Glint/PS2=9x)" % K_LARGE,
        ),
        format_table(
            ["system", "time (%d sweeps)" % ITERATIONS, "final -loglik/token",
             "vs PS2"],
            table_b,
            title="Figure 12(b): PubMED, K=%d (paper: MLlib/PS2=17x)"
                  % K_SMALL,
        ),
        "Figure 12(c): App analogue, PS2 only (no other system handles it "
        "in the paper): %d sweeps in %.3f s, -loglik/token %.4f -> %.4f"
        % (ps2_app.iterations, ps2_app.elapsed, ps2_app.history[0][1],
           ps2_app.final_loss),
    ])
    emit("fig12_lda", text)
    benchmark.extra_info.update({
        "petuum_over_ps2": round(petuum_x, 2),
        "glint_over_ps2": round(glint_x, 2),
        "mllib_over_ps2": round(mllib_x, 2),
    })

    # Identical Gibbs chains across comm layers.
    assert petuum.final_loss == pytest.approx(ps2.final_loss)
    assert glint.final_loss == pytest.approx(ps2.final_loss)
    assert mllib_small.final_loss == pytest.approx(ps2_small.final_loss)
    # Shape: PS2 < Petuum < Glint; MLlib well behind at small K too.
    assert 1.5 < petuum_x < glint_x
    assert mllib_x > 2.0
    # The App run converges.
    assert ps2_app.final_loss < ps2_app.history[0][1]
