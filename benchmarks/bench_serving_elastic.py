"""Serving-tier ablation — static topology vs elastic under a 4x load step.

Replays the same Zipf-skewed, step-profile serving stream twice on
identical hardware: once with the topology frozen at 2 workers / 2 PS
servers (``ElasticitySpec(mode="off")``) and once with the autoscaler
live (``mode="auto"``), then a third time elastic again to assert
seeded determinism of the whole control loop.

The regime is deliberately byte-dominated (slow NICs, low latency, fast
CPUs — the same derating the replication ablation uses): the post-step
arrival rate exceeds what 2 workers and 2 servers can drain, so the
static arm's NIC queues grow without bound and its windowed read p99
climbs for the rest of the run.  The elastic arm sees the same step,
crosses the NIC-backlog / SLO thresholds, and grows both tiers —
live shard migration included — until the backlog drains.

Expected shape, asserted below:

- the static arm never resizes and both arms serve the identical
  request stream (same seed, same arrivals, same lazy-created rows);
- the elastic arm adds at least one PS server AND at least one worker
  mid-run (after the load step, before the stream ends);
- the elastic arm's post-step windowed read p99 stays below the static
  arm's, and it finishes the stream sooner;
- running the elastic arm twice under the same seed is bit-identical:
  same makespan, same scaling events at the same virtual times.
"""

import os

import pytest

from benchmarks._common import emit, run_once
from repro.config import ClusterConfig, ElasticitySpec, NetworkSpec, NodeSpec
from repro.core.context import PS2Context
from repro.experiments import format_table
from repro.serving import ServingScenario, run_serving

# CI's benchmark-smoke job runs the ablation at reduced scale
# (REPRO_BENCH_ITERATIONS=4); the shape assertions hold at any scale.
ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "10"))

#: Byte-dominated hardware: ~30 Mbit/s NICs, 10 us latency, fast CPUs —
#: the post-step stream saturates the NICs, not the compute.
NODE = dict(flops=2e11, nic_bandwidth=4e6)
NET = dict(latency=1e-5, bandwidth=4e6)

SEED = 7
#: Time-series window (virtual s) — the autoscaler's p99 signal and the
#: post-step comparison below both read these windows.
WINDOW = 0.1
#: Stream length scales with the iteration knob (ITERATIONS=10 -> 2.5 s).
DURATION = 0.25 * ITERATIONS
#: The load steps 4x at this fraction of the stream.
STEP_AT = 0.4
BASE_RATE = 600.0
#: Loose enough that the pre-step load sits under it at 2w/2s on this
#: hardware — only the 4x step pushes the windowed p99 across.
SLO_TARGET = 2e-2

STATIC = ElasticitySpec()
ELASTIC = ElasticitySpec(
    mode="auto",
    min_servers=2, max_servers=6,
    min_workers=2, max_workers=6,
    # Above the pre-step steady-state queueing delay (a few ms on this
    # hardware) so only the post-step backlog crosses it.
    scale_up_backlog=2e-2,
    scale_down_backlog=1e-4,
    slo_target=SLO_TARGET,
    cooldown=0.05,
)


def _scenario():
    return ServingScenario(
        name="bench-step",
        duration=DURATION,
        base_rate=BASE_RATE,
        n_items=192,
        dim=64,
        keys_per_request=8,
        n_users=64,
        zipf_exponent=1.1,
        read_fraction=0.9,
        profile="step",
        step_at=STEP_AT,
        step_factor=4.0,
        slo_target=SLO_TARGET,
    )


def _make_context(spec):
    config = ClusterConfig(
        n_executors=2,
        n_servers=2,
        seed=SEED,
        node=NodeSpec(**NODE),
        network=NetworkSpec(**NET),
        timeseries_window=WINDOW,
        elasticity=spec,
    )
    return PS2Context(config=config)


def _post_step_p99(ctx):
    """Mean and max windowed ``serve:read`` p99 over post-step windows."""
    step_time = STEP_AT * DURATION
    ctx.cluster.timeseries.finalize()
    points = [
        value
        for end, value in ctx.cluster.slo.series("read", q="p99")
        if end - WINDOW >= step_time and value > 0.0
    ]
    if not points:
        return 0.0, 0.0
    return sum(points) / len(points), max(points)


def _run(spec):
    ctx = _make_context(spec)
    result = run_serving(ctx, _scenario())
    mean_p99, max_p99 = _post_step_p99(ctx)
    result["post_step_mean_p99"] = mean_p99
    result["post_step_max_p99"] = max_p99
    return result


def _sweep():
    return {
        "static": _run(STATIC),
        "elastic": _run(ELASTIC),
        "elastic_repeat": _run(ELASTIC),
    }


@pytest.mark.benchmark(group="ablation")
def test_serving_elastic_step(benchmark):
    outcomes = run_once(benchmark, _sweep)
    static, elastic = outcomes["static"], outcomes["elastic"]
    repeat = outcomes["elastic_repeat"]

    table = [
        (label, "%.6f s" % o["makespan"],
         "%.6f s" % o["post_step_mean_p99"],
         "%.6f s" % o["post_step_max_p99"],
         o["violations"], "%dw/%ds" % (o["n_workers"], o["n_servers"]),
         len(o["events"]))
        for label, o in (("static", static), ("elastic", elastic))
    ]
    text = format_table(
        ["topology", "makespan", "post-step mean p99", "post-step max p99",
         "SLO misses", "final size", "resizes"],
        table,
    )
    text += "\npost-step mean-p99 win: %.1f%%" % (
        100.0 * (1.0 - elastic["post_step_mean_p99"]
                 / static["post_step_mean_p99"])
    )
    for event in elastic["events"]:
        text += "\n  t=%.3f %s %s (backlog=%.2e p99=%.2e) -> %dw/%ds" % (
            event["time"], event["direction"], "+".join(event["actions"]),
            event["backlog"], event["p99"],
            event["n_workers"], event["n_servers"],
        )
    emit("serving_elastic_step", text)

    benchmark.extra_info["static_makespan"] = static["makespan"]
    benchmark.extra_info["elastic_makespan"] = elastic["makespan"]
    benchmark.extra_info["static_post_step_p99"] = static["post_step_mean_p99"]
    benchmark.extra_info["elastic_post_step_p99"] = \
        elastic["post_step_mean_p99"]
    benchmark.extra_info["elastic_resizes"] = len(elastic["events"])

    # Same seed, same stream: both arms serve identical traffic and the
    # lazy table grows to the identical coverage.
    assert static["requests"] == elastic["requests"]
    assert static["created_rows"] == elastic["created_rows"]
    assert static["lazy_creates"] == static["created_rows"]
    # The static arm is frozen: no autoscaler, no resizes, 2w/2s forever.
    assert static["events"] == []
    assert static["n_workers"] == 2 and static["n_servers"] == 2
    # The elastic arm grew BOTH tiers mid-run (after the step, before
    # the stream ended).
    step_time = STEP_AT * DURATION
    ups = [e for e in elastic["events"] if e["direction"] == "up"]
    assert any("server+1" in e["actions"] for e in ups)
    assert any("worker+1" in e["actions"] for e in ups)
    assert all(step_time <= e["time"] < elastic["makespan"] for e in ups)
    # ... and it paid off: lower post-step windowed p99, earlier finish.
    assert elastic["post_step_mean_p99"] < static["post_step_mean_p99"]
    assert elastic["post_step_max_p99"] < static["post_step_max_p99"]
    assert elastic["makespan"] < static["makespan"]
    # The whole control loop is deterministic under the seed.
    assert repeat["makespan"] == elastic["makespan"]
    assert repeat["events"] == elastic["events"]
    assert repeat["slo"] == elastic["slo"]
