"""Graph embedding with DeepWalk (Section 5.2.2, Figures 5 and 6).

Generates a degree-skewed social graph, samples random walks, trains vertex
embeddings with PS2's server-side dot/axpy path, and sanity-checks that
embeddings of connected vertices score higher than those of random pairs.

Run:  python examples/graph_embedding.py
"""

import numpy as np

from repro.common.rng import RngRegistry
from repro.data import preferential_attachment_graph, random_walks
from repro.experiments import make_context
from repro.ml import embedding_matrix, train_deepwalk


def main():
    n_vertices = 120
    adjacency = preferential_attachment_graph(n_vertices, out_degree=3, seed=3)
    walks = random_walks(adjacency, n_walks=200, walk_length=8, seed=3)
    print("graph: %d vertices; %d walks of length 8"
          % (n_vertices, len(walks)))

    ctx = make_context(n_executors=4, n_servers=2, seed=3)
    result = train_deepwalk(
        ctx, walks, n_vertices, embedding_dim=16, n_iterations=6,
        batch_size=400, learning_rate=0.15, window=4, n_negative=5, seed=3,
    )
    print("loss per pair:",
          " -> ".join("%.4f" % l for _t, l in result.history))

    # Edge vs random-pair similarity under the learned embeddings.
    vectors = embedding_matrix(result.extras["embeddings"], n_vertices)
    rng = RngRegistry(3).get("eval")
    edge_scores = []
    random_scores = []
    for u in range(n_vertices):
        for v in adjacency[u]:
            edge_scores.append(float(np.dot(vectors[u], vectors[int(v)])))
        r = int(rng.integers(n_vertices))
        random_scores.append(float(np.dot(vectors[u], vectors[r])))
    print("mean score  edges: %.4f   random pairs: %.4f"
          % (np.mean(edge_scores), np.mean(random_scores)))
    print("(connected vertices should score higher)")


if __name__ == "__main__":
    main()
