"""Factorization machines for user profiling (Section 1's other model).

The paper's motivating pipeline trains "classification models like logistic
regression or factorization machine" over very wide user instances.  This
example builds a dataset whose labels depend on feature *co-occurrence*
(something linear models cannot express), then shows FM on PS2 beating LR
on it — with all of FM's k+1 model vectors living co-located on the
parameter servers and updated by server-side kernels.

Run:  python examples/factorization_machine.py
"""

import numpy as np

from repro.common.rng import RngRegistry
from repro.experiments import format_table, make_context
from repro.linalg.sparse import SparseRow
from repro.ml import train_fm, train_logistic_regression
from repro.ml.lr import accuracy
from repro.ml.optim import SGD


def co_occurrence_data(n_rows=800, dim=400, nnz=8, n_pairs=5, seed=5):
    """Positive iff a designated feature *pair* co-occurs.

    Every pair member appears equally often in positives (both members) and
    negatives (one member), so each feature is marginally uninformative —
    a linear model cannot do better than chance, while FM's factor vectors
    can represent the pairwise interaction.
    """
    rng = RngRegistry(seed).get("fm-example")
    pairs = rng.choice(dim, size=(n_pairs, 2), replace=False)
    rows = []
    for i in range(n_rows):
        a, b = pairs[int(rng.integers(n_pairs))]
        positive = i % 2 == 0
        anchor = [a, b] if positive else [a if rng.random() < 0.5 else b]
        fillers = rng.choice(dim, size=nnz - len(anchor), replace=False)
        idx = np.unique(np.concatenate([anchor, fillers]))
        rows.append(SparseRow(idx, np.ones(idx.size),
                              1.0 if positive else 0.0))
    return rows


def main():
    dim = 200
    rows = co_occurrence_data(dim=dim)
    train, test = rows[:600], rows[600:]
    print("dataset: %d train / %d test, %d features, labels need "
          "second-order structure" % (len(train), len(test), dim))

    fm = train_fm(
        make_context(n_executors=8, n_servers=8, seed=5), train, dim,
        n_factors=8, learning_rate=0.5, n_iterations=250,
        batch_fraction=0.5, seed=5,
    )
    lr = train_logistic_regression(
        make_context(n_executors=8, n_servers=8, seed=5), train, dim,
        optimizer=SGD(learning_rate=0.5), n_iterations=250,
        batch_fraction=0.5, seed=5,
    )

    fm_model = fm.extras["model"]
    fm_probs = fm_model.predict_proba(test)
    labels = np.array([r.label for r in test])
    fm_acc = float(np.mean((fm_probs > 0.5) == (labels > 0.5)))
    lr_acc = accuracy(test, lr.extras["weight"].materialize())

    print()
    print(format_table(
        ["model", "final train loss", "test accuracy"],
        [("FM (k=8, on PS2)", "%.4f" % fm.final_loss, "%.3f" % fm_acc),
         ("LR (on PS2)", "%.4f" % lr.final_loss, "%.3f" % lr_acc)],
        title="Second-order structure: FM vs LR",
    ))
    print("\nFM's %d model vectors (w + 8 factors + gradients) share one"
          % (2 * 9))
    print("co-located DCV pool; minibatches block-pull/push them together.")


if __name__ == "__main__":
    main()
