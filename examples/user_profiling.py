"""User profiling / CTR prediction — the paper's motivating Tencent task.

High-dimensional logistic regression ("each user instance may contain more
than 200 million features", Section 1), scaled down to a laptop: a
CTR-style sparse dataset, trained with PS2's server-side Adam and compared
against the Spark-MLlib-style driver architecture on the same simulated
cluster — the Figure 9(a) experiment as a script.

Run:  python examples/user_profiling.py
"""

from repro.baselines import train_lr_mllib, train_lr_ps_pushpull
from repro.data import dataset, spec
from repro.experiments import format_table, make_context
from repro.ml import train_logistic_regression


def main():
    name = "kddb"
    rows = dataset(name, seed=1)
    dim = spec(name).params["dim"]
    print("dataset %s analogue: %d rows, %d features"
          % (spec(name).name, len(rows), dim))

    common = dict(n_iterations=12, batch_fraction=0.1, seed=1)
    results = [
        train_logistic_regression(
            make_context(seed=1), rows, dim, optimizer="adam",
            system="PS2-Adam", **common,
        ),
        train_lr_ps_pushpull(
            make_context(seed=1), rows, dim, optimizer="adam", **common,
        ),
        train_lr_mllib(
            make_context(seed=1), rows, dim, optimizer="adam",
            system="Spark-Adam", **common,
        ),
    ]

    base = results[0].elapsed
    table = [
        (r.system, "%.3f s" % r.elapsed, "%.4f" % r.final_loss,
         "%.1fx" % (r.elapsed / base))
        for r in results
    ]
    print()
    print(format_table(
        ["system", "virtual time", "final loss", "vs PS2"],
        table, title="LR with Adam on %s (identical loss trajectories)" % name,
    ))
    print("\nAll three run the same statistical algorithm; only the")
    print("communication architecture differs - that gap is the paper.")


if __name__ == "__main__":
    main()
