"""The paper's three code listings (Figures 3, 6 and 8), line for line.

The Scala snippets in the paper translate almost token-for-token onto this
package's Python API.  Each section below quotes the paper's listing in a
comment and runs the translation on a small simulated cluster.

Run:  python examples/paper_listings.py
"""

import numpy as np

from repro.common.rng import RngRegistry
from repro.core import kernels
from repro.data import preferential_attachment_graph, random_walks, \
    skipgram_pairs, sparse_classification
from repro.experiments import make_context
from repro.linalg.sparse import batch_index_union
from repro.ml import losses
from repro.ml.losses import sigmoid


def figure3_adam_for_lr():
    """Figure 3: "Adam for LR" — the paper's flagship listing.

    Scala:
        val weight   = DCV.dense(dim, 4)
        val velocity = DCV.derive(weight).fill(0.0)
        val square   = DCV.derive(weight).fill(0.0)
        val gradient = DCV.derive(weight)
        for (i <- 0 until numIterations) {
          gradient.zero()
          data.sample(fraction).mapPartition { case iterator =>
            val local_weight   = weight.pull()
            val local_gradient = calculateGradient(local_weight, iterator)
            gradient.add(local_gradient)
          }.foreach()
          weight.zip(velocity, square, gradient).mapPartition {
            case (w, v, s, g) => updateModel(w, v, s, g)
          }
        }
    """
    print("— Figure 3: Adam for LR " + "-" * 40)
    ctx = make_context(n_executors=4, n_servers=4, seed=1)
    rows, _ = sparse_classification(400, 2000, 12, seed=1)
    data = ctx.parallelize(rows).cache()
    dim, num_iterations, fraction = 2000, 10, 0.5

    weight = ctx.dense(dim, 4)                      # DCV.dense(dim, 4)
    velocity = weight.derive().fill(0.0)            # DCV.derive(weight).fill(0.0)
    square = weight.derive().fill(0.0)
    gradient = weight.derive()

    for i in range(num_iterations):
        gradient.zero()

        def map_partition(ctx_task, iterator):      # mapPartition { ... }
            batch = list(iterator)
            union = batch_index_union(batch)
            local_weight = weight.pull(indices=union, task_ctx=ctx_task)
            local_gradient, loss = losses.logistic_grad_batch(
                batch, union, local_weight
            )
            gradient.add(local_gradient / max(1, len(batch)),
                         indices=union, task_ctx=ctx_task)
            return [loss / max(1, len(batch))]

        batch_losses = data.sample(fraction, seed=i) \
            .map_partitions_with_context(map_partition).collect()  # .foreach()

        # Server-side computation among the four co-located DCVs:
        weight.zip(velocity, square, gradient).map_partitions(
            kernels.adam_update_kernel,
            args=dict(lr=0.2, beta1=0.9, beta2=0.999, eps=1e-8, step=i + 1),
            wait=False,
        )
        if i % 3 == 0:
            print("  iter %2d  mean batch loss %.4f"
                  % (i, float(np.mean(batch_losses))))


def figure6_graph_embedding():
    """Figure 6: the graph-embedding (DeepWalk) listing.

    Scala:
        val first = DCV.dense(K, V*2)
        val embeddings = new Array[DCV](V*2)
        embeddings(0) = first
        for (i <- 1 until V*2) embeddings(i) = DCV.duplicate(u)
        data.map { case (u, v) =>
          val dot = input_u.dot(output_v)
          val sig = 1 - sigmoid(dot)
          input_u.iaxpy(output_v, sig*eta)
          output_v.iaxpy(input_u, sig*eta)
          calculateLoss(dot)
        }.sum()
    """
    print("— Figure 6: Graph Embedding " + "-" * 36)
    ctx = make_context(n_executors=4, n_servers=2, seed=2)
    adjacency = preferential_attachment_graph(30, seed=2)
    walks = random_walks(adjacency, 60, seed=2)
    pairs = skipgram_pairs(walks, window=4)[:200]
    V, K, eta = 30, 16, 0.2

    first = ctx.dense(K, V * 2, init="uniform", scale=0.1)
    embeddings = [first]
    for _i in range(1, V * 2):
        embeddings.append(first.duplicate())        # DCV.duplicate

    data = ctx.parallelize(pairs)

    def update(ctx_task, iterator):
        total = 0.0
        for u, v in iterator:
            input_u = embeddings[u]
            output_v = embeddings[v + V]
            dot = input_u.dot(output_v, task_ctx=ctx_task)
            sig = 1 - float(sigmoid(np.asarray(dot)))
            input_u.iaxpy(output_v, sig * eta, task_ctx=ctx_task)
            output_v.iaxpy(input_u, sig * eta, task_ctx=ctx_task)
            total += -np.log(max(1e-9, 1 - sig))    # calculateLoss(dot)
        return [total]

    loss = sum(data.map_partitions_with_context(update).collect())
    print("  %d pairs trained; summed loss %.3f; only scalars crossed "
          "the wire" % (len(pairs), loss))


def figure8_gbdt_histograms():
    """Figure 8: the GBDT histogram listing.

    Scala:
        val gradHist = DCV.dense(dim, 2).fill(0.0)
        val hessHist = DCV.derive(gradHist).fill(0.0)
        ...
        data.mapPartition { case iterator =>
          gradHist.add(buildGrad(iterator))
          hessHist.add(buildHess(iterator))
        }.foreach()
        val maxGain = gradHist.zip(hessHist).mapPartition {
          case (grad, hess) => computeInfoGain(grad, hess)
        }.max()
    """
    print("— Figure 8: GBDT split finding " + "-" * 33)
    ctx = make_context(n_executors=4, n_servers=4, seed=3)
    rng = RngRegistry(3).get("fig8")
    n_bins, n_features = 8, 5
    dim = n_bins * n_features

    grad_hist = ctx.dense(dim, 2, block=n_bins).fill(0.0)
    hess_hist = grad_hist.derive().fill(0.0)

    samples = list(range(400))
    data = ctx.parallelize(samples)

    def map_partition(ctx_task, iterator):
        count = sum(1 for _ in iterator)
        local_grad = rng.standard_normal(dim) * count / 100
        local_hess = np.abs(rng.standard_normal(dim)) * count / 100
        grad_hist.add(local_grad, task_ctx=ctx_task)   # gradHist.add(...)
        hess_hist.add(local_hess, task_ctx=ctx_task)
        return [count]

    data.map_partitions_with_context(map_partition).collect()  # .foreach()

    total_grad = grad_hist.sum()
    total_hess = hess_hist.sum()
    partials = grad_hist.zip(hess_hist).map_partitions(   # zip(...).max()
        kernels.split_gain_kernel,
        args=dict(n_bins=n_bins, parent_grad=total_grad,
                  parent_hess=total_hess, reg_lambda=1.0),
        n_response_scalars=5,
    )
    max_gain = partials.max()
    print("  best split: gain %.4f at feature %d, bin %d "
          "(found server-side)" % (max_gain[0], max_gain[1], max_gain[2]))


def main():
    figure3_adam_for_lr()
    figure6_graph_embedding()
    figure8_gbdt_histograms()


if __name__ == "__main__":
    main()
