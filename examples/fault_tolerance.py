"""Fault tolerance in action (Section 5.3 / Figure 13(c)).

Part 1 trains LR under injected task failures (0%, 1%, 10%) and shows that
every run converges to the same solution while the failing runs pay retry
time — the paper's Figure 13(c).

Part 2 checkpoints the model, crashes a parameter server mid-training, and
shows the coordinator recovering it from the checkpoint transparently to
the next pull.

Run:  python examples/fault_tolerance.py
"""

from repro.data import sparse_classification
from repro.experiments import format_table, make_context
from repro.ml import train_logistic_regression


def main():
    rows, _ = sparse_classification(600, 5000, 20, seed=11)

    # -- Part 1: task failures ------------------------------------------------
    table = []
    for prob in (0.0, 0.01, 0.1):
        ctx = make_context(n_executors=8, n_servers=8, seed=11,
                           task_failure_prob=prob)
        result = train_logistic_regression(
            ctx, rows, 5000, optimizer="sgd", n_iterations=15,
            batch_fraction=0.3, seed=11,
        )
        table.append((
            "%.0f%%" % (prob * 100),
            "%.3f s" % result.elapsed,
            "%.4f" % result.final_loss,
            ctx.spark.scheduler.tasks_failed,
        ))
    print(format_table(
        ["task failure rate", "time to finish", "final loss", "retries"],
        table, title="Figure 13(c): same solution, retries cost time",
    ))

    # -- Part 2: server failure + checkpoint recovery --------------------------
    ctx = make_context(n_executors=4, n_servers=4, seed=11)
    weight = ctx.dense(2000, rows=2, name="w").fill(1.0)
    ctx.checkpoint()
    print("\ncheckpointed; sum =", weight.sum())
    ctx.master.server(0).crash()
    print("server-0 crashed (its shard of the model is lost)")
    # The next access triggers recovery from the checkpoint.
    print("sum after transparent recovery =", weight.sum())
    print("recoveries performed:", ctx.master.checkpoints.recoveries)


if __name__ == "__main__":
    main()
