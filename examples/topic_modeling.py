"""Topic modeling with LDA on the parameter server (Section 5.2.4 / 6.3.3).

Draws a synthetic corpus from a ground-truth topic model, trains collapsed
Gibbs LDA with the word-topic matrix held in DCVs (sparse, compressed
pulls), and reports the per-token negative log-likelihood per sweep plus a
peek at the sharpest learned topics.

Run:  python examples/topic_modeling.py
"""

import numpy as np

from repro.data import synthetic_corpus
from repro.experiments import make_context
from repro.ml import train_lda


def main():
    vocab_size = 400
    docs, _truth = synthetic_corpus(
        200, vocab_size, n_topics=6, doc_length=60, seed=5
    )
    print("corpus: %d docs, vocab %d, %d tokens"
          % (len(docs), vocab_size, sum(d.size for d in docs)))

    ctx = make_context(n_executors=4, n_servers=4, seed=5)
    result = train_lda(
        ctx, docs, vocab_size, n_topics=6, n_iterations=8, seed=5,
    )
    print("neg. log-likelihood per token by sweep:")
    print("  " + " -> ".join("%.4f" % l for _t, l in result.history))

    # Pull the learned word-topic matrix (charged, like any client would).
    matrix_id = result.extras["matrix_id"]
    n_topics = result.extras["n_topics"]
    client = ctx.coordinator_client
    counts = client.pull_block(matrix_id, list(range(n_topics)))
    top_words = np.argsort(-counts, axis=1)[:, :5]
    print("\ntop words per learned topic:")
    for k in range(n_topics):
        print("  topic %d: %s" % (k, top_words[k].tolist()))


if __name__ == "__main__":
    main()
