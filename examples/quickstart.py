"""Quickstart: the DCV abstraction in five minutes.

Creates a simulated 4-executor / 4-server deployment, walks through the
paper's operator sets (Table 1), reproduces the Figure 4 co-location
lesson, and trains a small logistic regression with server-side Adam
(Figure 3's program).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ClusterConfig, PS2Context
from repro.data import sparse_classification
from repro.ml import train_logistic_regression


def main():
    ctx = PS2Context(config=ClusterConfig(n_executors=4, n_servers=4, seed=7))

    # -- creation ops: dense + derive (co-located siblings) -----------------
    weight = ctx.dense(1000, rows=4, name="weight")
    velocity = weight.derive().fill(0.0)
    gradient = weight.derive().fill(0.0)
    print("weight co-located with velocity:",
          weight.is_colocated_with(velocity))

    # -- row access ops ------------------------------------------------------
    weight.push(np.linspace(0, 1, 1000))
    print("sum=%.2f nnz=%d norm2=%.3f"
          % (weight.sum(), weight.nnz(), weight.norm2()))
    some = weight.pull(indices=np.array([0, 499, 999]))
    print("sparse pull of 3 coordinates:", np.round(some, 3))

    # -- column access ops (server-side; only scalars on the wire) ----------
    gradient.fill(0.5)
    print("dot(weight, gradient) =", round(weight.dot(gradient), 2))
    weight.iaxpy(gradient, -0.1)      # w -= 0.1 * g, in place on servers
    product = weight.mul(gradient)    # new derived DCV
    print("norm2 after axpy:", round(weight.norm2(), 3),
          "| mul result sum:", round(product.sum(), 2))

    # -- Figure 4: co-location matters ---------------------------------------
    other = ctx.dense(1000, name="independent").fill(1.0)
    print("independent dense() co-located?",
          weight.is_colocated_with(other))
    before = ctx.metrics.bytes_for_tag("realign")
    weight.dot(other)  # legal, but pays cross-server realignment
    moved = ctx.metrics.bytes_for_tag("realign") - before
    print("cross-server bytes paid by the non-co-located dot: %d" % moved)

    # -- train LR with Adam, exactly Figure 3's flow -------------------------
    # (the paper's default learning rate 0.618 suits its huge sparse models;
    # this small dense example wants a gentler step)
    from repro.ml.optim import Adam

    rows, _ = sparse_classification(500, 1000, 15, seed=7)
    result = train_logistic_regression(
        ctx, rows, dim=1000, optimizer=Adam(learning_rate=0.2),
        n_iterations=30, batch_fraction=0.5, seed=7,
    )
    print("\nLR with server-side Adam:")
    for t, loss in result.history[::10] + [result.history[-1]]:
        print("  t=%.4fs  loss=%.4f" % (t, loss))


if __name__ == "__main__":
    main()
