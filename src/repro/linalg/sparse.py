"""Sparse instance representation used by the training-data pipelines.

Training rows are sparse index/value pairs plus a label, matching the
libsvm-style data the paper's LR workloads consume (KDDB has ~30 non-zeros
per row over 29M features).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import DimensionMismatchError


class SparseRow:
    """One labeled sparse training instance."""

    __slots__ = ("indices", "values", "label")

    def __init__(self, indices, values, label):
        self.indices = np.asarray(indices, dtype=np.int64)
        self.values = np.asarray(values, dtype=float)
        if self.indices.shape != self.values.shape:
            raise DimensionMismatchError(
                "indices/values shapes differ: %r vs %r"
                % (self.indices.shape, self.values.shape)
            )
        self.label = float(label)

    @property
    def nnz(self):
        return int(self.indices.size)

    def dot_dense(self, dense):
        """Dot product against a full dense weight vector."""
        return float(np.dot(dense[self.indices], self.values))

    def dot_local(self, weights, position):
        """Dot product against a compact weight slice.

        ``weights`` holds values for this row's indices at offsets
        ``position[i] .. position[i] + nnz``; used when a task pulled only
        the union of its batch's indices.
        """
        return float(np.dot(weights[position : position + self.nnz], self.values))

    def to_dense(self, dim):
        """Expand into a dense vector of dimension *dim*."""
        dense = np.zeros(dim)
        dense[self.indices] = self.values
        return dense

    def __repr__(self):
        return "SparseRow(nnz=%d, label=%g)" % (self.nnz, self.label)


def batch_index_union(rows):
    """Sorted unique feature indices touched by *rows* (sparse-pull keys)."""
    if not rows:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate([row.indices for row in rows]))


def batch_nnz(rows):
    """Total non-zeros across *rows*."""
    return int(sum(row.nnz for row in rows))
