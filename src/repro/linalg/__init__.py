"""Minimal linear-algebra helpers (sparse training rows)."""

from repro.linalg.sparse import SparseRow, batch_index_union, batch_nnz

__all__ = ["SparseRow", "batch_index_union", "batch_nnz"]
