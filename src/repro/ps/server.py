"""Parameter server: shard storage plus server-side compute kernels.

Each :class:`PSServer` owns one simulated machine and stores, per model
matrix, the row shards assigned to it by the matrix layout.  All mutations
and kernel executions charge compute time to the server's virtual clock, so
server-side computation is not free — it is merely local.

Requests arrive as typed :mod:`~repro.ps.messages` values through
:meth:`PSServer.dispatch`, which routes each message type to its handler —
the server-side half of the explicit RPC protocol.  The storage and compute
primitives (``read``/``add``/``assign``/``aggregate``/``execute_kernel``)
stay public for server-local callers (recovery, checkpointing, realignment),
but clients never invoke them directly.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.resource import TimelineResource
from repro.common.errors import MatrixNotFoundError, PSError, ServerDownError
from repro.common.rng import generator
from repro.ps import messages

#: Flops charged per element for simple elementwise mutations.
ELEMENTWISE_FLOPS = 2.0

#: Flops charged per element per operand for zip kernels (default estimate).
KERNEL_FLOPS_PER_ELEMENT = 3.0


def _aggregate_values(values, kind):
    """The shard-aggregate math, shared by primary and replica serving."""
    if kind == "sum":
        return float(values.sum())
    if kind == "nnz":
        return float(np.count_nonzero(values))
    if kind == "sumsq":
        return float(np.dot(values, values))
    if kind == "max":
        return float(values.max()) if values.size else -np.inf
    if kind == "min":
        return float(values.min()) if values.size else np.inf
    raise PSError("unknown aggregate %r" % (kind,))


def _copy_rows(rows):
    """Deep-copy a ``{row: RowShard}`` map.

    Equal-range shard sets — the common case under a column layout, where
    every pool row of a matrix holds the same ``[start, stop)`` slice —
    are copied as one contiguous 2-D block (a single C-level ``np.stack``
    instead of one allocation per row) and handed back as per-row views of
    that block; ragged sets fall back to per-row copies.  Views are safe:
    every mutation path writes *into* ``shard.values`` (``+=``, slice and
    fancy assignment, ``fill``), never rebinds it.
    """
    if len(rows) > 1:
        items = list(rows.items())
        first = items[0][1]
        start = first.start
        stop = first.stop
        uniform = all(
            shard.start == start and shard.stop == stop
            for _row, shard in items
        )
        if uniform:
            block = np.stack([shard.values for _row, shard in items])
            return {
                row: RowShard(start, stop, block[i])
                for i, (row, _shard) in enumerate(items)
            }
    return {
        row: RowShard(shard.start, shard.stop, shard.values.copy())
        for row, shard in rows.items()
    }


class RowShard:
    """The slice ``[start, stop)`` of one model row held by one server."""

    __slots__ = ("start", "stop", "values")

    def __init__(self, start, stop, values):
        self.start = int(start)
        self.stop = int(stop)
        self.values = values

    def local(self, global_indices):
        """Convert global column indices into this shard's local offsets."""
        return np.asarray(global_indices, dtype=np.int64) - self.start

    def __len__(self):
        return self.stop - self.start


class ReplicaEntry:
    """This server's copy of another server's shards of one matrix.

    ``rows`` maps row -> :class:`RowShard` (the *primary's* column range),
    ``versions`` carries the primary's per-row mutation counters as of the
    last install/apply, and ``install_epoch`` is the primary's recovery
    epoch at install time — the fencing token: a replica whose install
    epoch trails the primary's current epoch is stale (the primary may
    have rolled back to a checkpoint) and must not serve reads.
    """

    __slots__ = ("rows", "versions", "install_epoch")

    def __init__(self, rows, versions, install_epoch):
        self.rows = rows
        self.versions = versions
        self.install_epoch = int(install_epoch)


class PSServer:
    """One parameter server process."""

    def __init__(self, cluster, node_id, server_index, epoch=0):
        self.cluster = cluster
        self.node_id = node_id
        self.server_index = int(server_index)
        self.alive = True
        self._store = {}
        self.cpu = TimelineResource()
        self.last_completion = 0.0
        self._arrival = None
        #: Recovery epoch: bumped whenever a replacement process takes over
        #: this server index (the master passes ``failed.epoch + 1``), so a
        #: client-cached version token can never falsely match across a
        #: crash — recovered state may have rolled back to a checkpoint.
        self.epoch = int(epoch)
        #: Per-(matrix_id, row) mutation counters; together with the epoch
        #: they form the version token worker caches validate against.
        self.versions = {}
        #: Hot-key replica copies held FOR other servers, keyed by
        #: ``(matrix_id, primary_server_index)``.  Kept apart from
        #: ``_store``: under a column layout this server already owns its
        #: own shard of every row, so replica shards (the primary's column
        #: range) can never share the primary store's keying.
        self.replica_store = {}
        #: Nesting depth of :meth:`dispatch`.  Mutations that run at depth
        #: zero were invoked *directly* (realignment, recovery tooling) and
        #: bypass the transport's replica fan-out, so they must demote any
        #: replicas of the touched shard instead of letting them diverge.
        self._dispatch_depth = 0
        #: The causal-tracing context of the request currently being
        #: dispatched (``(trace_id, parent_span_id)`` or ``None``) — the
        #: parent for the CPU spans :meth:`_service` records.  Pure
        #: observability; never consulted by any cost computation.
        self._trace_ctx = None
        #: ``(id(indices), shard.start) -> (indices, local_offsets)`` memo
        #: for the fast dispatch path.  Message index arrays are identity-
        #: stable and treated as immutable throughout (``messages``
        #: deduplicates shared lists by ``id`` for wire sizing already);
        #: holding the array reference keeps the id valid while cached.
        self._local_cache = {}
        #: Lazily cached ``node.spec.flops`` (immutable) so the fan-out
        #: serve loop prices compute without a node lookup per request.
        self._node_flops = None

    # -- version vectors ----------------------------------------------------

    def _notify_direct_write(self, matrix_id):
        """Demote replicas of a shard mutated OUTSIDE the dispatch path.

        Realignment and recovery tooling write through the public storage
        primitives directly, bypassing the transport's replica fan-out; a
        replica of the touched shard would silently diverge, so the
        replication manager de-replicates the key instead.  A no-op at any
        dispatch depth > 0 (the fan-out covers those) and whenever no
        manager is configured.
        """
        if self._dispatch_depth == 0:
            manager = getattr(self.cluster, "replication", None)
            if manager is not None:
                manager.on_direct_write(matrix_id, self.server_index)
            # Chain copies follow direct writes instead of demoting —
            # they are the durability story, not an optimization.
            chain = getattr(self.cluster, "chain", None)
            if chain is not None:
                chain.on_direct_write(matrix_id, self.server_index)

    def _bump_version(self, matrix_id, row):
        key = (matrix_id, int(row))
        self.versions[key] = self.versions.get(key, 0) + 1

    def version_token(self, matrix_id, row):
        """The ``(epoch, counter)`` token for one row; equality-only."""
        return (self.epoch, self.versions.get((matrix_id, int(row)), 0))

    # -- request service model ----------------------------------------------

    def begin(self, arrival):
        """Mark the arrival time of the request about to be served.

        Clients call this between delivering a request and invoking the
        operation, so service time queues on this server's CPU from the
        request's arrival instead of being welded to an unrelated global
        clock.
        """
        self._arrival = float(arrival)

    def _service(self, flops, tag):
        """Book *flops* of work on the server CPU; returns completion time.

        CPU capacity uses the same order-insensitive interval reservation
        as NICs, so concurrent clients' requests serialize by genuine
        overlap, not by simulation processing order.  Several operations
        serving ONE request (e.g. the per-row reads of a block pull) chain:
        each starts no earlier than the previous one's completion, all
        anchored at the request's arrival — never at the global server
        clock, which other clients' unrelated requests inflate.
        """
        arrival = self._arrival
        if arrival is None:
            arrival = self.cluster.clock.now(self.node_id)
        seconds = self.cluster.node(self.node_id).compute_seconds(flops)
        start = self.cpu.reserve(arrival, seconds)
        self.last_completion = start + seconds
        self._arrival = self.last_completion
        metrics = self.cluster.metrics
        metrics.record_compute(self.node_id, seconds, tag=tag)
        metrics.record_request(self.node_id, tag)
        metrics.observe("srv:" + tag, seconds)
        tracer = self.cluster.tracer
        if tracer.enabled:
            ctx = self._trace_ctx
            tracer.record(self.node_id, tag, start, self.last_completion,
                          cat="cpu",
                          parent_id=None if ctx is None else ctx[1],
                          queue_wait=start - arrival)
        self.cluster.clock.set_at_least(self.node_id, self.last_completion)
        return self.last_completion

    # -- request dispatch --------------------------------------------------

    def dispatch(self, request):
        """Serve one typed request; returns the handler's value.

        The handler table below maps each :mod:`~repro.ps.messages` type to
        the storage/compute primitive that serves it — the explicit
        server-side protocol surface, replacing the closures clients used
        to invoke directly.  A :class:`~repro.ps.messages.BatchRequest`
        dispatches its sub-requests in order against this server's CPU,
        each chaining on the previous one's completion (they arrived in one
        envelope); any failure mid-batch propagates so the transport
        retries the envelope as a whole.
        """
        try:
            handler = _HANDLERS[type(request)]
        except KeyError:
            raise PSError(
                "server %s has no handler for %r"
                % (self.node_id, type(request).__name__)
            ) from None
        prior_ctx = self._trace_ctx
        ctx = request.trace_ctx
        if ctx is None and self._dispatch_depth > 0:
            # Batch sub-requests carry no context of their own: they
            # inherit the envelope's, so their CPU spans still parent to
            # the client op that sent the batch.
            ctx = prior_ctx
        self._trace_ctx = ctx
        if request.codec is not None:
            # Decode-before-apply: an encoded push replaces its payload
            # with the decoded values here, so every storage primitive
            # (and the replica fan-out reading ``inner.values``) sees
            # exactly what the wire delivered.  Batch sub-requests hit
            # this through their own dispatch round.
            request.materialize()
        self._dispatch_depth += 1
        try:
            return handler(self, request)
        finally:
            self._dispatch_depth -= 1
            self._trace_ctx = prior_ctx

    def _local_offsets(self, indices, start):
        """Global -> shard-local index conversion, memoized per array."""
        key = (id(indices), start)
        entry = self._local_cache.get(key)
        if entry is not None and entry[0] is indices:
            return entry[1]
        local = np.asarray(indices, dtype=np.int64) - start
        if len(self._local_cache) >= 64:
            self._local_cache.clear()
        self._local_cache[key] = (indices, local)
        return local

    def _is_replica_read(self, request):
        return (request.replica_of is not None
                and request.replica_of != self.server_index)

    def _encode_response(self, request, values):
        """Apply the request's response codec (quantize-at-serve-time).

        The client priced the response at the codec's fixed rate; the
        server round-trips the values through the codec so the floats
        delivered are exactly the floats that size paid for.  Stateless
        quantizers only — the cost model never attaches stateful codecs
        to pulls.
        """
        codec = request.codec
        if codec is None:
            return values
        return codec.decode(codec.encode(values))

    def _serve_pull_row(self, request):
        if self._is_replica_read(request):
            values = self.replica_read(request.matrix_id, request.replica_of,
                                       request.row, request.indices)
        else:
            values = self.read(request.matrix_id, request.row, request.indices)
        return self._encode_response(request, values)

    def _serve_pull_range(self, request):
        span = np.arange(request.start, request.stop, dtype=np.int64)
        if self._is_replica_read(request):
            values = self.replica_read(request.matrix_id, request.replica_of,
                                       request.row, span)
        else:
            values = self.read(request.matrix_id, request.row, span)
        return self._encode_response(request, values)

    def _serve_pull_or_create(self, request):
        """Serve a lazy-table read, creating the row if it is unseen.

        The init values come from a **one-shot** per-(matrix, row) RNG
        stream whose name carries no server index: creation here, a
        re-materialization after a crash (:meth:`PSMaster._reconcile`) and
        a re-creation on a different server after a shard migration all
        draw bit-identical values.  Returns ``(values, created)`` — the
        created flag is the marker word the response size always carries.
        """
        self._check_alive()
        matrix_id = request.matrix_id
        row = request.row
        if self._is_replica_read(request):
            # A chain successor standing in for a crashed primary: the
            # router only retargets when the copy already holds the row,
            # so this is a pure read — creation stays the primary's job.
            values = self.replica_read(matrix_id, request.replica_of, row)
            return values, False
        created = not self.has_shard(matrix_id, row)
        if created:
            rng = generator(self.cluster.rng.seed,
                            "ps-lazy-init-%s-%d" % (matrix_id, row))
            self.allocate_row(matrix_id, row, 0, request.n_values,
                              init=request.init, rng=rng, scale=request.scale)
            self._service(
                ELEMENTWISE_FLOPS * max(1, request.n_values), "ps-create"
            )
            self.cluster.metrics.increment("lazy-creates")
            # A replica of this shard key (installed before the row
            # existed) would silently miss the new row; de-replicate via
            # the direct-write hook rather than letting it diverge.
            manager = getattr(self.cluster, "replication", None)
            if manager is not None:
                manager.on_direct_write(matrix_id, self.server_index)
            # The chain, by contrast, grows with the table: stream the
            # new row to the successors so a crash right after creation
            # still promotes a bit-identical vector.
            chain = getattr(self.cluster, "chain", None)
            if chain is not None:
                chain.on_row_created(matrix_id, row, self.server_index)
        values = self.read(matrix_id, row)
        return values, created

    def _serve_push(self, request):
        if request.mode == "add":
            self.add(request.matrix_id, request.row, request.values,
                     request.indices)
        else:
            self.assign(request.matrix_id, request.row, request.values,
                        request.indices)

    def _serve_push_range(self, request):
        span = request.span()
        if request.mode == "add":
            self.add(request.matrix_id, request.row, request.values, span)
        else:
            self.assign(request.matrix_id, request.row, request.values, span)

    def _serve_aggregate(self, request):
        if self._is_replica_read(request):
            return self.replica_aggregate(request.matrix_id,
                                          request.replica_of, request.row,
                                          request.kind)
        return self.aggregate(request.matrix_id, request.row, request.kind)

    def _serve_kernel(self, request):
        return self.execute_kernel(request.kernel, request.operands,
                                   args=request.args, flops=request.flops)

    def _serve_fill(self, request):
        self.fill(request.matrix_id, request.row, request.value)

    def _serve_clock_advance(self, request):
        self._check_alive()
        tokens = [
            self.version_token(matrix_id, row) for matrix_id, row in request.keys
        ]
        self._service(max(1.0, float(len(request.keys))), "ps-clock")
        return tokens

    def _serve_batch(self, request):
        subs = request.requests
        if len(subs) > 1:
            fused = self._serve_batch_fused(subs)
            if fused is not None:
                return fused
        return [self.dispatch(sub) for sub in subs]

    # -- fused batch serving (the vectorized fast path) ----------------------

    def _serve_batch_fused(self, subs):
        """Serve a homogeneous batch without per-sub dispatch rounds.

        A coalesced block op arrives as one envelope of N same-type
        sub-requests; dispatching them one by one costs N handler rounds, N
        CPU reservations and 3N metric calls.  The fused path validates
        every shard up front (so a missing shard falls back and fails at
        exactly the sub the per-sub path would), applies the row ops in one
        loop with shared index arrays converted to local offsets once per
        ``(array, shard-start)``, books the CPU through one
        ``reserve_chain``, and records metrics through one bulk call — all
        bit-identical to per-sub dispatch.  Returns ``None`` to fall back
        whenever any per-sub observable could differ: span tracing (spans
        nest per sub), pending scheduled crashes (a crash may fire
        mid-batch), a replication manager (replica reads/demotions), a
        chain replicator (write fan-out and dead-primary reads), a dead
        server, or a mixed batch.
        """
        cluster = self.cluster
        if not self.alive or cluster.tracer.enabled \
                or cluster.failures.has_pending_server_failures() \
                or getattr(cluster, "replication", None) is not None \
                or getattr(cluster, "chain", None) is not None \
                or getattr(cluster, "costmodel", None) is not None:
            return None
        first = subs[0]
        kind = type(first)
        if kind is messages.PullRowRequest:
            for sub in subs:
                if type(sub) is not kind or sub.replica_of is not None \
                        or sub.codec is not None:
                    return None
            return self._fused_pull_rows(subs)
        if kind is messages.PushRequest:
            mode = first.mode
            for sub in subs:
                if type(sub) is not kind or sub.mode != mode \
                        or sub.replica_of is not None \
                        or sub.codec is not None:
                    return None
            return self._fused_pushes(subs, mode)
        return None

    def _fused_shards(self, subs):
        """Resolve every sub-request's shard, or ``None`` to fall back.

        Validation happens before any mutation: a batch with a missing
        shard must take the per-sub path so earlier subs apply exactly once
        before the error surfaces, matching per-sub dispatch state.
        """
        store = self._store
        shards = []
        for sub in subs:
            rows = store.get(sub.matrix_id)
            shard = None if rows is None else rows.get(sub.row)
            if shard is None:
                return None
            shards.append(shard)
        return shards

    def _fused_pull_rows(self, subs):
        shards = self._fused_shards(subs)
        if shards is None:
            return None
        results = []
        flops = []
        for sub, shard in zip(subs, shards):
            indices = sub.indices
            if indices is None:
                values = shard.values.copy()
            else:
                values = shard.values[
                    self._local_offsets(indices, shard.start)
                ]
            results.append(values)
            flops.append(max(1.0, values.size))
        self._service_chain(flops, "ps-read")
        return results

    def _fused_pushes(self, subs, mode):
        shards = self._fused_shards(subs)
        if shards is None:
            return None
        add = mode == "add"
        versions = self.versions
        flops = []
        for sub, shard in zip(subs, shards):
            indices = sub.indices
            if indices is None:
                if add:
                    shard.values += sub.values
                else:
                    shard.values[:] = sub.values
                n = shard.values.size
            else:
                local = self._local_offsets(indices, shard.start)
                if add:
                    np.add.at(shard.values, local, sub.values)
                else:
                    shard.values[local] = sub.values
                n = len(sub.values)
            version_key = (sub.matrix_id, sub.row)
            versions[version_key] = versions.get(version_key, 0) + 1
            flops.append(ELEMENTWISE_FLOPS * max(1, n) if add else max(1, n))
        # _notify_direct_write is a no-op here by construction: the fused
        # path only runs inside an envelope dispatch (depth > 0) and never
        # with a replication manager configured.
        self._service_chain(flops, "ps-add" if add else "ps-assign")
        return [None] * len(subs)

    def _service_chain(self, flops_list, tag):
        """Bulk twin of :meth:`_service`: chain N same-tag service slots.

        Same anchoring (the request's arrival, each slot no earlier than
        the previous completion), same per-slot seconds, same counter and
        histogram updates in the same order — one ``reserve_chain`` and one
        bulk metrics call instead of N of each.  Callers ensure tracing is
        off (the per-slot path records a span per reservation).
        """
        arrival = self._arrival
        if arrival is None:
            arrival = self.cluster.clock.now(self.node_id)
        compute_seconds = self.cluster.node(self.node_id).compute_seconds
        seconds = [compute_seconds(flops) for flops in flops_list]
        starts = self.cpu.reserve_chain(arrival, seconds)
        completion = starts[-1] + seconds[-1]
        self.last_completion = completion
        self._arrival = completion
        self.cluster.metrics.record_service_chain(self.node_id, tag, seconds)
        self.cluster.clock.set_at_least(self.node_id, completion)
        return completion

    def _serve_replicated_push(self, request):
        """Apply a fanned-out mutation to this server's replica copies.

        Fencing first (install epoch must match the primary epoch recorded
        at fan-out time), idempotence second (rows already at or past the
        recorded primary counters were covered by a fresh re-install), and
        only then the actual apply — which also advances the replica's row
        counters to the recorded values so replicas stay in lockstep with
        the primary's version vector.
        """
        self._check_alive()
        metrics = self.cluster.metrics
        entries = {}
        for matrix_id in {m for m, _row in request.versions}:
            entry = self.replica_store.get((matrix_id, request.primary_index))
            if entry is None or entry.install_epoch != request.epoch:
                metrics.increment("replica-fanout-fenced")
                self._service(1.0, "ps-replica")
                return None
            entries[matrix_id] = entry
        if all(entries[m].versions.get((m, row), 0) >= counter
               for (m, row), counter in request.versions.items()):
            metrics.increment("replica-fanout-skipped")
            self._service(1.0, "ps-replica")
            return None
        self._replica_apply(request.inner, entries)
        for (m, row), counter in request.versions.items():
            entries[m].versions[(m, row)] = counter
        return None

    # -- lifecycle --------------------------------------------------------

    def is_alive(self):
        """Apply any scheduled crash, then report liveness (never raises).

        Used by sweeps that must tolerate dead servers (``checkpoint_all``
        skips them) as well as by :meth:`_check_alive`.
        """
        if self.alive:
            now = self.cluster.clock.now(self.node_id)
            if self.cluster.failures.due_server_failures(self.node_id, now):
                self.crash()
        return self.alive

    def _check_alive(self):
        """Apply any scheduled crash, then verify the server is up."""
        if not self.is_alive():
            raise ServerDownError("server %s is down" % self.node_id)

    def crash(self):
        """Lose all state (a fraction of the model), as in Section 5.3."""
        self.alive = False
        self._store.clear()
        self.replica_store.clear()
        self.cluster.metrics.increment("server-crashes")

    def revive(self):
        """Bring the (replacement) server up with empty state.

        The coordinator "starts a new server" (Section 5.3): the replacement
        must not inherit the dead process's CPU queue, so the service
        timeline and in-flight request anchor are reset and the completion
        watermark restarts at the node's current virtual time.
        """
        self.alive = True
        self.cpu.reset()
        self._arrival = None
        self.last_completion = self.cluster.clock.now(self.node_id)

    # -- storage ----------------------------------------------------------

    def allocate_row(self, matrix_id, row, start, stop, init="zero", rng=None,
                     scale=1.0):
        """Create the local shard of (*matrix_id*, *row*)."""
        self._check_alive()
        length = int(stop) - int(start)
        if init == "zero":
            values = np.zeros(length)
        elif init == "random":
            if rng is None:
                raise PSError("random init requires an rng")
            values = rng.standard_normal(length) * float(scale)
        elif init == "uniform":
            if rng is None:
                raise PSError("uniform init requires an rng")
            values = (rng.random(length) - 0.5) * 2.0 * float(scale)
        else:
            raise PSError("unknown init %r" % (init,))
        rows = self._store.setdefault(matrix_id, {})
        rows[int(row)] = RowShard(start, stop, values)

    def drop_matrix(self, matrix_id):
        """Free every shard of *matrix_id*, replicas included (idempotent)."""
        self._store.pop(matrix_id, None)
        for key in [k for k in self.replica_store if k[0] == matrix_id]:
            del self.replica_store[key]

    def shard(self, matrix_id, row):
        """The local shard of (*matrix_id*, *row*); raises if absent."""
        self._check_alive()
        try:
            return self._store[matrix_id][int(row)]
        except KeyError:
            raise MatrixNotFoundError(
                "server %s has no shard for matrix %r row %r"
                % (self.node_id, matrix_id, row)
            ) from None

    def has_shard(self, matrix_id, row):
        return matrix_id in self._store and int(row) in self._store[matrix_id]

    def stored_matrix_ids(self):
        """Matrix ids with at least one local shard (for reconciliation)."""
        return list(self._store)

    def stored_bytes(self):
        """Bytes of model state held (used for checkpoint cost)."""
        return sum(
            shard.values.nbytes
            for rows in self._store.values()
            for shard in rows.values()
        )

    def matrix_rows(self, matrix_id):
        """All local shards of *matrix_id* (``{row: RowShard}``); raises
        if this server holds none — the replication manager's source for
        replica installs."""
        self._check_alive()
        try:
            return self._store[matrix_id]
        except KeyError:
            raise MatrixNotFoundError(
                "server %s has no shards for matrix %r"
                % (self.node_id, matrix_id)
            ) from None

    # -- hot-key replica storage -------------------------------------------

    def install_replica(self, matrix_id, primary_index, rows, versions,
                        install_epoch):
        """Install (or refresh) a replica of another server's shards.

        *rows* is the primary's ``{row: RowShard}`` for *matrix_id* and
        *versions* its per-row mutation counters; both are deep-copied in.
        ``install_epoch`` must be the primary's recovery epoch at copy
        time — it is the fence replica reads and fan-out applies validate.
        """
        self._check_alive()
        self.replica_store[(matrix_id, int(primary_index))] = ReplicaEntry(
            _copy_rows(rows), dict(versions), install_epoch
        )

    def drop_replica(self, matrix_id, primary_index):
        """De-replicate one key (idempotent)."""
        self.replica_store.pop((matrix_id, int(primary_index)), None)

    def has_replica(self, matrix_id, primary_index, epoch=None):
        """Whether a replica for the key is installed (and, if *epoch* is
        given, installed at that primary epoch — i.e. valid to serve)."""
        entry = self.replica_store.get((matrix_id, int(primary_index)))
        if entry is None:
            return False
        return epoch is None or entry.install_epoch == int(epoch)

    def replica_bytes(self):
        """Bytes of replica state held (report/capacity accounting)."""
        return sum(
            shard.values.nbytes
            for entry in self.replica_store.values()
            for shard in entry.rows.values()
        )

    def _replica_shard(self, matrix_id, primary_index, row):
        self._check_alive()
        entry = self.replica_store.get((matrix_id, int(primary_index)))
        if entry is None:
            raise MatrixNotFoundError(
                "server %s holds no replica of matrix %r primary %r"
                % (self.node_id, matrix_id, primary_index)
            )
        try:
            return entry.rows[int(row)]
        except KeyError:
            raise MatrixNotFoundError(
                "server %s replica of matrix %r primary %r lacks row %r"
                % (self.node_id, matrix_id, primary_index, row)
            ) from None

    def replica_read(self, matrix_id, primary_index, row, global_indices=None):
        """Serve a read from a replica copy (same pricing as :meth:`read`)."""
        shard = self._replica_shard(matrix_id, primary_index, row)
        if global_indices is None:
            values = shard.values.copy()
        else:
            values = shard.values[shard.local(global_indices)]
        self._service(max(1.0, values.size), "ps-read")
        return values

    def replica_aggregate(self, matrix_id, primary_index, row, kind):
        """A shard aggregate served from a replica copy."""
        shard = self._replica_shard(matrix_id, primary_index, row)
        values = shard.values
        self._service(ELEMENTWISE_FLOPS * max(1, values.size), "ps-agg")
        return _aggregate_values(values, kind)

    def _replica_apply(self, inner, entries):
        """Apply one fanned-out mutation against replica shard arrays."""
        if isinstance(inner, messages.PushRequest):
            shard = entries[inner.matrix_id].rows[inner.row]
            if inner.indices is None:
                if inner.mode == "add":
                    shard.values += inner.values
                else:
                    shard.values[:] = inner.values
                n = shard.values.size
            else:
                local = shard.local(inner.indices)
                if inner.mode == "add":
                    np.add.at(shard.values, local, inner.values)
                else:
                    shard.values[local] = inner.values
                n = len(inner.values)
            self._service(ELEMENTWISE_FLOPS * max(1, n), "ps-replica")
        elif isinstance(inner, messages.PushRangeRequest):
            shard = entries[inner.matrix_id].rows[inner.row]
            local = shard.local(inner.span())
            if inner.mode == "add":
                np.add.at(shard.values, local, inner.values)
            else:
                shard.values[local] = inner.values
            self._service(
                ELEMENTWISE_FLOPS * max(1, len(inner.values)), "ps-replica"
            )
        elif isinstance(inner, messages.FillRequest):
            shard = entries[inner.matrix_id].rows[inner.row]
            shard.values.fill(inner.value)
            self._service(max(1, shard.values.size), "ps-replica")
        elif isinstance(inner, messages.KernelRequest):
            shards = [
                entries[matrix_id].rows[int(row)]
                for matrix_id, row in inner.operands
            ]
            arrays = [shard.values for shard in shards]
            flops = inner.flops
            if flops is None:
                width = arrays[0].size if arrays else 0
                flops = KERNEL_FLOPS_PER_ELEMENT * max(1, width) \
                    * max(1, len(arrays))
            self._service(flops, "ps-replica")
            kwargs = dict(inner.args or {})
            if getattr(inner.kernel, "_wants_range", False):
                kwargs["start"] = shards[0].start
                kwargs["stop"] = shards[0].stop
            inner.kernel(arrays, **kwargs)
        else:
            raise PSError(
                "cannot replica-apply %r" % (type(inner).__name__,)
            )

    # -- row access (pull/push side) ---------------------------------------

    def read(self, matrix_id, row, global_indices=None):
        """Return a copy of the shard (or of selected global indices)."""
        shard = self.shard(matrix_id, row)
        if global_indices is None:
            values = shard.values.copy()
        else:
            values = shard.values[shard.local(global_indices)]
        self._service(max(1.0, values.size), "ps-read")
        return values

    def add(self, matrix_id, row, values, global_indices=None):
        """Accumulate *values* into the shard (the PS ``add``/push-add)."""
        shard = self.shard(matrix_id, row)
        if global_indices is None:
            shard.values += values
            n = shard.values.size
        else:
            np.add.at(shard.values, shard.local(global_indices), values)
            n = len(values)
        self._bump_version(matrix_id, row)
        self._notify_direct_write(matrix_id)
        self._service(ELEMENTWISE_FLOPS * max(1, n), "ps-add")

    def assign(self, matrix_id, row, values, global_indices=None):
        """Overwrite the shard (or selected indices) with *values*."""
        shard = self.shard(matrix_id, row)
        if global_indices is None:
            shard.values[:] = values
            n = shard.values.size
        else:
            shard.values[shard.local(global_indices)] = values
            n = len(values)
        self._bump_version(matrix_id, row)
        self._notify_direct_write(matrix_id)
        self._service(max(1, n), "ps-assign")

    def fill(self, matrix_id, row, value):
        """Set every element of the local shard to *value*."""
        shard = self.shard(matrix_id, row)
        shard.values.fill(float(value))
        self._bump_version(matrix_id, row)
        self._notify_direct_write(matrix_id)
        self._service(max(1, shard.values.size), "ps-fill")

    # -- server-side aggregates --------------------------------------------

    def aggregate(self, matrix_id, row, kind):
        """Local partial of a row aggregate: sum / nnz / sumsq / max / min."""
        shard = self.shard(matrix_id, row)
        values = shard.values
        self._service(ELEMENTWISE_FLOPS * max(1, values.size), "ps-agg")
        return _aggregate_values(values, kind)

    # -- server-side kernels (the DCV column ops) ---------------------------

    def execute_kernel(self, kernel, operands, args=None, flops=None):
        """Run *kernel* over co-located shard value arrays.

        ``operands`` is a list of ``(matrix_id, row)`` pairs; every shard
        must cover the same column range (guaranteed by DCV co-location).
        The kernel receives the list of 1-D arrays **by reference** — it may
        mutate them in place — plus ``args``, and returns a (small) partial
        result that the caller ships back as scalars.
        """
        shards = [self.shard(matrix_id, row) for matrix_id, row in operands]
        ranges = {(shard.start, shard.stop) for shard in shards}
        if len(ranges) > 1:
            raise PSError(
                "kernel operands are not aligned on server %s: %r"
                % (self.node_id, sorted(ranges))
            )
        arrays = [shard.values for shard in shards]
        # Kernels receive operand arrays by reference and may mutate any of
        # them, so conservatively bump every operand's version.
        for matrix_id, row in operands:
            self._bump_version(matrix_id, row)
        for matrix_id in sorted({matrix_id for matrix_id, _row in operands}):
            self._notify_direct_write(matrix_id)
        if flops is None:
            width = arrays[0].size if arrays else 0
            flops = KERNEL_FLOPS_PER_ELEMENT * max(1, width) * max(1, len(arrays))
        self._service(flops, "ps-kernel")
        kwargs = dict(args or {})
        if getattr(kernel, "_wants_range", False):
            kwargs["start"] = shards[0].start
            kwargs["stop"] = shards[0].stop
        return kernel(arrays, **kwargs)

    # -- checkpointing ------------------------------------------------------

    def snapshot(self):
        """Deep copy of all shard state (for the checkpoint manager).

        Copied through :func:`_copy_rows`: one contiguous block copy per
        equal-range matrix instead of a numpy allocation per row.
        """
        self._check_alive()
        return {
            matrix_id: _copy_rows(rows)
            for matrix_id, rows in self._store.items()
        }

    def restore(self, snapshot):
        """Replace all state with *snapshot* (deep-copied in)."""
        self._store = {
            matrix_id: _copy_rows(rows)
            for matrix_id, rows in snapshot.items()
        }
        self.alive = True

    def restore_matrix(self, matrix_id, rows):
        """Install one matrix's snapshot rows (deep-copied in), leaving
        the rest of the store — e.g. chain-promoted matrices — alone."""
        self._store[matrix_id] = _copy_rows(rows)
        self.alive = True


def serve_fast_fanout(cluster, fan_servers, fan_messages, fan_arrivals):
    """Serve a whole fan-out of requests — phase 2 of the bulk transmit.

    The three parallel sequences give the serving ``PSServer``, the
    message, and the request arrival time per outgoing wire message,
    pre-validated by the transport's bulk gates
    (every server alive, tracing off, no pending scheduled crashes, no
    replication manager).  Singleton pull/push messages whose shard is
    present are served inline — the same numpy mutation, version bump,
    single CPU reservation (via :meth:`TimelineResource.reserve`), metric
    updates and clock advance as ``begin()`` + ``dispatch()``, minus ~10
    Python frames per message.  Anything else (batch envelopes, replica
    reads, missing shards) falls back to the full dispatch in place, with
    pending bulk metrics flushed first so every per-key accumulation —
    float compute totals, histogram sums — happens in exactly the
    per-message order.  Returns ``(values, completions)`` aligned with
    the inputs; results and all virtual times are bit-identical to the
    per-message loop this replaces.
    """
    metrics = cluster.metrics
    clock_times = cluster.clock._times
    node = cluster.node
    PullRow = messages.PullRowRequest
    Push = messages.PushRequest
    values_out = []
    completions = []
    run_tag = None
    run_nodes = []
    run_secs = []
    record_bulk = metrics.record_service_bulk
    for server, message, arrival in zip(fan_servers, fan_messages,
                                        fan_arrivals):
        kind = type(message)
        shard = None
        if (kind is PullRow or kind is Push) and message.replica_of is None:
            rows = server._store.get(message.matrix_id)
            if rows is not None:
                shard = rows.get(message.row)
        if shard is None:
            # Slow lane: flush the pending metric run first so per-key
            # accumulation order matches the per-message path exactly.
            if run_secs:
                record_bulk(run_tag, run_nodes, run_secs)
                run_nodes = []
                run_secs = []
            server.begin(arrival)
            values_out.append(server.dispatch(message))
            completions.append(server.last_completion)
            continue
        indices = message.indices
        if kind is PullRow:
            if indices is None:
                value = shard.values.copy()
            else:
                value = shard.values[
                    server._local_offsets(indices, shard.start)
                ]
            flops = value.size
            if flops < 1:
                flops = 1.0
            tag = "ps-read"
        else:
            if indices is None:
                if message.mode == "add":
                    shard.values += message.values
                else:
                    shard.values[:] = message.values
                n = shard.values.size
            else:
                local = server._local_offsets(indices, shard.start)
                if message.mode == "add":
                    np.add.at(shard.values, local, message.values)
                else:
                    shard.values[local] = message.values
                n = len(message.values)
            if n < 1:
                n = 1
            version_key = (message.matrix_id, message.row)
            versions = server.versions
            versions[version_key] = versions.get(version_key, 0) + 1
            if message.mode == "add":
                flops = ELEMENTWISE_FLOPS * n
                tag = "ps-add"
            else:
                flops = n
                tag = "ps-assign"
            value = None
        rate = server._node_flops
        if rate is None:
            rate = server._node_flops = float(node(server.node_id).spec.flops)
        seconds = float(flops) / rate
        start = server.cpu.reserve(arrival, seconds)
        completion = start + seconds
        server.last_completion = completion
        server._arrival = completion
        node_id = server.node_id
        if completion > clock_times[node_id]:
            clock_times[node_id] = completion
        if tag is run_tag:
            run_nodes.append(node_id)
            run_secs.append(seconds)
        else:
            if run_secs:
                record_bulk(run_tag, run_nodes, run_secs)
            run_tag = tag
            run_nodes = [node_id]
            run_secs = [seconds]
        values_out.append(value)
        completions.append(completion)
    if run_secs:
        record_bulk(run_tag, run_nodes, run_secs)
    return values_out, completions


#: The server-side protocol: one handler per message type.
_HANDLERS = {
    messages.PullRowRequest: PSServer._serve_pull_row,
    messages.PullOrCreateRequest: PSServer._serve_pull_or_create,
    messages.PullRangeRequest: PSServer._serve_pull_range,
    messages.PushRequest: PSServer._serve_push,
    messages.PushRangeRequest: PSServer._serve_push_range,
    messages.AggregateRequest: PSServer._serve_aggregate,
    messages.KernelRequest: PSServer._serve_kernel,
    messages.FillRequest: PSServer._serve_fill,
    messages.ClockAdvanceRequest: PSServer._serve_clock_advance,
    messages.ReplicatedPushRequest: PSServer._serve_replicated_push,
    messages.BatchRequest: PSServer._serve_batch,
}
