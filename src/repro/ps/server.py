"""Parameter server: shard storage plus server-side compute kernels.

Each :class:`PSServer` owns one simulated machine and stores, per model
matrix, the row shards assigned to it by the matrix layout.  All mutations
and kernel executions charge compute time to the server's virtual clock, so
server-side computation is not free — it is merely local.

Requests arrive as typed :mod:`~repro.ps.messages` values through
:meth:`PSServer.dispatch`, which routes each message type to its handler —
the server-side half of the explicit RPC protocol.  The storage and compute
primitives (``read``/``add``/``assign``/``aggregate``/``execute_kernel``)
stay public for server-local callers (recovery, checkpointing, realignment),
but clients never invoke them directly.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.resource import TimelineResource
from repro.common.errors import MatrixNotFoundError, PSError, ServerDownError
from repro.ps import messages

#: Flops charged per element for simple elementwise mutations.
ELEMENTWISE_FLOPS = 2.0

#: Flops charged per element per operand for zip kernels (default estimate).
KERNEL_FLOPS_PER_ELEMENT = 3.0


class RowShard:
    """The slice ``[start, stop)`` of one model row held by one server."""

    __slots__ = ("start", "stop", "values")

    def __init__(self, start, stop, values):
        self.start = int(start)
        self.stop = int(stop)
        self.values = values

    def local(self, global_indices):
        """Convert global column indices into this shard's local offsets."""
        return np.asarray(global_indices, dtype=np.int64) - self.start

    def __len__(self):
        return self.stop - self.start


class PSServer:
    """One parameter server process."""

    def __init__(self, cluster, node_id, server_index, epoch=0):
        self.cluster = cluster
        self.node_id = node_id
        self.server_index = int(server_index)
        self.alive = True
        self._store = {}
        self.cpu = TimelineResource()
        self.last_completion = 0.0
        self._arrival = None
        #: Recovery epoch: bumped whenever a replacement process takes over
        #: this server index (the master passes ``failed.epoch + 1``), so a
        #: client-cached version token can never falsely match across a
        #: crash — recovered state may have rolled back to a checkpoint.
        self.epoch = int(epoch)
        #: Per-(matrix_id, row) mutation counters; together with the epoch
        #: they form the version token worker caches validate against.
        self.versions = {}

    # -- version vectors ----------------------------------------------------

    def _bump_version(self, matrix_id, row):
        key = (matrix_id, int(row))
        self.versions[key] = self.versions.get(key, 0) + 1

    def version_token(self, matrix_id, row):
        """The ``(epoch, counter)`` token for one row; equality-only."""
        return (self.epoch, self.versions.get((matrix_id, int(row)), 0))

    # -- request service model ----------------------------------------------

    def begin(self, arrival):
        """Mark the arrival time of the request about to be served.

        Clients call this between delivering a request and invoking the
        operation, so service time queues on this server's CPU from the
        request's arrival instead of being welded to an unrelated global
        clock.
        """
        self._arrival = float(arrival)

    def _service(self, flops, tag):
        """Book *flops* of work on the server CPU; returns completion time.

        CPU capacity uses the same order-insensitive interval reservation
        as NICs, so concurrent clients' requests serialize by genuine
        overlap, not by simulation processing order.  Several operations
        serving ONE request (e.g. the per-row reads of a block pull) chain:
        each starts no earlier than the previous one's completion, all
        anchored at the request's arrival — never at the global server
        clock, which other clients' unrelated requests inflate.
        """
        arrival = self._arrival
        if arrival is None:
            arrival = self.cluster.clock.now(self.node_id)
        seconds = self.cluster.node(self.node_id).compute_seconds(flops)
        start = self.cpu.reserve(arrival, seconds)
        self.last_completion = start + seconds
        self._arrival = self.last_completion
        metrics = self.cluster.metrics
        metrics.record_compute(self.node_id, seconds, tag=tag)
        metrics.record_request(self.node_id, tag)
        metrics.observe("srv:" + tag, seconds)
        tracer = self.cluster.tracer
        if tracer.enabled:
            tracer.record(self.node_id, tag, start, self.last_completion,
                          cat="cpu", queue_wait=start - arrival)
        self.cluster.clock.set_at_least(self.node_id, self.last_completion)
        return self.last_completion

    # -- request dispatch --------------------------------------------------

    def dispatch(self, request):
        """Serve one typed request; returns the handler's value.

        The handler table below maps each :mod:`~repro.ps.messages` type to
        the storage/compute primitive that serves it — the explicit
        server-side protocol surface, replacing the closures clients used
        to invoke directly.  A :class:`~repro.ps.messages.BatchRequest`
        dispatches its sub-requests in order against this server's CPU,
        each chaining on the previous one's completion (they arrived in one
        envelope); any failure mid-batch propagates so the transport
        retries the envelope as a whole.
        """
        try:
            handler = _HANDLERS[type(request)]
        except KeyError:
            raise PSError(
                "server %s has no handler for %r"
                % (self.node_id, type(request).__name__)
            ) from None
        return handler(self, request)

    def _serve_pull_row(self, request):
        return self.read(request.matrix_id, request.row, request.indices)

    def _serve_pull_range(self, request):
        span = np.arange(request.start, request.stop, dtype=np.int64)
        return self.read(request.matrix_id, request.row, span)

    def _serve_push(self, request):
        if request.mode == "add":
            self.add(request.matrix_id, request.row, request.values,
                     request.indices)
        else:
            self.assign(request.matrix_id, request.row, request.values,
                        request.indices)

    def _serve_push_range(self, request):
        span = request.span()
        if request.mode == "add":
            self.add(request.matrix_id, request.row, request.values, span)
        else:
            self.assign(request.matrix_id, request.row, request.values, span)

    def _serve_aggregate(self, request):
        return self.aggregate(request.matrix_id, request.row, request.kind)

    def _serve_kernel(self, request):
        return self.execute_kernel(request.kernel, request.operands,
                                   args=request.args, flops=request.flops)

    def _serve_fill(self, request):
        self.fill(request.matrix_id, request.row, request.value)

    def _serve_clock_advance(self, request):
        self._check_alive()
        tokens = [
            self.version_token(matrix_id, row) for matrix_id, row in request.keys
        ]
        self._service(max(1.0, float(len(request.keys))), "ps-clock")
        return tokens

    def _serve_batch(self, request):
        return [self.dispatch(sub) for sub in request.requests]

    # -- lifecycle --------------------------------------------------------

    def is_alive(self):
        """Apply any scheduled crash, then report liveness (never raises).

        Used by sweeps that must tolerate dead servers (``checkpoint_all``
        skips them) as well as by :meth:`_check_alive`.
        """
        if self.alive:
            now = self.cluster.clock.now(self.node_id)
            if self.cluster.failures.due_server_failures(self.node_id, now):
                self.crash()
        return self.alive

    def _check_alive(self):
        """Apply any scheduled crash, then verify the server is up."""
        if not self.is_alive():
            raise ServerDownError("server %s is down" % self.node_id)

    def crash(self):
        """Lose all state (a fraction of the model), as in Section 5.3."""
        self.alive = False
        self._store.clear()
        self.cluster.metrics.increment("server-crashes")

    def revive(self):
        """Bring the (replacement) server up with empty state.

        The coordinator "starts a new server" (Section 5.3): the replacement
        must not inherit the dead process's CPU queue, so the service
        timeline and in-flight request anchor are reset and the completion
        watermark restarts at the node's current virtual time.
        """
        self.alive = True
        self.cpu.reset()
        self._arrival = None
        self.last_completion = self.cluster.clock.now(self.node_id)

    # -- storage ----------------------------------------------------------

    def allocate_row(self, matrix_id, row, start, stop, init="zero", rng=None,
                     scale=1.0):
        """Create the local shard of (*matrix_id*, *row*)."""
        self._check_alive()
        length = int(stop) - int(start)
        if init == "zero":
            values = np.zeros(length)
        elif init == "random":
            if rng is None:
                raise PSError("random init requires an rng")
            values = rng.standard_normal(length) * float(scale)
        elif init == "uniform":
            if rng is None:
                raise PSError("uniform init requires an rng")
            values = (rng.random(length) - 0.5) * 2.0 * float(scale)
        else:
            raise PSError("unknown init %r" % (init,))
        rows = self._store.setdefault(matrix_id, {})
        rows[int(row)] = RowShard(start, stop, values)

    def drop_matrix(self, matrix_id):
        """Free every shard of *matrix_id* (idempotent)."""
        self._store.pop(matrix_id, None)

    def shard(self, matrix_id, row):
        """The local shard of (*matrix_id*, *row*); raises if absent."""
        self._check_alive()
        try:
            return self._store[matrix_id][int(row)]
        except KeyError:
            raise MatrixNotFoundError(
                "server %s has no shard for matrix %r row %r"
                % (self.node_id, matrix_id, row)
            ) from None

    def has_shard(self, matrix_id, row):
        return matrix_id in self._store and int(row) in self._store[matrix_id]

    def stored_matrix_ids(self):
        """Matrix ids with at least one local shard (for reconciliation)."""
        return list(self._store)

    def stored_bytes(self):
        """Bytes of model state held (used for checkpoint cost)."""
        return sum(
            shard.values.nbytes
            for rows in self._store.values()
            for shard in rows.values()
        )

    # -- row access (pull/push side) ---------------------------------------

    def read(self, matrix_id, row, global_indices=None):
        """Return a copy of the shard (or of selected global indices)."""
        shard = self.shard(matrix_id, row)
        if global_indices is None:
            values = shard.values.copy()
        else:
            values = shard.values[shard.local(global_indices)]
        self._service(max(1.0, values.size), "ps-read")
        return values

    def add(self, matrix_id, row, values, global_indices=None):
        """Accumulate *values* into the shard (the PS ``add``/push-add)."""
        shard = self.shard(matrix_id, row)
        if global_indices is None:
            shard.values += values
            n = shard.values.size
        else:
            np.add.at(shard.values, shard.local(global_indices), values)
            n = len(values)
        self._bump_version(matrix_id, row)
        self._service(ELEMENTWISE_FLOPS * max(1, n), "ps-add")

    def assign(self, matrix_id, row, values, global_indices=None):
        """Overwrite the shard (or selected indices) with *values*."""
        shard = self.shard(matrix_id, row)
        if global_indices is None:
            shard.values[:] = values
            n = shard.values.size
        else:
            shard.values[shard.local(global_indices)] = values
            n = len(values)
        self._bump_version(matrix_id, row)
        self._service(max(1, n), "ps-assign")

    def fill(self, matrix_id, row, value):
        """Set every element of the local shard to *value*."""
        shard = self.shard(matrix_id, row)
        shard.values.fill(float(value))
        self._bump_version(matrix_id, row)
        self._service(max(1, shard.values.size), "ps-fill")

    # -- server-side aggregates --------------------------------------------

    def aggregate(self, matrix_id, row, kind):
        """Local partial of a row aggregate: sum / nnz / sumsq / max / min."""
        shard = self.shard(matrix_id, row)
        values = shard.values
        self._service(ELEMENTWISE_FLOPS * max(1, values.size), "ps-agg")
        if kind == "sum":
            return float(values.sum())
        if kind == "nnz":
            return float(np.count_nonzero(values))
        if kind == "sumsq":
            return float(np.dot(values, values))
        if kind == "max":
            return float(values.max()) if values.size else -np.inf
        if kind == "min":
            return float(values.min()) if values.size else np.inf
        raise PSError("unknown aggregate %r" % (kind,))

    # -- server-side kernels (the DCV column ops) ---------------------------

    def execute_kernel(self, kernel, operands, args=None, flops=None):
        """Run *kernel* over co-located shard value arrays.

        ``operands`` is a list of ``(matrix_id, row)`` pairs; every shard
        must cover the same column range (guaranteed by DCV co-location).
        The kernel receives the list of 1-D arrays **by reference** — it may
        mutate them in place — plus ``args``, and returns a (small) partial
        result that the caller ships back as scalars.
        """
        shards = [self.shard(matrix_id, row) for matrix_id, row in operands]
        ranges = {(shard.start, shard.stop) for shard in shards}
        if len(ranges) > 1:
            raise PSError(
                "kernel operands are not aligned on server %s: %r"
                % (self.node_id, sorted(ranges))
            )
        arrays = [shard.values for shard in shards]
        # Kernels receive operand arrays by reference and may mutate any of
        # them, so conservatively bump every operand's version.
        for matrix_id, row in operands:
            self._bump_version(matrix_id, row)
        if flops is None:
            width = arrays[0].size if arrays else 0
            flops = KERNEL_FLOPS_PER_ELEMENT * max(1, width) * max(1, len(arrays))
        self._service(flops, "ps-kernel")
        kwargs = dict(args or {})
        if getattr(kernel, "_wants_range", False):
            kwargs["start"] = shards[0].start
            kwargs["stop"] = shards[0].stop
        return kernel(arrays, **kwargs)

    # -- checkpointing ------------------------------------------------------

    def snapshot(self):
        """Deep copy of all shard state (for the checkpoint manager)."""
        self._check_alive()
        return {
            matrix_id: {
                row: RowShard(shard.start, shard.stop, shard.values.copy())
                for row, shard in rows.items()
            }
            for matrix_id, rows in self._store.items()
        }

    def restore(self, snapshot):
        """Replace all state with *snapshot* (deep-copied in)."""
        self._store = {
            matrix_id: {
                row: RowShard(shard.start, shard.stop, shard.values.copy())
                for row, shard in rows.items()
            }
            for matrix_id, rows in snapshot.items()
        }
        self.alive = True


#: The server-side protocol: one handler per message type.
_HANDLERS = {
    messages.PullRowRequest: PSServer._serve_pull_row,
    messages.PullRangeRequest: PSServer._serve_pull_range,
    messages.PushRequest: PSServer._serve_push,
    messages.PushRangeRequest: PSServer._serve_push_range,
    messages.AggregateRequest: PSServer._serve_aggregate,
    messages.KernelRequest: PSServer._serve_kernel,
    messages.FillRequest: PSServer._serve_fill,
    messages.ClockAdvanceRequest: PSServer._serve_clock_advance,
    messages.BatchRequest: PSServer._serve_batch,
}
