"""Hot-key replication: classify, replicate, route, fan out, rebalance.

Skewed workloads (power-law features in LR, degree-skewed graphs, word
counts in LDA) hammer one server even under PS2's column partitioning —
the non-uniform-access problem NuPS (Renz-Wieland et al.) attacks with
*selective* replication of the hot keys.  This module closes the loop
between PR 1's hot-shard telemetry and the routing/consistency machinery:

- **Classification** consumes :meth:`MetricsRegistry.shard_heat` — the
  same unified counter the report's hot-shard table ranks by, so policy
  and telemetry cannot drift.  Each rebalance sweep classifies on the
  heat *delta* since the previous sweep (a shard that was hot an hour of
  virtual time ago but cooled off gets de-replicated).  Two modes:
  ``topk`` replicates the hottest ``hot_key_fraction`` of shard keys;
  ``threshold`` replicates keys whose delta exceeds ``1 /
  hot_key_fraction`` times their matrix's mean delta.

- **Replication** copies a hot (matrix, primary) shard key's rows to
  ``replication_factor`` other servers (0 means all of them), charging
  the migration bytes to the NIC model under the ``replica-migrate`` tag.
  Each installed replica records the primary's recovery epoch — the
  PR-4 fencing token — and the primary's per-row mutation counters.

- **Routing** (:meth:`HotKeyManager.route_read`) reroutes pull/aggregate
  requests to the *nearest-by-queue* holder (primary or valid replica,
  earliest NIC-timeline horizon).  The request keeps attributing its
  heat to the primary shard key via ``replica_of``, so rerouting can
  never drain the very signal that created the replica.

- **Write fan-out**: after the transport applies a mutation to the
  primary, the manager emits one typed
  :class:`~repro.ps.messages.ReplicatedPushRequest` per replica carrying
  the primary's epoch and post-apply row counters.  Replicas apply
  idempotently (counters already caught up — e.g. by a crash-triggered
  re-install — skip the apply) and fenced (an epoch mismatch means the
  primary recovered and may have rolled back; the stale fan-out must not
  resurrect lost state).

- **Rebalance** runs on virtual time through the same hook machinery as
  the checkpoint sweep: at every stage end when ``rebalance_interval``
  is 0, else whenever the interval has elapsed (also polled after every
  client PS op, so pure-PS workloads sweep too).

With ``ClusterConfig.replication == "off"`` no manager is constructed
and every transport/server path is bit-identical to a pre-replication
build — the golden-run guarantee the test matrix locks down.

This module also hosts :class:`ChainReplicator` — ElasticDL-style chained
replication for *durability* rather than read scaling: every primary's
full store is mirrored on its next ``chain_replicas`` ring successors,
kept in lockstep by the same epoch/counter-fenced fan-out machinery, and
promoted (max-version merge) into the replacement on a crash so recovery
never pauses for a checkpoint restore unless every holder died.
"""

from __future__ import annotations

from repro.common.errors import MatrixNotFoundError, ServerDownError
from repro.common.sizeof import FLOAT_BYTES, INDEX_BYTES
from repro.ps import messages
from repro.ps.server import RowShard

#: Request types a replica may serve (reads — never mutations).
READ_TYPES = (messages.PullRowRequest, messages.PullRangeRequest,
              messages.AggregateRequest)

#: Request types a chain successor may stand in for while its primary is
#: down: the hot-key read set plus lazy-table reads (served only when the
#: copy already holds the row — creation stays the primary's job).
CHAIN_READ_TYPES = READ_TYPES + (messages.PullOrCreateRequest,)

#: Mutation types whose effect must fan out to replicas.
MUTATION_TYPES = (messages.PushRequest, messages.PushRangeRequest,
                  messages.FillRequest, messages.KernelRequest)


class HotKeyManager:
    """Coordinator-resident hot-key replication policy and metadata.

    ``replicas`` is the authoritative replica map:
    ``{(matrix_id, primary_index): {replica_index: install_epoch}}``.
    An entry is *valid* — usable for routing and fan-out — only while its
    install epoch equals the primary's current recovery epoch; recovery
    refreshes the map (see :meth:`on_server_recovered`), so a stale entry
    only exists transiently between a crash and its recovery, and both
    the read router and the server-side apply fence it out.
    """

    def __init__(self, cluster, master):
        self.cluster = cluster
        self.master = master
        config = cluster.config
        self.mode = config.replication
        self.hot_key_fraction = float(config.hot_key_fraction)
        self.replication_factor = int(config.replication_factor)
        self.rebalance_interval = float(config.rebalance_interval)
        self._next_sweep = self.rebalance_interval
        self.replicas = {}
        #: Heat totals as of the last sweep; sweeps classify on the delta.
        self._last_heat = {}
        #: Virtual times at which rebalance sweeps ran (telemetry).
        self.rebalance_sweep_times = []
        #: Bumped whenever the replica topology may have changed (rebalance
        #: sweeps, recovery re-installs).  The client plan pool keys its
        #: pooled fan-out plans on ``(topology_epoch, plan_epoch)`` so
        #: pooling stays enabled under replication and is invalidated
        #: exactly when routing inputs change.
        self.plan_epoch = 0

    # -- introspection ------------------------------------------------------

    def replica_set(self, matrix_id, primary_index):
        """Sorted *valid* replica indices for one shard key (for tests
        and the report): entries at the primary's current epoch whose
        holder is up and still has the copy installed."""
        key = (matrix_id, int(primary_index))
        targets = self.replicas.get(key)
        if not targets:
            return []
        primary = self.master.server(primary_index)
        return sorted(
            replica_index
            for replica_index, epoch in targets.items()
            if epoch == primary.epoch
            and self.master.server(replica_index).alive
            and self.master.server(replica_index).has_replica(
                matrix_id, primary_index, epoch
            )
        )

    def replicated_keys(self):
        """Sorted shard keys currently carrying at least one replica."""
        return sorted(self.replicas)

    def claims(self, matrix_id, primary_index, holder_index):
        """Whether this manager tracks a replica of the key on *holder*.

        The coexistence contract with :class:`ChainReplicator`: both
        managers share the servers' ``replica_store`` slot for a key, so
        neither may physically evict an entry the other still claims.
        """
        key = (matrix_id, int(primary_index))
        return int(holder_index) in self.replicas.get(key, {})

    def replica_bytes(self):
        """Total bytes of replica state across live servers."""
        return sum(
            server.replica_bytes()
            for server in self.master.servers
            if server.alive
        )

    # -- read routing -------------------------------------------------------

    def _queue_load(self, server):
        """When the server's NIC queues drain — the backlog read routing
        minimizes.

        Uses the NIC timeline *horizons* (end of the last reservation in
        each direction), not cumulative busy totals.  Cumulative totals
        equalize long-run byte volume but go blind within a burst: once
        the replicas' lifetime totals catch up to the primary's, every
        read of the next burst lands on the primary again and queues,
        even though the replicas are idle *right now*.  The horizon is
        the instantaneous "when would this server take one more message"
        signal, and it self-balances: each rerouted read extends the
        serving replica's horizon, steering the next read elsewhere.
        """
        send_horizon, recv_horizon = self.cluster.network.nic_horizon(
            server.node_id
        )
        return max(send_horizon, recv_horizon)

    def route_read(self, request):
        """Reroute one read to the nearest-by-queue holder, in place.

        Candidates are the primary plus every valid replica; "nearest" is
        the earliest NIC queue drain (:meth:`_queue_load`; ties break
        toward the lower server index, primary first).  A rerouted
        request gets ``replica_of`` set to the primary index: the serving
        server uses it to address its replica store, and the shard
        telemetry keeps charging the access to the primary key.
        Mutations and control-plane messages pass through untouched.
        """
        if not isinstance(request, READ_TYPES) or request.replica_of is not None:
            return request
        primary_index = request.server_index
        targets = self.replicas.get((request.matrix_id, primary_index))
        if not targets:
            return request
        primary = self.master.server(primary_index)
        best = (self._queue_load(primary), primary_index)
        for replica_index in sorted(targets):
            if targets[replica_index] != primary.epoch:
                continue
            server = self.master.server(replica_index)
            if not server.alive or not server.has_replica(
                request.matrix_id, primary_index, primary.epoch
            ):
                continue
            candidate = (self._queue_load(server), replica_index)
            if candidate < best:
                best = candidate
        if best[1] != primary_index:
            request.server_index = best[1]
            request.replica_of = primary_index
            self.cluster.metrics.increment("replica-reads")
        return request

    # -- write fan-out ------------------------------------------------------

    def fan_out_messages(self, requests):
        """Replica copies of every mutation in *requests*, post-apply.

        Called by the transport after the originals were transmitted and
        served, so the primaries' per-row counters already reflect the
        mutations — each fan-out message snapshots those counters plus
        the primary's epoch as its idempotence/fencing token.  Assumes
        one client op never sends two mutations for the same
        (matrix, row, server), which holds for every client op by
        construction (one message per (row, shard)).
        """
        if not self.replicas:
            return []
        extras = []
        for request in requests:
            if isinstance(request, messages.KernelRequest):
                extras.extend(self._fan_out_kernel(request))
            elif isinstance(request, (messages.PushRequest,
                                      messages.PushRangeRequest,
                                      messages.FillRequest)):
                extras.extend(self._fan_out_mutation(request))
        return extras

    def _valid_targets(self, key, primary):
        targets = self.replicas.get(key)
        if not targets:
            return []
        return sorted(
            replica_index
            for replica_index, epoch in targets.items()
            if epoch == primary.epoch
        )

    def _fan_out_mutation(self, request):
        key = (request.matrix_id, request.server_index)
        primary = self.master.server(request.server_index)
        valid = self._valid_targets(key, primary)
        if not valid:
            return []
        row_key = (request.matrix_id, int(request.row))
        versions = {row_key: primary.versions.get(row_key, 0)}
        out = [
            messages.ReplicatedPushRequest(
                replica_index, request, request.server_index, primary.epoch,
                versions,
            )
            for replica_index in valid
        ]
        self.cluster.metrics.increment("replica-fanouts", len(out))
        return out

    def _fan_out_kernel(self, request):
        """Kernel fan-out: all-or-nothing across the operand matrices.

        A kernel mutates every operand in one shot, so a replica can only
        apply it if it holds copies of *all* operand matrices for this
        primary at the current epoch.  When the replicated operand keys
        do not share one identical valid replica set, the keys are
        demoted rather than allowed to silently diverge.
        """
        primary_index = request.server_index
        primary = self.master.server(primary_index)
        keys = sorted({(m, primary_index) for m, _row in request.operands})
        replicated = [key for key in keys if self.replicas.get(key)]
        if not replicated:
            return []
        sets = [frozenset(self._valid_targets(key, primary))
                for key in replicated]
        common = sets[0]
        if len(replicated) != len(keys) or not common \
                or any(s != common for s in sets):
            for key in replicated:
                self._demote(key)
            self.cluster.metrics.increment(
                "replica-kernel-demotions", len(replicated)
            )
            return []
        versions = {
            (m, int(row)): primary.versions.get((m, int(row)), 0)
            for m, row in request.operands
        }
        out = [
            messages.ReplicatedPushRequest(
                replica_index, request, primary_index, primary.epoch, versions
            )
            for replica_index in sorted(common)
        ]
        self.cluster.metrics.increment("replica-fanouts", len(out))
        return out

    # -- rebalance sweep ----------------------------------------------------

    def maybe_rebalance(self, at_stage_end=False):
        """Run a sweep if it is due; returns whether one ran.

        ``rebalance_interval == 0`` sweeps at every stage end (and only
        there); a positive interval sweeps on virtual time, polled both
        at stage ends and after every client PS op — the same dual
        trigger the checkpoint sweep uses.
        """
        if self.rebalance_interval <= 0:
            if not at_stage_end:
                return False
        elif self.cluster.clock.global_time() < self._next_sweep:
            return False
        self.rebalance()
        if self.rebalance_interval > 0:
            # Re-arm relative to the post-sweep clock: a long stage must
            # trigger one sweep, not a burst of catch-up sweeps.
            self._next_sweep = (
                self.cluster.clock.global_time() + self.rebalance_interval
            )
        return True

    def rebalance(self):
        """One classify/demote/promote sweep over the shard heat deltas."""
        metrics = self.cluster.metrics
        heat = metrics.shard_heat()
        delta = {}
        for key, value in heat.items():
            gained = value - self._last_heat.get(key, 0.0)
            if gained > 0 and self._key_exists(key):
                delta[key] = gained
        self._last_heat = dict(heat)
        if self.master.n_servers >= 2:
            hot = self._classify(delta)
            costmodel = getattr(self.cluster, "costmodel", None)
            if costmodel is not None:
                # The unified cost model gates *new* promotions: when
                # codecs already shrink a key's read traffic, replication
                # must still beat its migration bytes in the compressed
                # regime.  Keys already replicated are kept (churn is the
                # demote sweep's job, not the gate's).
                hot = {
                    key for key in hot
                    if key in self.replicas or costmodel.replication_worthwhile(
                        key, delta.get(key, 0.0), self.master)
                }
            for key in sorted(k for k in self.replicas if k not in hot):
                self._demote(key)
            for key in sorted(hot):
                self._promote(key)
        self.plan_epoch += 1
        metrics.increment("rebalance-sweeps")
        self.rebalance_sweep_times.append(self.cluster.clock.global_time())

    def _key_exists(self, key):
        matrix_id, server_index = key
        if not 0 <= server_index < self.master.n_servers:
            return False
        try:
            self.master.layout(matrix_id)
        except MatrixNotFoundError:
            return False
        return True

    def _classify(self, delta):
        """The hot shard keys under the configured mode."""
        if not delta:
            return set()
        if self.mode == "topk":
            k = max(1, int(round(self.hot_key_fraction * len(delta))))
            ranked = sorted(delta, key=lambda key: (-delta[key], key))
            return set(ranked[:k])
        # threshold: hot while the key's delta exceeds 1/fraction times
        # its matrix's mean delta this window.
        by_matrix = {}
        for (matrix_id, _server), gained in delta.items():
            by_matrix.setdefault(matrix_id, []).append(gained)
        hot = set()
        for key, gained in delta.items():
            gains = by_matrix[key[0]]
            mean = sum(gains) / len(gains)
            if gained > mean / self.hot_key_fraction:
                hot.add(key)
        return hot

    def _target_count(self):
        limit = self.master.n_servers - 1
        if self.replication_factor > 0:
            return min(self.replication_factor, limit)
        return limit

    def _promote(self, key):
        """Ensure *key* has its full valid replica set, installing on the
        coldest (fewest wire bytes) servers first."""
        matrix_id, primary_index = key
        primary = self.master.server(primary_index)
        if not primary.alive:
            return
        kept = set()
        for replica_index, epoch in sorted(self.replicas.get(key, {}).items()):
            server = self.master.server(replica_index)
            if (epoch == primary.epoch and server.alive
                    and server.has_replica(matrix_id, primary_index, epoch)):
                kept.add(replica_index)
            else:
                self.replicas.get(key, {}).pop(replica_index, None)
        needed = self._target_count() - len(kept)
        if needed <= 0:
            return
        metrics = self.cluster.metrics
        candidates = []
        for index, server in enumerate(self.master.servers):
            if index == primary_index or index in kept or not server.alive:
                continue
            load = (metrics.bytes_sent.get(server.node_id, 0.0)
                    + metrics.bytes_received.get(server.node_id, 0.0))
            candidates.append((load, index))
        promoted = 0
        for _load, index in sorted(candidates):
            if promoted >= needed:
                break
            if self._install(key, index):
                promoted += 1
        if promoted:
            metrics.increment("replica-promotions", promoted)

    def _install(self, key, replica_index):
        """Copy the key's rows onto one server, charging migration bytes."""
        matrix_id, primary_index = key
        primary = self.master.server(primary_index)
        target = self.master.server(replica_index)
        try:
            rows = primary.matrix_rows(matrix_id)
            versions = {
                row_key: counter
                for row_key, counter in primary.versions.items()
                if row_key[0] == matrix_id
            }
            nbytes = (
                messages.REQUEST_HEADER_BYTES
                + sum(shard.values.nbytes for shard in rows.values())
                + len(rows) * 2 * INDEX_BYTES
                + len(versions) * INDEX_BYTES
            )
            self.cluster.network.transfer(
                primary.node_id, target.node_id, nbytes, tag="replica-migrate"
            )
            target.install_replica(
                matrix_id, primary_index, rows, versions, primary.epoch
            )
        except (MatrixNotFoundError, ServerDownError):
            return False
        self.replicas.setdefault(key, {})[replica_index] = primary.epoch
        return True

    def _demote(self, key):
        """Drop every replica of *key* (a header-sized control message per
        holder) and forget the map entry."""
        matrix_id, primary_index = key
        targets = self.replicas.pop(key, {})
        if not targets:
            return
        from repro.cluster.cluster import DRIVER

        chain = getattr(self.cluster, "chain", None)
        for replica_index in sorted(targets):
            server = self.master.server(replica_index)
            if server.alive:
                # The physical entry stays if the chain replicator still
                # claims it as a successor copy (durability outranks the
                # read-scaling demotion) — only the hot-key bookkeeping
                # and the control message go out.
                if chain is None or not chain.claims(
                        matrix_id, primary_index, replica_index):
                    server.drop_replica(matrix_id, primary_index)
                self.cluster.network.transfer(
                    DRIVER, server.node_id, messages.REQUEST_HEADER_BYTES,
                    tag="replica-control",
                )
        self.cluster.metrics.increment("replica-demotions")

    # -- lifecycle hooks ----------------------------------------------------

    def on_server_recovered(self, server_index):
        """Restore the replica topology after :meth:`PSMaster.recover`.

        Two directions: keys whose *primary* is the recovered server get
        every replica re-installed at the new epoch (the old copies are
        fenced — the primary may have rolled back to a checkpoint); keys
        the recovered server *hosted* replicas for are re-installed onto
        it from their live primaries (the crash wiped its replica store).
        """
        server_index = int(server_index)
        reinstalled = 0
        for key in sorted(k for k in self.replicas if k[1] == server_index):
            for replica_index in sorted(self.replicas[key]):
                if self._install(key, replica_index):
                    reinstalled += 1
                else:
                    self.replicas[key].pop(replica_index, None)
            if not self.replicas[key]:
                del self.replicas[key]
        for key in sorted(
            k for k in self.replicas
            if k[1] != server_index and server_index in self.replicas[k]
        ):
            if self._install(key, server_index):
                reinstalled += 1
            else:
                self.replicas[key].pop(server_index, None)
                if not self.replicas[key]:
                    del self.replicas[key]
        if reinstalled:
            self.cluster.metrics.increment("replica-reinstalls", reinstalled)
        self.plan_epoch += 1

    def on_topology_resized(self):
        """Reset replication state after an elastic resize.

        Every replica was installed against the pre-resize shard map —
        its column range no longer matches any primary shard — so all
        keys are demoted wholesale, and the heat baselines restart so the
        next sweep classifies on post-migration traffic only (the retired
        ledger entries must not look like sudden negative deltas).
        Called by the master *before* departing servers leave the
        addressable set, so every holder can still be reached.
        """
        for key in sorted(self.replicas):
            self._demote(key)
        self._last_heat = {}
        self.plan_epoch += 1

    def on_matrix_freed(self, matrix_id):
        """Forget replica metadata for a freed matrix (the servers already
        purged their stores in ``drop_matrix``)."""
        for key in sorted(k for k in self.replicas if k[0] == matrix_id):
            del self.replicas[key]

    def on_direct_write(self, matrix_id, server_index):
        """Demote a key mutated outside the dispatch/fan-out path.

        Realignment and recovery tooling write through the server storage
        primitives directly; replicas of the touched shard would silently
        diverge, so the key is de-replicated (it can win replication back
        at the next sweep if it stays hot).
        """
        key = (matrix_id, int(server_index))
        if key in self.replicas:
            self._demote(key)
            self.plan_epoch += 1
            self.cluster.metrics.increment("replica-direct-write-demotions")


# -- chained replication (durability) ---------------------------------------


def chain_successors(primary_index, ring_size, m, alive):
    """The ring-ordered successor set of one primary.

    Walk the index ring starting right after *primary_index*, keep the
    first *m* live servers met, never include the primary itself.  The
    walk order depends only on the ring size, so for any live subset ``S``
    the result equals the full-ring order filtered to ``S`` and truncated
    — the "ring-stable under any live subset" property the Hypothesis
    suite pins: a server joining or leaving ``S`` never reorders the
    survivors relative to each other.
    """
    alive = set(alive)
    out = []
    if int(m) <= 0:
        return out
    for step in range(1, int(ring_size)):
        candidate = (int(primary_index) + step) % int(ring_size)
        if candidate == primary_index:
            continue
        if candidate in alive:
            out.append(candidate)
            if len(out) >= int(m):
                break
    return out


def merge_chain_copies(copies):
    """Max-version merge of several successors' copies of one shard key.

    *copies* maps ``holder_index -> (rows, counters)`` where ``rows`` is
    a ``{row: RowShard}`` map and ``counters`` a ``{row: int}`` map of
    that holder's recorded mutation counters.  Each row is taken from the
    holder with the highest counter for it, ties breaking to the lowest
    holder index, so the merge is deterministic regardless of dict
    insertion order.  Returns ``(rows, counters, origin)`` with
    ``origin`` mapping each row to the holder that supplied it.  Pure —
    the Hypothesis suite drives it directly.
    """
    rows_out = {}
    counters_out = {}
    origin = {}
    for holder in sorted(copies):
        rows, counters = copies[holder]
        for row, shard in rows.items():
            counter = counters.get(row, 0)
            if row not in rows_out or counter > counters_out[row]:
                rows_out[row] = shard
                counters_out[row] = counter
                origin[row] = holder
    return rows_out, counters_out, origin


class ChainReplicator:
    """Coordinator-resident chained shard replication for durability.

    Every primary's full per-matrix store is mirrored on its next
    ``chain_replicas`` live ring successors (:func:`chain_successors`);
    ``links`` is the authoritative chain map
    ``{(matrix_id, primary_index): {successor_index: install_epoch}}``.
    Copies live in the same epoch/counter-fenced ``replica_store`` slots
    the hot-key manager uses, and stay current because the transport fans
    *every* applied mutation out as the same fenced, idempotent
    :class:`~repro.ps.messages.ReplicatedPushRequest` — a stale fan-out
    from before a promotion carries the dead process's epoch and is
    rejected by the apply fence.

    Unlike hot-key replicas, chain copies are not a load-balancing
    optimization: they serve reads only while their primary is down
    (:meth:`route_read` — zero-downtime reads with no retry storm) and
    exist to be promoted into the replacement on a crash
    (:meth:`promote_into` — per-row max-version merge across the
    surviving valid holders).  Coexistence contract with
    :class:`HotKeyManager` when both are configured: either manager's
    install refreshes the shared copy, neither physically drops an entry
    the other still claims (``claims`` both ways), and duplicate write
    fan-outs to a shared holder are deduplicated by the transport.
    """

    def __init__(self, cluster, master):
        self.cluster = cluster
        self.master = master
        self.m = int(cluster.config.chain_replicas)
        #: ``{(matrix_id, primary_index): {successor_index: install_epoch}}``
        self.links = {}
        #: Promotion events ``(time, primary_index, sources, matrix_ids)``
        #: for the report.
        self.promotions = []

    # -- introspection ------------------------------------------------------

    def successors(self, primary_index):
        """Current ring successors of one primary (live servers only)."""
        alive = [index for index, server in enumerate(self.master.servers)
                 if server.alive]
        return chain_successors(int(primary_index), self.master.n_servers,
                                self.m, alive)

    def claims(self, matrix_id, primary_index, holder_index):
        """Whether the chain tracks a copy of the key on *holder* (the
        hot-key manager must not physically evict such an entry)."""
        key = (matrix_id, int(primary_index))
        return int(holder_index) in self.links.get(key, {})

    def key_lag(self, matrix_id, primary_index):
        """Worst per-row counter lag of any valid successor copy behind
        its primary (0 means every chain copy is fully caught up)."""
        primary = self.master.server(primary_index)
        targets = self.links.get((matrix_id, int(primary_index)), {})
        lag = 0
        for succ in sorted(targets):
            if targets[succ] != primary.epoch:
                continue
            holder = self.master.server(succ)
            if not holder.alive:
                continue
            entry = holder.replica_store.get((matrix_id, int(primary_index)))
            if entry is None or entry.install_epoch != primary.epoch:
                continue
            for row_key, counter in primary.versions.items():
                if row_key[0] == matrix_id:
                    lag = max(lag, counter - entry.versions.get(row_key, 0))
        return lag

    # -- install / teardown -------------------------------------------------

    def _priced_value_bytes(self, n_values):
        """Wire bytes for *n_values* floats in one chain state stream,
        compressed by the cost model's read regime when one is active."""
        costmodel = getattr(self.cluster, "costmodel", None)
        if costmodel is not None:
            return costmodel.priced_chain_value_bytes(n_values)
        return int(n_values) * FLOAT_BYTES

    def _install(self, key, succ_index):
        """Stream a full copy of the key onto one successor, charging
        honest chain-sync wire bytes; drops the link on failure."""
        matrix_id, primary_index = key
        primary = self.master.server(primary_index)
        target = self.master.server(succ_index)
        try:
            rows = primary.matrix_rows(matrix_id)
            versions = {
                row_key: counter
                for row_key, counter in primary.versions.items()
                if row_key[0] == matrix_id
            }
            n_values = sum(len(shard) for shard in rows.values())
            message = messages.ChainSyncRequest(
                succ_index, matrix_id, primary_index, primary.epoch,
                len(rows), self._priced_value_bytes(n_values), len(versions),
            )
            self.cluster.network.transfer(
                primary.node_id, target.node_id, message.wire_bytes(),
                tag="chain-sync",
            )
            target.install_replica(
                matrix_id, primary_index, rows, versions, primary.epoch
            )
        except (MatrixNotFoundError, ServerDownError):
            targets = self.links.get(key)
            if targets is not None:
                targets.pop(succ_index, None)
                if not targets:
                    del self.links[key]
            return False
        self.links.setdefault(key, {})[succ_index] = primary.epoch
        return True

    def _drop_holder(self, key, holder_index):
        """Forget one link and physically drop the copy unless the
        hot-key manager still claims the shared entry."""
        matrix_id, primary_index = key
        targets = self.links.get(key)
        if targets is None or holder_index not in targets:
            return
        del targets[holder_index]
        if not targets:
            del self.links[key]
        if not 0 <= holder_index < self.master.n_servers:
            return
        holder = self.master.server(holder_index)
        if not holder.alive:
            return
        from repro.cluster.cluster import DRIVER

        manager = getattr(self.cluster, "replication", None)
        if manager is None or not manager.claims(
                matrix_id, primary_index, holder_index):
            holder.drop_replica(matrix_id, primary_index)
        self.cluster.network.transfer(
            DRIVER, holder.node_id, messages.REQUEST_HEADER_BYTES,
            tag="chain-control",
        )

    def sync_key(self, matrix_id, primary_index):
        """(Re)stream one (matrix, primary) key along its current chain.

        Drops links to servers that are no longer ring successors,
        installs or refreshes a full copy on each current successor, and
        returns the number of copies installed.
        """
        key = (matrix_id, int(primary_index))
        primary = self.master.server(primary_index)
        if not primary.alive:
            return 0
        successors = self.successors(primary_index)
        for holder_index in sorted(
                s for s in self.links.get(key, {}) if s not in successors):
            self._drop_holder(key, holder_index)
        installed = 0
        for succ in successors:
            if self._install(key, succ):
                installed += 1
        if installed:
            self.cluster.metrics.increment("chain-syncs", installed)
        return installed

    def resync_primary(self, server_index):
        """Re-stream every matrix *server_index* holds shards of, and
        retire links whose matrix is gone or empty on the primary."""
        server_index = int(server_index)
        primary = self.master.server(server_index)
        synced = []
        for matrix_id in self.master.matrix_ids():
            if primary._store.get(matrix_id):
                self.sync_key(matrix_id, server_index)
                synced.append(matrix_id)
        live = set(self.master.matrix_ids())
        for key in sorted(k for k in self.links if k[1] == server_index):
            if key[0] not in live or not primary._store.get(key[0]):
                for holder in sorted(self.links[key]):
                    self._drop_holder(key, holder)
        return synced

    # -- write fan-out ------------------------------------------------------

    def fan_out_messages(self, requests, covered=None):
        """Chain copies of every mutation in *requests*, post-apply.

        Same contract as :meth:`HotKeyManager.fan_out_messages` — called
        by the transport after the originals were served, snapshotting
        the primaries' post-apply counters and epoch as the
        idempotence/fencing token.  *covered* is the set of
        ``(holder_index, id(original))`` pairs the hot-key manager
        already fanned out to; a holder serving as both hot replica and
        chain successor gets exactly one copy (and the apply is
        idempotent regardless).
        """
        if not self.links:
            return []
        extras = []
        for request in requests:
            if isinstance(request, messages.KernelRequest):
                extras.extend(self._fan_out_kernel(request, covered))
            elif isinstance(request, (messages.PushRequest,
                                      messages.PushRangeRequest,
                                      messages.FillRequest)):
                extras.extend(self._fan_out_mutation(request, covered))
        return extras

    def _valid_targets(self, key, primary):
        targets = self.links.get(key)
        if not targets:
            return []
        return sorted(succ for succ, epoch in targets.items()
                      if epoch == primary.epoch)

    def _fan_out_mutation(self, request, covered):
        key = (request.matrix_id, request.server_index)
        primary = self.master.server(request.server_index)
        valid = self._valid_targets(key, primary)
        if not valid:
            return []
        row_key = (request.matrix_id, int(request.row))
        versions = {row_key: primary.versions.get(row_key, 0)}
        out = [
            messages.ReplicatedPushRequest(
                succ, request, request.server_index, primary.epoch, versions,
            )
            for succ in valid
            if covered is None or (succ, id(request)) not in covered
        ]
        self.cluster.metrics.increment("chain-fanouts", len(out))
        return out

    def _fan_out_kernel(self, request, covered):
        """Kernel fan-out: all-or-nothing across the operand matrices.

        Chain copies must never be demoted (they are the durability
        story), so when the operand keys' valid successor sets disagree —
        e.g. one matrix's install failed, or a mid-recovery epoch skew —
        the keys are re-streamed wholesale instead: the primary already
        applied the kernel, so a full sync carries its effect.
        """
        primary_index = request.server_index
        primary = self.master.server(primary_index)
        keys = sorted({(m, primary_index) for m, _row in request.operands})
        tracked = [key for key in keys if self.links.get(key)]
        if not tracked:
            return []
        sets = [frozenset(self._valid_targets(key, primary))
                for key in tracked]
        common = sets[0]
        if len(tracked) != len(keys) or not common \
                or any(s != common for s in sets):
            for key in keys:
                self.sync_key(*key)
            self.cluster.metrics.increment("chain-kernel-resyncs", len(keys))
            return []
        versions = {
            (m, int(row)): primary.versions.get((m, int(row)), 0)
            for m, row in request.operands
        }
        out = [
            messages.ReplicatedPushRequest(
                succ, request, primary_index, primary.epoch, versions
            )
            for succ in sorted(common)
            if covered is None or (succ, id(request)) not in covered
        ]
        self.cluster.metrics.increment("chain-fanouts", len(out))
        return out

    # -- read routing (dead primary only) -----------------------------------

    def route_read(self, request):
        """Reroute a read whose primary is down to a surviving successor.

        Zero-downtime reads: while a crashed primary awaits promotion
        (triggered by the next mutation's retry path), pulls and
        aggregates are served by the nearest ring successor holding a
        valid copy — no detection timeout, no retry storm.  A read of a
        row the copy lacks (and any ``pull_or_create`` of an unseen id)
        still goes to the primary and triggers its recovery: only a
        primary may create rows.  Healthy primaries are never bypassed,
        so steady-state routing is untouched.
        """
        if not self.links or request.replica_of is not None \
                or not isinstance(request, CHAIN_READ_TYPES):
            return request
        primary_index = request.server_index
        key = (request.matrix_id, primary_index)
        targets = self.links.get(key)
        if not targets:
            return request
        primary = self.master.server(primary_index)
        if primary.is_alive():
            return request
        ring = max(1, self.master.n_servers)
        for succ in sorted(targets,
                           key=lambda s: (s - primary_index) % ring):
            if targets[succ] != primary.epoch:
                continue
            holder = self.master.server(succ)
            if not holder.alive:
                continue
            entry = holder.replica_store.get(key)
            if entry is None or entry.install_epoch != primary.epoch:
                continue
            row = getattr(request, "row", None)
            if row is not None and int(row) not in entry.rows:
                continue
            request.server_index = succ
            request.replica_of = primary_index
            self.cluster.metrics.increment("chain-reads")
            break
        return request

    # -- promotion ----------------------------------------------------------

    def promote_into(self, replacement, server_index, failed_epoch):
        """Rebuild a failed primary's matrices from its chain successors.

        For every (matrix, failed-primary) key, the surviving successors
        whose copies were installed at the dead process's epoch are
        merged per-row (:func:`merge_chain_copies` — each row from the
        most-advanced holder) and the result installed into
        *replacement* with the winning counters, priced as one
        :class:`~repro.ps.messages.ChainPromoteRequest` round trip per
        contributing holder.  Returns ``{matrix_id: rows_promoted}``;
        keys with no surviving valid holder are left out and the caller
        falls back to checkpoint restore for them.
        """
        server_index = int(server_index)
        promoted = {}
        sources = set()
        network = self.cluster.network
        for key in sorted(k for k in self.links if k[1] == server_index):
            matrix_id = key[0]
            copies = {}
            for succ in sorted(self.links[key]):
                if self.links[key][succ] != failed_epoch:
                    continue
                holder = self.master.server(succ)
                if not holder.is_alive():
                    continue
                entry = holder.replica_store.get(key)
                if entry is None or entry.install_epoch != failed_epoch:
                    continue
                copies[succ] = (entry.rows, {
                    row: entry.versions.get((matrix_id, row), 0)
                    for row in entry.rows
                })
            if not copies:
                continue
            rows, counters, origin = merge_chain_copies(copies)
            contributed = {}
            for row, holder_index in origin.items():
                contributed.setdefault(holder_index, []).append(row)
            for holder_index in sorted(contributed):
                holder = self.master.server(holder_index)
                rows_here = contributed[holder_index]
                n_values = sum(len(rows[row]) for row in rows_here)
                message = messages.ChainPromoteRequest(
                    holder_index, matrix_id, server_index, failed_epoch,
                    len(rows_here), self._priced_value_bytes(n_values),
                    len(rows_here),
                )
                network.transfer(replacement.node_id, holder.node_id,
                                 message.wire_bytes(), tag="chain-promote")
                network.transfer(holder.node_id, replacement.node_id,
                                 message.response_bytes(),
                                 tag="chain-promote")
                sources.add(holder_index)
            store_rows = {}
            for row in sorted(rows):
                shard = rows[row]
                store_rows[row] = RowShard(shard.start, shard.stop,
                                           shard.values.copy())
            replacement._store[matrix_id] = store_rows
            for row in sorted(counters):
                if counters[row]:
                    replacement.versions[(matrix_id, row)] = counters[row]
            promoted[matrix_id] = len(store_rows)
            self.cluster.metrics.increment("chain-promoted-keys")
        if promoted:
            self.cluster.metrics.increment("chain-promotions")
            self.promotions.append((
                self.cluster.clock.global_time(), server_index,
                sorted(sources), sorted(promoted),
            ))
        return promoted

    # -- lifecycle hooks ----------------------------------------------------

    def on_matrix_created(self, matrix_id):
        """Form the chain for a freshly allocated matrix."""
        for server_index in range(self.master.n_servers):
            if self.master.server(server_index)._store.get(matrix_id):
                self.sync_key(matrix_id, server_index)

    def on_matrix_freed(self, matrix_id):
        """Forget chain metadata for a freed matrix (the servers already
        purged their stores and replica entries in ``drop_matrix``)."""
        for key in sorted(k for k in self.links if k[0] == matrix_id):
            del self.links[key]

    def on_row_created(self, matrix_id, row, server_index):
        """Stream one freshly created lazy row to the chain successors.

        Chains grow with the table: the first created row of a (matrix,
        primary) key forms its chain entry, later rows ride as one-row
        incremental syncs into the existing copies; a stale or
        mismatched chain falls back to a full key re-stream.
        """
        key = (matrix_id, int(server_index))
        primary = self.master.server(server_index)
        successors = self.successors(server_index)
        if not successors:
            return
        targets = self.links.get(key)
        if targets is None or sorted(targets) != successors or any(
                targets[s] != primary.epoch for s in targets):
            self.sync_key(matrix_id, server_index)
            return
        row = int(row)
        try:
            shard = primary.matrix_rows(matrix_id)[row]
        except (MatrixNotFoundError, KeyError):
            return
        row_key = (matrix_id, row)
        counter = primary.versions.get(row_key, 0)
        value_bytes = self._priced_value_bytes(len(shard))
        synced = 0
        for succ in successors:
            holder = self.master.server(succ)
            entry = holder.replica_store.get(key)
            if not holder.alive or entry is None \
                    or entry.install_epoch != primary.epoch:
                self.sync_key(matrix_id, server_index)
                return
            message = messages.ChainSyncRequest(
                succ, matrix_id, server_index, primary.epoch, 1, value_bytes,
                1,
            )
            self.cluster.network.transfer(
                primary.node_id, holder.node_id, message.wire_bytes(),
                tag="chain-sync",
            )
            entry.rows[row] = RowShard(shard.start, shard.stop,
                                       shard.values.copy())
            if counter:
                entry.versions[row_key] = counter
            synced += 1
        if synced:
            self.cluster.metrics.increment("chain-row-syncs", synced)

    def on_direct_write(self, matrix_id, server_index):
        """Re-stream a key mutated outside the dispatch/fan-out path.

        Unlike hot-key replicas — an optimization that simply demotes —
        chain copies are the durability story and must *follow* direct
        writes (realignment, recovery tooling): the key is re-streamed
        wholesale so the successors converge on the new state.
        """
        key = (matrix_id, int(server_index))
        if key in self.links:
            self.sync_key(matrix_id, server_index)
            self.cluster.metrics.increment("chain-direct-write-resyncs")

    def on_server_recovered(self, server_index):
        """Re-establish the chain topology after a recovery, both ways.

        Keys whose primary is the recovered server are re-streamed to
        their successors at the replacement's fresh epoch — a full copy,
        not an epoch re-stamp, because a copy that fenced out fan-outs
        during the crash window lags the promoted state.  Keys the
        recovered server serves as successor for are re-installed onto
        it from their live primaries (the crash wiped its replica
        store).
        """
        server_index = int(server_index)
        self.resync_primary(server_index)
        for key in sorted(
            k for k in self.links
            if k[1] != server_index and server_index in self.links[k]
        ):
            self._install(key, server_index)

    def on_topology_resized(self):
        """Tear every chain down ahead of an elastic resize.

        The shard map is about to be rewritten wholesale, so every
        installed copy is retired (while its holder is still
        addressable) and the link map cleared; a crash during the
        migration itself therefore falls back to checkpoint restore, and
        :meth:`reform` rebuilds the chains from the post-migration
        stores.
        """
        for key in sorted(self.links):
            for holder in sorted(self.links[key]):
                self._drop_holder(key, holder)

    def reform(self):
        """Form chains over the current topology and stores."""
        for server_index in range(self.master.n_servers):
            self.resync_primary(server_index)
        self.cluster.metrics.increment("chain-reforms")
