"""PS-client: the bridge between a worker (or the coordinator) and servers.

Every executor hosts one client (Section 5.1).  The client resolves routing
through the master's metadata, fans requests out to the owning servers, and
waits for all responses — request/response traffic and server service time
are charged to the shared cost model.  Sparse ("only the needed
parameters") pulls and pushes are first-class, since the paper credits part
of PS2's win over Petuum to exactly that.

RPC timing model: a request occupies the client NIC, crosses the wire,
queues behind earlier requests on the target server's CPU, is served, and
(for ops with results) the response departs at *that request's* completion
time.  Mutation-only ops (push, axpy, fills, update kernels) are
fire-and-forget: the client never blocks on them.

Failure model: an attempt can die because the target server is down
(``ServerDownError``), because its shard state is stale after a recovery
(``MatrixNotFoundError``), or because a partition window swallowed the
transfer (``NetworkPartitionedError``).  Every failure is retried under a
:class:`~repro.ps.retry.RetryPolicy`: the client charges the detection
timeout plus an exponential backoff to its virtual clock, asks the master to
recover/repair the server when appropriate, drops its cached routing, and
then re-resolves the serving server **and re-sends the request bytes
through the network model** — a retry is a full new RPC, not a free replay.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.common.errors import MatrixNotFoundError, NetworkPartitionedError, \
    PSError, ServerDownError
from repro.ps import messages
from repro.ps.partitioner import ColumnLayout, RowLayout
from repro.ps.retry import RetryPolicy

#: Failures an op attempt can hit that are retryable under the policy.
RETRYABLE_ERRORS = (ServerDownError, MatrixNotFoundError,
                    NetworkPartitionedError)

#: Client-side CPU cost of issuing one RPC (serialization, bookkeeping).
RPC_CPU_SECONDS = 5e-6


class PSClient:
    """A worker-side handle for pull/push and server-side execution."""

    def __init__(self, cluster, master, node_id, retry_policy=None):
        self.cluster = cluster
        self.master = master
        self.node_id = node_id
        self.retry_policy = retry_policy or RetryPolicy.from_config(
            cluster.config.failures
        )
        self._routing = {}

    # -- plumbing -----------------------------------------------------------

    def _layout(self, matrix_id):
        """Resolve a matrix's layout, fetching the routing table once.

        Section 5.1: the PS-master "provides some meta information,
        including the locations and routing tables for PS-client to locate
        parameters."  The first touch of each matrix costs one RPC to the
        coordinator; afterwards the client routes from its cache — until
        :meth:`invalidate` drops the entry (server recovery), at which
        point the next touch pays the routing RPC again.
        """
        layout = self._routing.get(matrix_id)
        if layout is None:
            layout = self.master.layout(matrix_id)
            from repro.cluster.cluster import DRIVER

            if self.node_id != DRIVER:
                clock = self.cluster.clock
                network = self.cluster.network
                fetch_start = clock.now(self.node_id)
                arrival = network.transfer(
                    self.node_id, DRIVER, messages.REQUEST_HEADER_BYTES,
                    tag="routing:req", deliver=False,
                )
                # The master answers from its metadata cache; the response
                # departs when THIS request was served, not when the
                # driver's (unrelated) clock says.
                response = network.transfer(
                    DRIVER, self.node_id,
                    messages.RESPONSE_HEADER_BYTES + 16 * layout.n_servers,
                    tag="routing:resp", deliver=False,
                    depart_at=arrival + RPC_CPU_SECONDS,
                )
                clock.set_at_least(self.node_id, response)
                self.cluster.metrics.observe(
                    "routing", clock.now(self.node_id) - fetch_start
                )
                tracer = self.cluster.tracer
                if tracer.enabled:
                    tracer.record(self.node_id, "routing", fetch_start,
                                  response, cat="op", matrix_id=matrix_id)
            self._routing[matrix_id] = layout
        return layout

    def invalidate(self, matrix_id=None):
        """Drop cached routing for *matrix_id* (or for every matrix).

        Called on the server-recovery retry path so a retried op
        re-resolves routing through the master instead of trusting a table
        that predates the failure; the next :meth:`_layout` call pays the
        routing RPC again.
        """
        if matrix_id is None:
            self._routing.clear()
        else:
            self._routing.pop(matrix_id, None)

    @contextmanager
    def _op(self, op, matrix_id):
        """Trace + time one client-level PS op (pull, push, kernel, ...).

        Opens a span on the client node (children: routing fetches, NIC
        bookings, server CPU slots) and feeds the op's client-observed
        duration — issue to last response, as the virtual clock saw it —
        into the per-op latency histogram.  Never advances any clock.
        """
        clock = self.cluster.clock
        start = clock.now(self.node_id)
        tracer = self.cluster.tracer
        if tracer.enabled:
            with tracer.span(self.node_id, op, cat="op",
                             matrix_id=matrix_id):
                yield
        else:
            yield
        self.cluster.metrics.observe(op, clock.now(self.node_id) - start)
        # Virtual-time hook for the periodic checkpoint sweep: pure-PS
        # workloads (no sparklite stages) still sweep on schedule.
        self.master.maybe_checkpoint()

    def _charge_rpc(self, n_messages):
        """Charge the client CPU for serializing *n_messages* requests."""
        if n_messages:
            self.cluster.charge_seconds(
                self.node_id, RPC_CPU_SECONDS * n_messages, tag="rpc-cpu"
            )

    def _handle_failure(self, exc, server_index, matrix_id, attempt):
        """Recover from one failed attempt; charges the retry penalty.

        The failure-detection timeout and the exponential backoff are
        charged to the client's *virtual* clock (a retried op takes longer
        in simulated time), then the failure is repaired: a down server is
        recovered by the master, a stale shard set is reconciled, and a
        partition is simply waited out.  Cached routing for the touched
        matrix is dropped either way, so the next attempt re-resolves
        through the master.
        """
        metrics = self.cluster.metrics
        metrics.increment("op-retries")
        penalty_start = self.cluster.clock.now(self.node_id)
        self.cluster.charge_seconds(
            self.node_id, self.retry_policy.penalty_for(attempt),
            tag="retry-backoff",
        )
        tracer = self.cluster.tracer
        if tracer.enabled:
            tracer.record(
                self.node_id, "retry-backoff", penalty_start,
                self.cluster.clock.now(self.node_id), cat="op",
                attempt=attempt, error=type(exc).__name__,
                server_index=server_index,
            )
        if isinstance(exc, ServerDownError):
            self.master.recover(server_index)
            metrics.increment("routing-invalidations")
        elif isinstance(exc, MatrixNotFoundError):
            self.master.repair(server_index)
            metrics.increment("routing-invalidations")
        # NetworkPartitionedError: nothing to repair — the backoff advances
        # the client clock toward the end of the partition window.
        if matrix_id is not None:
            self.invalidate(matrix_id)

    def _request(self, server_index, request_bytes, operation, tag,
                 response_bytes=None, matrix_id=None, n_values=0):
        """One RPC against the server at *server_index*.

        Returns ``(value, response_arrival)``.  Each attempt resolves the
        current :class:`~repro.ps.server.PSServer` object through the master
        (a recovery replaces the object — a retry must never talk to the
        pre-failure process), transfers the request bytes, queues on the
        server CPU (``server.begin(arrival)``) and invokes
        ``operation(server)``.  Failed attempts are retried under the
        client's :class:`~repro.ps.retry.RetryPolicy`, re-resolving routing
        and re-sending the request through the network model every time.

        With ``response_bytes`` set, a response is sent back departing at
        the request's completion time and its arrival time is returned (the
        caller decides when to block); otherwise the RPC is fire-and-forget
        and arrival is None.  ``matrix_id``/``n_values`` feed the hot-shard
        access telemetry.
        """
        network = self.cluster.network
        if matrix_id is not None:
            self.cluster.metrics.record_shard_access(
                matrix_id, server_index, n_values
            )
        tracer = self.cluster.tracer
        if tracer.enabled:
            span = tracer.current(self.node_id)
            if span is not None:
                span.args["fanout"] = span.args.get("fanout", 0) + 1
                span.args["bytes"] = (
                    span.args.get("bytes", 0) + request_bytes
                    + (response_bytes or 0)
                )
        attempt = 0
        while True:
            if matrix_id is not None:
                # Re-resolve routing (pays the routing RPC again after an
                # invalidation) before the attempt touches the wire.
                self._layout(matrix_id)
            server = self.master.server(server_index)
            try:
                arrival = network.transfer(
                    self.node_id, server.node_id, request_bytes,
                    tag=tag + ":req", deliver=False,
                )
                server.begin(arrival)
                value = operation(server)
                break
            except RETRYABLE_ERRORS as exc:
                attempt += 1
                if attempt > self.retry_policy.max_retries:
                    self.cluster.metrics.increment("op-retries-exhausted")
                    raise PSError(
                        "server %s kept failing after %d attempts: %r"
                        % (server.node_id, attempt, exc)
                    ) from exc
                self._handle_failure(exc, server_index, matrix_id, attempt)
        if response_bytes is None:
            return value, None
        response_arrival = network.transfer(
            server.node_id, self.node_id, response_bytes,
            tag=tag + ":resp", deliver=False,
            depart_at=server.last_completion,
        )
        return value, response_arrival

    def _await(self, arrivals):
        """Block the client until the last outstanding response lands."""
        arrivals = [a for a in arrivals if a is not None]
        if arrivals:
            self.cluster.clock.set_at_least(self.node_id, max(arrivals))

    def _split_for_row(self, layout, row, indices):
        """Map global *indices* to owning servers under *layout*."""
        if isinstance(layout, ColumnLayout):
            return layout.split_indices(indices)
        if isinstance(layout, RowLayout):
            return layout.split_indices_for_row(row, indices)
        raise PSError("unsupported layout %r" % (layout,))

    # -- row access: pull ----------------------------------------------------

    def pull_row(self, matrix_id, row, indices=None):
        """Pull one model row (dense) or selected columns of it (sparse).

        Dense: returns the full row as a 1-D array of the matrix dimension.
        Sparse: returns the values for *indices*, aligned with the input
        order.  Requests fan out to every owning server in parallel; the
        client resumes when the last response lands.
        """
        with self._op("pull", matrix_id):
            layout = self._layout(matrix_id)
            if indices is None:
                result = np.empty(layout.dim)
                shards = layout.shards_for_row(row)
                self._charge_rpc(len(shards))
                arrivals = []
                for server_index, start, stop in shards:
                    values, arrival = self._request(
                        server_index,
                        messages.dense_pull_request_bytes(),
                        lambda s: s.read(matrix_id, row),
                        tag="pull",
                        response_bytes=messages.dense_pull_response_bytes(
                            stop - start
                        ),
                        matrix_id=matrix_id,
                        n_values=stop - start,
                    )
                    result[start:stop] = values
                    arrivals.append(arrival)
                self._await(arrivals)
                return result

            indices = np.asarray(indices, dtype=np.int64)
            values_by_index = np.empty(indices.size)
            order = np.argsort(indices, kind="stable")
            sorted_indices = indices[order]
            by_server = self._split_for_row(layout, row, sorted_indices)
            self._charge_rpc(len(by_server))
            arrivals = []
            cursor = 0
            for server_index in by_server:
                server_indices = by_server[server_index]
                values, arrival = self._request(
                    server_index,
                    messages.sparse_pull_request_bytes(server_indices.size),
                    lambda s, gi=server_indices: s.read(matrix_id, row, gi),
                    tag="pull",
                    response_bytes=messages.sparse_pull_response_bytes(
                        server_indices.size
                    ),
                    matrix_id=matrix_id,
                    n_values=server_indices.size,
                )
                span = order[cursor : cursor + server_indices.size]
                values_by_index[span] = values
                cursor += server_indices.size
                arrivals.append(arrival)
            self._await(arrivals)
            return values_by_index

    # -- row access: push (fire-and-forget) ------------------------------------

    def _push(self, matrix_id, row, values, indices, mode):
        with self._op("push", matrix_id):
            layout = self._layout(matrix_id)
            values = np.asarray(values, dtype=float)
            if indices is None:
                if values.size != layout.dim:
                    raise PSError(
                        "dense push of %d values into dim-%d matrix"
                        % (values.size, layout.dim)
                    )
                shards = layout.shards_for_row(row)
                self._charge_rpc(len(shards))
                for server_index, start, stop in shards:
                    block = values[start:stop]
                    self._request(
                        server_index,
                        messages.dense_push_bytes(block.size),
                        self._push_op(matrix_id, row, block, None, mode),
                        tag="push",
                        matrix_id=matrix_id,
                        n_values=block.size,
                    )
                return

            indices = np.asarray(indices, dtype=np.int64)
            order = np.argsort(indices, kind="stable")
            sorted_indices = indices[order]
            sorted_values = values[order]
            by_server = self._split_for_row(layout, row, sorted_indices)
            self._charge_rpc(len(by_server))
            cursor = 0
            for server_index in by_server:
                server_indices = by_server[server_index]
                block = sorted_values[cursor : cursor + server_indices.size]
                cursor += server_indices.size
                self._request(
                    server_index,
                    messages.sparse_push_bytes(server_indices.size),
                    self._push_op(matrix_id, row, block, server_indices, mode),
                    tag="push",
                    matrix_id=matrix_id,
                    n_values=server_indices.size,
                )

    @staticmethod
    def _push_op(matrix_id, row, block, indices, mode):
        if mode == "add":
            return lambda s: s.add(matrix_id, row, block, indices)
        if mode == "assign":
            return lambda s: s.assign(matrix_id, row, block, indices)
        raise PSError("unknown push mode %r" % (mode,))

    def push_add(self, matrix_id, row, values, indices=None):
        """Accumulate a (dense or sparse) delta into a model row."""
        self._push(matrix_id, row, values, indices, "add")

    def push_assign(self, matrix_id, row, values, indices=None):
        """Overwrite (all or selected columns of) a model row."""
        self._push(matrix_id, row, values, indices, "assign")

    # -- range access (contiguous column slices, dense-priced) -----------------

    def _range_shards(self, layout, row, start, stop):
        """Overlaps of ``[start, stop)`` with each server shard of *row*."""
        overlaps = []
        for server_index, s_start, s_stop in layout.shards_for_row(row):
            lo = max(start, s_start)
            hi = min(stop, s_stop)
            if lo < hi:
                overlaps.append((server_index, lo, hi))
        return overlaps

    def pull_range(self, matrix_id, row, start, stop):
        """Pull the contiguous slice ``[start, stop)`` of a row.

        Priced as a dense transfer (8 bytes/value): a range is described by
        two integers, not per-index keys.  Used by pull/push-only baselines
        whose workers each update a slice of the model.
        """
        with self._op("pull-range", matrix_id):
            layout = self._layout(matrix_id)
            result = np.empty(int(stop) - int(start))
            overlaps = self._range_shards(layout, row, int(start), int(stop))
            self._charge_rpc(len(overlaps))
            arrivals = []
            for server_index, lo, hi in overlaps:
                span = np.arange(lo, hi, dtype=np.int64)
                values, arrival = self._request(
                    server_index,
                    messages.dense_pull_request_bytes()
                    + 2 * messages.INDEX_BYTES,
                    lambda s, gi=span: s.read(matrix_id, row, gi),
                    tag="pull",
                    response_bytes=messages.dense_pull_response_bytes(hi - lo),
                    matrix_id=matrix_id,
                    n_values=hi - lo,
                )
                result[lo - start : hi - start] = values
                arrivals.append(arrival)
            self._await(arrivals)
            return result

    def push_range(self, matrix_id, row, start, stop, values, mode="assign"):
        """Write the contiguous slice ``[start, stop)`` (dense-priced)."""
        with self._op("push-range", matrix_id):
            layout = self._layout(matrix_id)
            values = np.asarray(values, dtype=float)
            overlaps = self._range_shards(layout, row, int(start), int(stop))
            self._charge_rpc(len(overlaps))
            for server_index, lo, hi in overlaps:
                block = values[lo - start : hi - start]
                span = np.arange(lo, hi, dtype=np.int64)
                self._request(
                    server_index,
                    messages.dense_push_bytes(block.size)
                    + 2 * messages.INDEX_BYTES,
                    self._push_op(matrix_id, row, block, span, mode),
                    tag="push",
                    matrix_id=matrix_id,
                    n_values=block.size,
                )

    # -- block access (multi-row, shared indices) ------------------------------

    def _rows_by_server(self, layout, rows):
        """Group row positions by owning server under a :class:`RowLayout`.

        Returns ``{server_index: [row_position, ...]}`` in ascending server
        order.  Only meaningful for row layouts, where each row lives whole
        on one server — a block op must route *per row*, never by
        ``rows[0]``'s owner.
        """
        by_server = {}
        for row_pos, row in enumerate(rows):
            server_index = int(row) % layout.n_servers
            by_server.setdefault(server_index, []).append(row_pos)
        return dict(sorted(by_server.items()))

    def pull_block(self, matrix_id, rows, indices=None, value_bytes=None):
        """Pull the same columns of several rows in one round trip per server.

        Used by LDA to fetch the word-topic block for a worker's local
        vocabulary: the column *indices* are shipped once, and each server
        answers with a ``len(rows) x len(its indices)`` value block.
        ``value_bytes`` overrides the per-value wire size (PS2's LDA ships
        counts as 32-bit integers — the "message compression" of Section
        6.3.3); it defaults to 8 (raw float64).

        Under a :class:`RowLayout` each row lives whole on server
        ``row % n_servers``, so the block is routed per row (one request per
        *owning* server carrying that server's rows) instead of assuming
        every row shares ``rows[0]``'s shards.

        Returns a ``len(rows) x len(indices)`` array aligned with the input
        index order (or ``len(rows) x dim`` for a dense pull).
        """
        with self._op("pull-block", matrix_id):
            layout = self._layout(matrix_id)
            rows = list(rows)
            if value_bytes is None:
                value_bytes = messages.FLOAT_BYTES
            if isinstance(layout, RowLayout):
                return self._pull_block_row_layout(
                    matrix_id, layout, rows, indices, value_bytes
                )
            if not isinstance(layout, ColumnLayout):
                raise PSError("unsupported layout %r" % (layout,))

            def read_rows(server, global_indices):
                return [
                    server.read(matrix_id, row, global_indices) for row in rows
                ]

            if indices is None:
                block = np.empty((len(rows), layout.dim))
                shards = layout.shards_for_row(rows[0])
                self._charge_rpc(len(shards))
                arrivals = []
                for server_index, start, stop in shards:
                    values, arrival = self._request(
                        server_index,
                        messages.dense_pull_request_bytes(),
                        lambda s: read_rows(s, None),
                        tag="pull-block",
                        response_bytes=messages.RESPONSE_HEADER_BYTES
                        + len(rows) * (stop - start) * value_bytes,
                        matrix_id=matrix_id,
                        n_values=len(rows) * (stop - start),
                    )
                    for row_pos, row_values in enumerate(values):
                        block[row_pos, start:stop] = row_values
                    arrivals.append(arrival)
                self._await(arrivals)
                return block

            indices = np.asarray(indices, dtype=np.int64)
            order = np.argsort(indices, kind="stable")
            sorted_indices = indices[order]
            by_server = self._split_for_row(layout, rows[0], sorted_indices)
            self._charge_rpc(len(by_server))
            block = np.empty((len(rows), indices.size))
            arrivals = []
            cursor = 0
            for server_index in by_server:
                server_indices = by_server[server_index]
                values, arrival = self._request(
                    server_index,
                    messages.sparse_pull_request_bytes(server_indices.size),
                    lambda s, gi=server_indices: read_rows(s, gi),
                    tag="pull-block",
                    response_bytes=messages.RESPONSE_HEADER_BYTES
                    + len(rows) * server_indices.size * value_bytes,
                    matrix_id=matrix_id,
                    n_values=len(rows) * server_indices.size,
                )
                span = order[cursor : cursor + server_indices.size]
                cursor += server_indices.size
                for row_pos, row_values in enumerate(values):
                    block[row_pos, span] = row_values
                arrivals.append(arrival)
            self._await(arrivals)
            return block

    def _pull_block_row_layout(self, matrix_id, layout, rows, indices,
                               value_bytes):
        """Row-layout block pull: one request per *owning* server."""
        width = layout.dim if indices is None else len(indices)
        if indices is not None:
            indices = np.asarray(indices, dtype=np.int64)
        block = np.empty((len(rows), width))
        by_server = self._rows_by_server(layout, rows)
        self._charge_rpc(len(by_server))
        arrivals = []
        for server_index, row_positions in by_server.items():
            server_rows = [rows[pos] for pos in row_positions]

            def read_rows(s, sr=server_rows):
                return [s.read(matrix_id, row, indices) for row in sr]

            request_bytes = (
                messages.dense_pull_request_bytes() if indices is None
                else messages.sparse_pull_request_bytes(indices.size)
            )
            values, arrival = self._request(
                server_index,
                request_bytes,
                read_rows,
                tag="pull-block",
                response_bytes=messages.RESPONSE_HEADER_BYTES
                + len(server_rows) * width * value_bytes,
                matrix_id=matrix_id,
                n_values=len(server_rows) * width,
            )
            for row_pos, row_values in zip(row_positions, values):
                block[row_pos, :] = row_values
            arrivals.append(arrival)
        self._await(arrivals)
        return block

    def push_block_add(self, matrix_id, rows, block, indices=None,
                       value_bytes=None):
        """Accumulate a multi-row delta block (fire-and-forget, like push).

        Routes like :meth:`pull_block`: shard fan-out for column layouts,
        per-owning-server requests for row layouts.
        """
        with self._op("push-block", matrix_id):
            layout = self._layout(matrix_id)
            rows = list(rows)
            block = np.asarray(block, dtype=float)
            if value_bytes is None:
                value_bytes = messages.FLOAT_BYTES
            if isinstance(layout, RowLayout):
                self._push_block_row_layout(
                    matrix_id, layout, rows, block, indices, value_bytes
                )
                return
            if not isinstance(layout, ColumnLayout):
                raise PSError("unsupported layout %r" % (layout,))

            if indices is None:
                shards = layout.shards_for_row(rows[0])
                self._charge_rpc(len(shards))
                for server_index, start, stop in shards:

                    def add_rows(s, lo=start, hi=stop):
                        for row_pos, row in enumerate(rows):
                            s.add(matrix_id, row, block[row_pos, lo:hi])

                    self._request(
                        server_index,
                        messages.REQUEST_HEADER_BYTES
                        + len(rows) * (stop - start) * value_bytes,
                        add_rows,
                        tag="push-block",
                        matrix_id=matrix_id,
                        n_values=len(rows) * (stop - start),
                    )
                return

            indices = np.asarray(indices, dtype=np.int64)
            order = np.argsort(indices, kind="stable")
            sorted_indices = indices[order]
            by_server = self._split_for_row(layout, rows[0], sorted_indices)
            self._charge_rpc(len(by_server))
            cursor = 0
            for server_index in by_server:
                server_indices = by_server[server_index]
                span = order[cursor : cursor + server_indices.size]
                cursor += server_indices.size

                def add_rows(s, gi=server_indices, sp=span):
                    for row_pos, row in enumerate(rows):
                        s.add(matrix_id, row, block[row_pos, sp], gi)

                self._request(
                    server_index,
                    messages.REQUEST_HEADER_BYTES
                    + server_indices.size * messages.INDEX_BYTES
                    + len(rows) * server_indices.size * value_bytes,
                    add_rows,
                    tag="push-block",
                    matrix_id=matrix_id,
                    n_values=len(rows) * server_indices.size,
                )

    def _push_block_row_layout(self, matrix_id, layout, rows, block, indices,
                               value_bytes):
        """Row-layout block push: one request per *owning* server."""
        if indices is not None:
            indices = np.asarray(indices, dtype=np.int64)
        width = layout.dim if indices is None else indices.size
        by_server = self._rows_by_server(layout, rows)
        self._charge_rpc(len(by_server))
        index_bytes = 0 if indices is None else width * messages.INDEX_BYTES
        for server_index, row_positions in by_server.items():

            def add_rows(s, positions=row_positions):
                for row_pos in positions:
                    s.add(matrix_id, rows[row_pos], block[row_pos], indices)

            self._request(
                server_index,
                messages.REQUEST_HEADER_BYTES + index_bytes
                + len(row_positions) * width * value_bytes,
                add_rows,
                tag="push-block",
                matrix_id=matrix_id,
                n_values=len(row_positions) * width,
            )

    # -- aggregates and server-side execution --------------------------------

    _COMBINE = {
        "sum": sum,
        "nnz": sum,
        "sumsq": sum,
        "max": max,
        "min": min,
    }

    def aggregate_row(self, matrix_id, row, kind):
        """A whole-row aggregate computed server-side; only scalars travel."""
        if kind not in self._COMBINE:
            raise PSError("unknown aggregate %r" % (kind,))
        with self._op("rowagg", matrix_id):
            layout = self._layout(matrix_id)
            shards = layout.shards_for_row(row)
            self._charge_rpc(len(shards))
            partials = []
            arrivals = []
            for server_index, start, stop in shards:
                partial, arrival = self._request(
                    server_index,
                    messages.scalar_op_request_bytes(),
                    lambda s: s.aggregate(matrix_id, row, kind),
                    tag="rowagg",
                    response_bytes=messages.scalar_response_bytes(),
                    matrix_id=matrix_id,
                    n_values=stop - start,
                )
                partials.append(partial)
                arrivals.append(arrival)
            self._await(arrivals)
            return float(self._COMBINE[kind](partials))

    def execute(self, kernel, operands, args=None, n_response_scalars=1,
                flops_per_server=None, wait_response=True):
        """Run *kernel* server-side over co-located rows; gather partials.

        ``operands`` is a list of ``(matrix_id, row)`` pairs sharing one
        layout.  Only the op descriptor and the per-server scalar partials
        cross the network — this is the DCV column-access fast path.
        Returns the partial results in server-index order.

        Pure-mutation kernels (axpy, elementwise updates) pass
        ``wait_response=False``: like a push, the request is fire-and-forget
        and the client does not block on acknowledgements.
        """
        if not operands:
            raise PSError("execute needs at least one operand")
        matrix_id = operands[0][0]
        with self._op("kernel", matrix_id):
            layout = self._layout(matrix_id)
            shards = layout.shards_for_row(operands[0][1])
            self._charge_rpc(len(shards))
            partials = []
            arrivals = []
            response_bytes = (
                messages.scalar_response_bytes(n_response_scalars)
                if wait_response else None
            )
            for server_index, start, stop in shards:
                partial, arrival = self._request(
                    server_index,
                    messages.scalar_op_request_bytes(len(operands)),
                    lambda s: s.execute_kernel(
                        kernel, operands, args=args, flops=flops_per_server
                    ),
                    tag="kernel",
                    response_bytes=response_bytes,
                    matrix_id=matrix_id,
                    n_values=(stop - start) * len(operands),
                )
                partials.append(partial)
                arrivals.append(arrival)
            if wait_response:
                self._await(arrivals)
            return partials

    def fill_row(self, matrix_id, row, value):
        """Set every element of a row, server-side (fire-and-forget)."""
        with self._op("fill", matrix_id):
            layout = self._layout(matrix_id)
            shards = layout.shards_for_row(row)
            self._charge_rpc(len(shards))
            for server_index, start, stop in shards:
                self._request(
                    server_index,
                    messages.scalar_op_request_bytes(),
                    lambda s: s.fill(matrix_id, row, value),
                    tag="fill",
                    matrix_id=matrix_id,
                    n_values=stop - start,
                )
