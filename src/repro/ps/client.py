"""PS-client: the bridge between a worker (or the coordinator) and servers.

Every executor hosts one client (Section 5.1).  The client's job is to turn
each PS op into typed :mod:`~repro.ps.messages` values — one per (row,
shard) destination — hand them to its :class:`~repro.ps.transport.Transport`
and assemble the responses.  Routing resolution, network transfer, server
dispatch, response accounting and the retry loop all live in the transport;
nothing in this module constructs closures over server objects or touches a
``PSServer`` directly.  Sparse ("only the needed parameters") pulls and
pushes are first-class, since the paper credits part of PS2's win over
Petuum to exactly that.

RPC timing model: a request occupies the client NIC, crosses the wire,
queues behind earlier requests on the target server's CPU, is served, and
(for ops with results) the response departs at *that request's* completion
time.  Mutation-only ops (push, axpy, fills, update kernels) are
fire-and-forget: the client never blocks on them.

Block ops and coalescing: a block pull/push decomposes into one message per
(row, shard); with ``coalesce_requests`` on (the default), the transport
wraps every same-server group in a single
:class:`~repro.ps.messages.BatchRequest` envelope — one request header and
one NIC booking per server, index lists shipped once — the paper's
fat-request header amortization made explicit.

Failure model: an attempt can die because the target server is down
(``ServerDownError``), because its shard state is stale after a recovery
(``MatrixNotFoundError``), or because a partition window swallowed the
transfer (``NetworkPartitionedError``).  The transport retries every failure
under a :class:`~repro.ps.retry.RetryPolicy`: it charges the detection
timeout plus an exponential backoff to the client's virtual clock, asks the
master to recover/repair the server when appropriate, drops its cached
routing, and then re-resolves the serving server **and re-sends the message
bytes through the network model** — a retry is a full new RPC of the same
message, not a free replay.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.common.errors import PSError
from repro.ps import messages
from repro.ps.cache import WorkerCache
from repro.ps.partitioner import ColumnLayout, RowLayout
from repro.ps.transport import Transport

#: Entry cap for a layout's pooled fan-out plans (cleared when exceeded;
#: id-keyed sparse plans from list inputs would otherwise accumulate).
_PLAN_POOL_CAP = 64


class PSClient:
    """A worker-side handle for pull/push and server-side execution."""

    def __init__(self, cluster, master, node_id, retry_policy=None):
        self.cluster = cluster
        self.master = master
        self.node_id = node_id
        self.transport = Transport(cluster, master, node_id,
                                   retry_policy=retry_policy)
        # Under relaxed consistency every *executor* client gets a
        # staleness-bounded parameter cache (the coordinator never does:
        # driver-side reads — loss evaluation, aggregates — must see the
        # authoritative server state).  Under BSP ``cache_bound()`` is
        # ``None`` and the client takes the exact pre-cache code paths.
        self.cache = None
        model = getattr(cluster, "consistency", None)
        if model is not None and model.cache_bound() is not None:
            from repro.cluster.cluster import DRIVER

            if node_id != DRIVER:
                self.cache = WorkerCache(cluster, node_id, model,
                                         self.transport)
                cluster.clock_advance_hooks.append(
                    self.cache.on_clock_advance
                )

    @property
    def retry_policy(self):
        """The transport's retry policy (exposed for tests/diagnostics)."""
        return self.transport.retry_policy

    # -- plumbing -----------------------------------------------------------

    def _layout(self, matrix_id):
        """Resolve a matrix's layout through the transport's routing cache."""
        return self.transport.layout(matrix_id)

    def invalidate(self, matrix_id=None):
        """Drop cached routing for *matrix_id* (or for every matrix)."""
        self.transport.invalidate(matrix_id)
        if self.cache is not None:
            self.cache.invalidate(matrix_id)

    @contextmanager
    def _op(self, op, matrix_id):
        """Trace + time one client-level PS op (pull, push, kernel, ...).

        Opens a span on the client node (children: routing fetches, NIC
        bookings, server CPU slots) and feeds the op's client-observed
        duration — issue to last response, as the virtual clock saw it —
        into the per-op latency histogram.  An op whose transport attempts
        hit the retry path is recorded under ``<op>.retried`` instead, so
        backoff waits never inflate the headline percentiles.  Never
        advances any clock.
        """
        clock = self.cluster.clock
        metrics = self.cluster.metrics
        start = clock.now(self.node_id)
        retries_before = metrics.counters.get("op-retries", 0)
        tracer = self.cluster.tracer
        try:
            if tracer.enabled:
                with tracer.span(self.node_id, op, cat="op",
                                 matrix_id=matrix_id):
                    yield
            else:
                yield
        except PSError:
            # An op whose transport attempts were exhausted is a dropped
            # request from the caller's point of view (the serving tier's
            # zero-downtime claim is assertable on this counter); count it
            # and let it propagate.
            metrics.increment("client-dropped-ops")
            raise
        duration = clock.now(self.node_id) - start
        if metrics.counters.get("op-retries", 0) > retries_before:
            metrics.observe(op + ".retried", duration)
        else:
            metrics.observe(op, duration)
        # Virtual-time hooks for the periodic checkpoint and replication
        # rebalance sweeps, plus the time-series window check: pure-PS
        # workloads (no sparklite stages) still sweep/flush on schedule.
        self.master.maybe_checkpoint()
        self.master.maybe_rebalance()
        if self.cluster.timeseries is not None:
            self.cluster.timeseries.maybe_flush()

    def _await(self, arrivals):
        """Block the client until the last outstanding response lands."""
        arrivals = [a for a in arrivals if a is not None]
        if arrivals:
            self.cluster.clock.set_at_least(self.node_id, max(arrivals))

    def _plan_pool(self, layout):
        """The layout's pooled fan-out plans, or ``None`` when ineligible.

        A plan reuses the *same* typed request objects across ops (and, via
        the shared layout, across clients), so it is only safe when no one
        mutates requests between sends.  Pushes swap same-length value
        views into pooled requests, which keeps every memoized wire-size
        formula input unchanged.  The replication manager retargets reads
        in place (``route_read``), but the transport undoes any leftover
        retarget before re-offering a request, so pooling stays on under
        replication — the pool is merely *invalidated* (cleared) whenever
        the topology or the replica set changes, keyed on
        ``(topology_epoch, plan_epoch)``.  A cost model attaches per-send
        codec state to pushes (encoded payloads, re-priced sizes), which
        pooled reuse would corrupt, so codecs disable the pool.
        """
        if getattr(self.cluster, "costmodel", None) is not None:
            return None
        plans = layout.op_plans
        manager = getattr(self.cluster, "replication", None)
        if manager is not None:
            epoch = (self.master.topology_epoch, manager.plan_epoch)
            if plans.get("_epoch") != epoch:
                plans.clear()
                plans["_epoch"] = epoch
        return plans

    def _split_for_row(self, layout, row, indices):
        """Map global *indices* to owning servers under *layout*."""
        if isinstance(layout, ColumnLayout):
            return layout.split_indices(indices)
        if isinstance(layout, RowLayout):
            return layout.split_indices_for_row(row, indices)
        raise PSError("unsupported layout %r" % (layout,))

    # -- row access: pull ----------------------------------------------------

    def _priced_response_bytes(self, n_values):
        """Response bytes a dense pull of *n_values* would put on the wire.

        Priced through the active cost model when one is configured
        (satellite telemetry honesty: a cache hit saves the bytes the
        codec regime *would* have shipped, not the identity-rate upper
        bound); identity rates otherwise — bit-identical to the
        pre-costmodel formulas when the knob is off.
        """
        costmodel = getattr(self.cluster, "costmodel", None)
        if costmodel is None:
            return messages.dense_pull_response_bytes(n_values)
        return costmodel.priced_pull_response_bytes(self.node_id, n_values)

    def _dense_pull_wire_bytes(self, layout, row):
        """Wire cost (request + response) of a full dense pull of *row*."""
        return sum(
            messages.dense_pull_request_bytes()
            + self._priced_response_bytes(stop - start)
            for _server, start, stop in layout.shards_for_row(row)
        )

    def _cache_full_row(self, matrix_id, row, layout):
        """Miss path: pull the whole row dense, cache it, return it.

        A sparse miss promotes to a full-row pull (NuPS-style replication
        of the parameters this worker keeps touching): the extra bytes buy
        the next ``bound`` clocks of zero-traffic hits.
        """
        self.cluster.metrics.record_cache_miss(self.node_id)
        shards = layout.shards_for_row(row)
        requests = [
            messages.PullRowRequest(server_index, matrix_id, row,
                                    stop - start)
            for server_index, start, stop in shards
        ]
        values, arrivals = self.transport.send_all(requests)
        result = np.empty(layout.dim)
        for (server_index, start, stop), block in zip(shards, values):
            result[start:stop] = block
        self._await(arrivals)
        # The per-server version tokens ride the pull responses (header
        # slack — bookkeeping only, no extra bytes or clock movement).
        tokens = {
            server_index: self.master.server(server_index).version_token(
                matrix_id, row
            )
            for server_index, _start, _stop in shards
        }
        self.cache.store(matrix_id, row, result, tokens)
        return result

    def _pull_row_cached(self, matrix_id, row, indices):
        """Serve a pull from the worker cache when the bound permits."""
        layout = self._layout(matrix_id)
        metrics = self.cluster.metrics
        entry = self.cache.lookup(matrix_id, row)
        if entry is not None:
            # A hit is an executor-local memory read: no transfer() call,
            # so NIC timelines and byte counters genuinely do not move.
            metrics.observe(
                "staleness-clocks",
                float(self.cache.clock() - entry.pull_clock),
            )
            if indices is None:
                saved = self._dense_pull_wire_bytes(layout, row)
                result = entry.values.copy()
            else:
                idx = np.asarray(indices, dtype=np.int64)
                saved = (messages.sparse_pull_request_bytes(idx.size)
                         + self._priced_response_bytes(idx.size))
                result = entry.values[idx]
            metrics.record_cache_hit(self.node_id, saved)
            return result
        result = self._cache_full_row(matrix_id, row, layout)
        if indices is None:
            return result
        return result[np.asarray(indices, dtype=np.int64)]

    def pull_row(self, matrix_id, row, indices=None):
        """Pull one model row (dense) or selected columns of it (sparse).

        Dense: returns the full row as a 1-D array of the matrix dimension.
        Sparse: returns the values for *indices*, aligned with the input
        order.  Requests fan out to every owning server in parallel; the
        client resumes when the last response lands.

        With a worker cache (SSP/ASP executors), reads within the staleness
        bound are served from the executor-local copy at zero network cost;
        misses promote to a full-row pull that refills the cache.
        """
        if self.cache is not None:
            with self._op("pull", matrix_id):
                return self._pull_row_cached(matrix_id, row, indices)
        with self._op("pull", matrix_id):
            layout = self._layout(matrix_id)
            plans = self._plan_pool(layout)
            if indices is None:
                plan = None
                if plans is not None:
                    key = ("pull-dense", matrix_id, row)
                    plan = plans.get(key)
                if plan is None:
                    shards = layout.shards_for_row(row)
                    requests = [
                        messages.PullRowRequest(server_index, matrix_id, row,
                                                stop - start)
                        for server_index, start, stop in shards
                    ]
                    if plans is not None:
                        plans[key] = (shards, requests)
                else:
                    shards, requests = plan
                values, arrivals = self.transport.send_all(
                    requests, pooled=plans is not None
                )
                result = np.empty(layout.dim)
                for (server_index, start, stop), block in zip(shards, values):
                    result[start:stop] = block
                self._await(arrivals)
                return result

            indices = np.asarray(indices, dtype=np.int64)
            plan = None
            if plans is not None:
                key = ("pull-sparse", matrix_id, row, indices.size,
                       id(indices))
                plan = plans.get(key)
                if plan is not None and not np.array_equal(plan[0], indices):
                    plan = None
            if plan is None:
                order = np.argsort(indices, kind="stable")
                sorted_indices = indices[order]
                by_server = self._split_for_row(layout, row, sorted_indices)
                requests = [
                    messages.PullRowRequest(server_index, matrix_id, row,
                                            group.size, indices=group)
                    for server_index, group in by_server.items()
                ]
                if plans is not None:
                    if len(plans) >= _PLAN_POOL_CAP:
                        plans.clear()
                    plans[key] = (indices.copy(), order, requests)
            else:
                _snapshot, order, requests = plan
            values, arrivals = self.transport.send_all(
                requests, pooled=plans is not None
            )
            values_by_index = np.empty(indices.size)
            cursor = 0
            for request, block in zip(requests, values):
                span = order[cursor : cursor + request.n_values]
                values_by_index[span] = block
                cursor += request.n_values
            self._await(arrivals)
            return values_by_index

    # -- lazy tables: get_or_create pulls --------------------------------------

    def pull_or_create(self, matrix_id, rows):
        """Pull embedding rows, materializing unseen ids server-side.

        The serving tier's read path over a lazy table
        (:meth:`~repro.ps.master.PSMaster.create_table`): one
        :class:`~repro.ps.messages.PullOrCreateRequest` per id, routed to
        ``id % n_servers`` under the table's
        :class:`~repro.ps.partitioner.RowLayout` and coalesced per server
        by the transport.  A server that does not hold a row yet
        initializes it from the table's deterministic, layout-independent
        RNG stream before serving — ElasticDL-style ``get_or_create``, so
        the table grows unbounded during online learning.  Ids this round
        materialized are then registered with the master (one control
        message: header plus one key per fresh id), which is what lets
        recovery and live shard migration re-materialize the table.

        Always server-authoritative: the worker cache is bypassed — a
        cache miss cannot distinguish "stale" from "never created", and
        serving reads must observe creations by other workers.

        Returns a ``len(rows) x dim`` array aligned with the input order.
        """
        rows = [int(row) for row in rows]
        with self._op("pull-create", matrix_id):
            layout = self._layout(matrix_id)
            info = self.master.info(matrix_id)
            if not info.lazy:
                raise PSError("matrix %r is not a lazy table" % (matrix_id,))
            requests = [
                messages.PullOrCreateRequest(
                    row % layout.n_servers, matrix_id, row, layout.dim,
                    init=info.init, scale=info.scale,
                )
                for row in rows
            ]
            values, arrivals = self.transport.send_all(requests)
            result = np.empty((len(rows), layout.dim))
            created = []
            for pos, (block, was_created) in enumerate(values):
                result[pos, :] = block
                if was_created:
                    created.append(rows[pos])
            self._await(arrivals)
            if created:
                from repro.cluster.cluster import DRIVER

                self.cluster.network.transfer(
                    self.node_id, DRIVER,
                    messages.REQUEST_HEADER_BYTES
                    + len(created) * messages.INDEX_BYTES,
                    tag="lazy-register",
                )
                self.master.register_lazy_rows(matrix_id, created)
            return result

    # -- row access: push (fire-and-forget) ------------------------------------

    def _push(self, matrix_id, row, values, indices, mode):
        with self._op("push", matrix_id):
            layout = self._layout(matrix_id)
            values = np.asarray(values, dtype=float)
            if self.cache is not None:
                # Write-through: the worker's own updates stay visible in
                # its cached copy (read-your-writes within the bound).
                self.cache.apply_push(matrix_id, row, values, indices, mode)
            plans = self._plan_pool(layout)
            if indices is None:
                if values.size != layout.dim:
                    raise PSError(
                        "dense push of %d values into dim-%d matrix"
                        % (values.size, layout.dim)
                    )
                plan = None
                if plans is not None:
                    key = ("push-dense", matrix_id, row, mode)
                    plan = plans.get(key)
                if plan is None:
                    shards = layout.shards_for_row(row)
                    requests = [
                        messages.PushRequest(server_index, matrix_id, row,
                                             values[start:stop], mode=mode)
                        for server_index, start, stop in shards
                    ]
                    if plans is not None:
                        plans[key] = (shards, requests)
                else:
                    # Pooled requests: swap in this call's value views (same
                    # slice lengths, so the memoized wire sizes stay valid).
                    shards, requests = plan
                    for request, (_srv, start, stop) in zip(requests, shards):
                        request.values = values[start:stop]
                self.transport.send_all(requests, pooled=plans is not None)
                return

            indices = np.asarray(indices, dtype=np.int64)
            plan = None
            if plans is not None:
                key = ("push-sparse", matrix_id, row, indices.size,
                       id(indices), mode)
                plan = plans.get(key)
                if plan is not None and not np.array_equal(plan[0], indices):
                    plan = None
            if plan is not None:
                _snapshot, order, requests, sizes = plan
                sorted_values = values[order]
                cursor = 0
                for request, size in zip(requests, sizes):
                    request.values = sorted_values[cursor : cursor + size]
                    cursor += size
                self.transport.send_all(requests, pooled=True)
                return
            order = np.argsort(indices, kind="stable")
            sorted_indices = indices[order]
            sorted_values = values[order]
            by_server = self._split_for_row(layout, row, sorted_indices)
            requests = []
            sizes = []
            cursor = 0
            for server_index, group in by_server.items():
                block = sorted_values[cursor : cursor + group.size]
                cursor += group.size
                sizes.append(group.size)
                requests.append(
                    messages.PushRequest(server_index, matrix_id, row, block,
                                         indices=group, mode=mode)
                )
            if plans is not None:
                if len(plans) >= _PLAN_POOL_CAP:
                    plans.clear()
                plans[key] = (indices.copy(), order, requests, sizes)
            self.transport.send_all(requests, pooled=plans is not None)

    def push_add(self, matrix_id, row, values, indices=None):
        """Accumulate a (dense or sparse) delta into a model row."""
        self._push(matrix_id, row, values, indices, "add")

    def push_assign(self, matrix_id, row, values, indices=None):
        """Overwrite (all or selected columns of) a model row."""
        self._push(matrix_id, row, values, indices, "assign")

    # -- range access (contiguous column slices, dense-priced) -----------------

    def _range_shards(self, layout, row, start, stop):
        """Overlaps of ``[start, stop)`` with each server shard of *row*."""
        overlaps = []
        for server_index, s_start, s_stop in layout.shards_for_row(row):
            lo = max(start, s_start)
            hi = min(stop, s_stop)
            if lo < hi:
                overlaps.append((server_index, lo, hi))
        return overlaps

    def pull_range(self, matrix_id, row, start, stop):
        """Pull the contiguous slice ``[start, stop)`` of a row.

        Priced as a dense transfer (8 bytes/value): a range is described by
        two integers, not per-index keys.  Used by pull/push-only baselines
        whose workers each update a slice of the model.
        """
        with self._op("pull-range", matrix_id):
            layout = self._layout(matrix_id)
            if self.cache is not None:
                entry = self.cache.lookup(matrix_id, row)
                if entry is not None:
                    self.cluster.metrics.observe(
                        "staleness-clocks",
                        float(self.cache.clock() - entry.pull_clock),
                    )
                    self.cluster.metrics.record_cache_hit(
                        self.node_id,
                        messages.dense_pull_request_bytes()
                        + self._priced_response_bytes(int(stop) - int(start)),
                    )
                    return entry.values[int(start):int(stop)].copy()
                full = self._cache_full_row(matrix_id, row, layout)
                return full[int(start):int(stop)].copy()
            overlaps = self._range_shards(layout, row, int(start), int(stop))
            requests = [
                messages.PullRangeRequest(server_index, matrix_id, row,
                                          lo, hi)
                for server_index, lo, hi in overlaps
            ]
            values, arrivals = self.transport.send_all(requests)
            result = np.empty(int(stop) - int(start))
            for (server_index, lo, hi), block in zip(overlaps, values):
                result[lo - start : hi - start] = block
            self._await(arrivals)
            return result

    def push_range(self, matrix_id, row, start, stop, values, mode="assign"):
        """Write the contiguous slice ``[start, stop)`` (dense-priced)."""
        with self._op("push-range", matrix_id):
            layout = self._layout(matrix_id)
            values = np.asarray(values, dtype=float)
            if self.cache is not None:
                self.cache.apply_push(
                    matrix_id, row, values,
                    np.arange(int(start), int(stop), dtype=np.int64), mode,
                )
            requests = [
                messages.PushRangeRequest(
                    server_index, matrix_id, row, lo, hi,
                    values[lo - start : hi - start], mode=mode,
                )
                for server_index, lo, hi
                in self._range_shards(layout, row, int(start), int(stop))
            ]
            self.transport.send_all(requests)

    # -- block access (multi-row, shared indices) ------------------------------

    def _rows_by_server(self, layout, rows):
        """Group row positions by owning server under a :class:`RowLayout`.

        Returns ``{server_index: [row_position, ...]}`` in ascending server
        order.  Only meaningful for row layouts, where each row lives whole
        on one server — a block op must route *per row*, never by
        ``rows[0]``'s owner.
        """
        by_server = {}
        for row_pos, row in enumerate(rows):
            server_index = int(row) % layout.n_servers
            by_server.setdefault(server_index, []).append(row_pos)
        return dict(sorted(by_server.items()))

    def pull_block(self, matrix_id, rows, indices=None, value_bytes=None):
        """Pull the same columns of several rows in one round trip per server.

        Used by LDA to fetch the word-topic block for a worker's local
        vocabulary: one message per (row, shard) is built, and the
        transport coalesces each server's messages into one batch envelope
        whose shared column-index list is shipped once.  ``value_bytes``
        overrides the per-value wire size (PS2's LDA ships counts as 32-bit
        integers — the "message compression" of Section 6.3.3); it defaults
        to 8 (raw float64).

        Under a :class:`RowLayout` each row lives whole on server
        ``row % n_servers``, so the block is routed per row (requests
        grouped by the *owning* server) instead of assuming every row
        shares ``rows[0]``'s shards.

        Returns a ``len(rows) x len(indices)`` array aligned with the input
        index order (or ``len(rows) x dim`` for a dense pull).
        """
        with self._op("pull-block", matrix_id):
            layout = self._layout(matrix_id)
            rows = list(rows)
            if value_bytes is None:
                value_bytes = messages.FLOAT_BYTES
            if isinstance(layout, RowLayout):
                return self._pull_block_row_layout(
                    matrix_id, layout, rows, indices, value_bytes
                )
            if not isinstance(layout, ColumnLayout):
                raise PSError("unsupported layout %r" % (layout,))

            if indices is None:
                plans = self._plan_pool(layout)
                plan = None
                if plans is not None:
                    key = ("pull-block-dense", matrix_id, tuple(rows),
                           value_bytes)
                    plan = plans.get(key)
                if plan is None:
                    requests = []
                    placements = []
                    for server_index, start, stop \
                            in layout.shards_for_row(rows[0]):
                        for row_pos, row in enumerate(rows):
                            requests.append(messages.PullRowRequest(
                                server_index, matrix_id, row, stop - start,
                                value_bytes=value_bytes, tag="pull-block",
                            ))
                            placements.append((row_pos, start, stop))
                    if plans is not None:
                        if len(plans) >= _PLAN_POOL_CAP:
                            plans.clear()
                        plans[key] = (placements, requests)
                else:
                    placements, requests = plan
                values, arrivals = self.transport.send_all(
                    requests, pooled=plans is not None
                )
                block = np.empty((len(rows), layout.dim))
                for (row_pos, start, stop), row_values in zip(placements,
                                                              values):
                    block[row_pos, start:stop] = row_values
                self._await(arrivals)
                return block

            indices = np.asarray(indices, dtype=np.int64)
            order = np.argsort(indices, kind="stable")
            sorted_indices = indices[order]
            by_server = self._split_for_row(layout, rows[0], sorted_indices)
            requests = []
            placements = []
            cursor = 0
            for server_index, group in by_server.items():
                span = order[cursor : cursor + group.size]
                cursor += group.size
                for row_pos in range(len(rows)):
                    # The same index array object is shared by every row's
                    # message, so a coalesced batch encodes it once.
                    requests.append(messages.PullRowRequest(
                        server_index, matrix_id, rows[row_pos], group.size,
                        indices=group, value_bytes=value_bytes,
                        tag="pull-block",
                    ))
                    placements.append((row_pos, span))
            values, arrivals = self.transport.send_all(requests)
            block = np.empty((len(rows), indices.size))
            for (row_pos, span), row_values in zip(placements, values):
                block[row_pos, span] = row_values
            self._await(arrivals)
            return block

    def _pull_block_row_layout(self, matrix_id, layout, rows, indices,
                               value_bytes):
        """Row-layout block pull: messages grouped by *owning* server."""
        width = layout.dim if indices is None else len(indices)
        if indices is not None:
            indices = np.asarray(indices, dtype=np.int64)
        by_server = self._rows_by_server(layout, rows)
        requests = []
        placements = []
        for server_index, row_positions in by_server.items():
            for row_pos in row_positions:
                requests.append(messages.PullRowRequest(
                    server_index, matrix_id, rows[row_pos], width,
                    indices=indices, value_bytes=value_bytes,
                    tag="pull-block",
                ))
                placements.append(row_pos)
        values, arrivals = self.transport.send_all(requests)
        block = np.empty((len(rows), width))
        for row_pos, row_values in zip(placements, values):
            block[row_pos, :] = row_values
        self._await(arrivals)
        return block

    def push_block_add(self, matrix_id, rows, block, indices=None,
                       value_bytes=None):
        """Accumulate a multi-row delta block (fire-and-forget, like push).

        Routes like :meth:`pull_block`: shard fan-out for column layouts,
        per-owning-server grouping for row layouts, one coalesced envelope
        per server with the shared index list shipped once.
        """
        with self._op("push-block", matrix_id):
            layout = self._layout(matrix_id)
            rows = list(rows)
            block = np.asarray(block, dtype=float)
            if value_bytes is None:
                value_bytes = messages.FLOAT_BYTES
            if isinstance(layout, RowLayout):
                self._push_block_row_layout(
                    matrix_id, layout, rows, block, indices, value_bytes
                )
                return
            if not isinstance(layout, ColumnLayout):
                raise PSError("unsupported layout %r" % (layout,))

            if indices is None:
                plans = self._plan_pool(layout)
                plan = None
                if plans is not None and block.shape == (len(rows),
                                                         layout.dim):
                    key = ("push-block-dense", matrix_id, tuple(rows),
                           value_bytes)
                    plan = plans.get(key)
                    if plan is None:
                        shards = layout.shards_for_row(rows[0])
                        requests = []
                        placements = []
                        for server_index, start, stop in shards:
                            for row_pos, row in enumerate(rows):
                                requests.append(messages.PushRequest(
                                    server_index, matrix_id, row,
                                    block[row_pos, start:stop], mode="add",
                                    value_bytes=value_bytes,
                                    tag="push-block",
                                ))
                                placements.append((row_pos, start, stop))
                        if len(plans) >= _PLAN_POOL_CAP:
                            plans.clear()
                        plans[key] = (placements, requests)
                    else:
                        placements, requests = plan
                        for request, (row_pos, start, stop) \
                                in zip(requests, placements):
                            request.values = block[row_pos, start:stop]
                    self.transport.send_all(requests, pooled=True)
                    return
                requests = [
                    messages.PushRequest(
                        server_index, matrix_id, row,
                        block[row_pos, start:stop], mode="add",
                        value_bytes=value_bytes, tag="push-block",
                    )
                    for server_index, start, stop
                    in layout.shards_for_row(rows[0])
                    for row_pos, row in enumerate(rows)
                ]
                self.transport.send_all(requests)
                return

            indices = np.asarray(indices, dtype=np.int64)
            order = np.argsort(indices, kind="stable")
            sorted_indices = indices[order]
            by_server = self._split_for_row(layout, rows[0], sorted_indices)
            requests = []
            cursor = 0
            for server_index, group in by_server.items():
                span = order[cursor : cursor + group.size]
                cursor += group.size
                for row_pos, row in enumerate(rows):
                    requests.append(messages.PushRequest(
                        server_index, matrix_id, row, block[row_pos, span],
                        indices=group, mode="add", value_bytes=value_bytes,
                        tag="push-block",
                    ))
            self.transport.send_all(requests)

    def _push_block_row_layout(self, matrix_id, layout, rows, block, indices,
                               value_bytes):
        """Row-layout block push: messages grouped by *owning* server."""
        if indices is not None:
            indices = np.asarray(indices, dtype=np.int64)
        by_server = self._rows_by_server(layout, rows)
        requests = [
            messages.PushRequest(
                server_index, matrix_id, rows[row_pos], block[row_pos],
                indices=indices, mode="add", value_bytes=value_bytes,
                tag="push-block",
            )
            for server_index, row_positions in by_server.items()
            for row_pos in row_positions
        ]
        self.transport.send_all(requests)

    # -- aggregates and server-side execution --------------------------------

    _COMBINE = {
        "sum": sum,
        "nnz": sum,
        "sumsq": sum,
        "max": max,
        "min": min,
    }

    def aggregate_row(self, matrix_id, row, kind):
        """A whole-row aggregate computed server-side; only scalars travel."""
        if kind not in self._COMBINE:
            raise PSError("unknown aggregate %r" % (kind,))
        with self._op("rowagg", matrix_id):
            layout = self._layout(matrix_id)
            requests = [
                messages.AggregateRequest(server_index, matrix_id, row, kind,
                                          n_values=stop - start)
                for server_index, start, stop in layout.shards_for_row(row)
            ]
            partials, arrivals = self.transport.send_all(requests)
            self._await(arrivals)
            return float(self._COMBINE[kind](partials))

    def execute(self, kernel, operands, args=None, n_response_scalars=1,
                flops_per_server=None, wait_response=True):
        """Run *kernel* server-side over co-located rows; gather partials.

        ``operands`` is a list of ``(matrix_id, row)`` pairs sharing one
        layout.  Only the op descriptor and the per-server scalar partials
        cross the network — this is the DCV column-access fast path.
        Returns the partial results in server-index order.

        Pure-mutation kernels (axpy, elementwise updates) pass
        ``wait_response=False``: like a push, the request is fire-and-forget
        and the client does not block on acknowledgements.
        """
        if not operands:
            raise PSError("execute needs at least one operand")
        matrix_id = operands[0][0]
        with self._op("kernel", matrix_id):
            layout = self._layout(matrix_id)
            requests = [
                messages.KernelRequest(
                    server_index, kernel, operands, args=args,
                    flops=flops_per_server,
                    n_response_scalars=n_response_scalars,
                    wait_response=wait_response,
                    n_values=(stop - start) * len(operands),
                )
                for server_index, start, stop
                in layout.shards_for_row(operands[0][1])
            ]
            partials, arrivals = self.transport.send_all(requests)
            if wait_response:
                self._await(arrivals)
            return partials

    def fill_row(self, matrix_id, row, value):
        """Set every element of a row, server-side (fire-and-forget)."""
        with self._op("fill", matrix_id):
            layout = self._layout(matrix_id)
            requests = [
                messages.FillRequest(server_index, matrix_id, row, value,
                                     n_values=stop - start)
                for server_index, start, stop in layout.shards_for_row(row)
            ]
            self.transport.send_all(requests)
