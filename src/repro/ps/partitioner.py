"""Model-matrix placement strategies.

The paper contrasts two placements:

- **Column layout** (PS2 / DCV, Section 4.3): every row of the model matrix
  is range-partitioned over all servers, so row access parallelizes across
  servers and same-index slices of sibling rows are co-located.
- **Row layout** (Petuum-style): each row (one whole model vector) lives on a
  single server, so accessing one vector is a single-server operation — the
  "single-point problem" the paper attributes to row partitioning.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError


class ColumnLayout:
    """Contiguous range partitioning of ``[0, dim)`` over *n_servers*.

    The range at position *p* (near-equal sizes, differing by at most one)
    is owned by server ``(p + rotation) % n_servers``.  The *rotation* models
    the placement randomization real parameter servers apply for load
    balancing: two matrices allocated independently land on different
    rotations, so their equal column ranges live on **different** servers —
    which is exactly why the paper's ``derive`` operator (same pool, same
    rotation) is needed for co-location (Figure 4).
    """

    kind = "column"

    def __init__(self, dim, n_servers, rotation=0, block=1):
        if dim <= 0:
            raise ConfigError("dim must be positive, got %r" % (dim,))
        if n_servers <= 0:
            raise ConfigError("n_servers must be positive, got %r" % (n_servers,))
        if block <= 0:
            raise ConfigError("block must be positive, got %r" % (block,))
        self.dim = int(dim)
        self.n_servers = int(n_servers)
        self.rotation = int(rotation) % self.n_servers
        self.block = int(block)
        # Partition boundaries fall on multiples of `block`, so logically
        # indivisible groups of columns (e.g. one feature's histogram bins
        # in GBDT) never straddle two servers.
        n_blocks = -(-self.dim // self.block)
        base, extra = divmod(n_blocks, self.n_servers)
        block_sizes = [
            base + (1 if p < extra else 0) for p in range(self.n_servers)
        ]
        bounds = np.cumsum([0] + block_sizes) * self.block
        self.bounds = np.minimum(bounds, self.dim)
        # Iterative workloads split the same sparse index set op after op
        # (and, with shared routing, client after client); the grouping
        # work depends only on the index contents, so memoize a few recent
        # results.  Entries hold a snapshot of the input, verified on every
        # hit, so an in-place-mutated array can never serve stale groups.
        self._split_cache = {}
        # Per-(op, row, indices) fan-out plans pooled by the PS client —
        # the layout is the one object every client of a matrix shares.
        self.op_plans = {}

    def _server_at_position(self, position):
        return (position + self.rotation) % self.n_servers

    def range_of_position(self, position):
        """Column range ``(start, stop)`` at partition *position*."""
        return int(self.bounds[position]), int(self.bounds[position + 1])

    def position_of(self, column):
        """The partition position holding *column*."""
        if not 0 <= column < self.dim:
            raise ConfigError("column %r out of range [0, %d)" % (column, self.dim))
        return int(np.searchsorted(self.bounds, column, side="right") - 1)

    def server_of(self, column):
        """The server owning *column* — the unique primary: replication
        adds read replicas on top of this mapping but never moves primary
        ownership, so every column is owned by exactly one server."""
        return self._server_at_position(self.position_of(column))

    def owned_ranges(self, server_index):
        """The ``(start, stop)`` column ranges *server_index* owns.

        With ``dim >= n_servers`` each server owns exactly one non-empty
        range; tiny matrices can leave trailing servers empty.
        """
        return [
            self.range_of_position(p)
            for p in range(self.n_servers)
            if self._server_at_position(p) == int(server_index)
            and self.bounds[p + 1] > self.bounds[p]
        ]

    def shards_for_row(self, row):
        """All ``(server_index, start, stop)`` shards of any row."""
        return [
            (self._server_at_position(p),) + self.range_of_position(p)
            for p in range(self.n_servers)
            if self.bounds[p + 1] > self.bounds[p]
        ]

    def split_indices(self, indices):
        """Group *indices* by owning server.

        Returns ``{server_index: global_indices_array}`` with empty servers
        omitted.  Input need not be sorted; output arrays are sorted, and
        the dict's iteration order follows ascending COLUMN ranges (clients
        rely on this: walking the groups in order re-assembles the sorted
        index sequence, rotation or not).  The result may be memoized and
        shared between callers — treat it (and its arrays) as read-only.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return {}
        key = (indices.size, int(indices[0]), int(indices[-1]))
        entry = self._split_cache.get(key)
        if entry is not None and np.array_equal(entry[0], indices):
            return entry[1]
        sorted_indices = np.sort(indices)
        positions = np.searchsorted(self.bounds, sorted_indices,
                                    side="right") - 1
        result = {}
        for position in np.unique(positions):
            server_index = self._server_at_position(int(position))
            result[server_index] = sorted_indices[positions == position]
        if len(self._split_cache) >= 16:
            self._split_cache.clear()
        self._split_cache[key] = (indices.copy(), result)
        return result

    def same_layout(self, other):
        """Whether *other* places columns identically (co-location test)."""
        return (
            isinstance(other, ColumnLayout)
            and self.dim == other.dim
            and self.n_servers == other.n_servers
            and self.rotation == other.rotation
            and self.block == other.block
        )

    def __eq__(self, other):
        return self.same_layout(other)

    def __hash__(self):
        return hash(
            (self.kind, self.dim, self.n_servers, self.rotation, self.block)
        )

    def __repr__(self):
        return "ColumnLayout(dim=%d, n_servers=%d, rotation=%d, block=%d)" % (
            self.dim,
            self.n_servers,
            self.rotation,
            self.block,
        )


class RowLayout:
    """One whole row per server (Petuum-style row partitioning).

    Row *r* of the matrix lives, in full, on server ``r % n_servers``.
    """

    kind = "row"

    def __init__(self, dim, n_servers):
        if dim <= 0:
            raise ConfigError("dim must be positive, got %r" % (dim,))
        if n_servers <= 0:
            raise ConfigError("n_servers must be positive, got %r" % (n_servers,))
        self.dim = int(dim)
        self.n_servers = int(n_servers)
        # Same snapshot-verified memo as ColumnLayout._split_cache.
        self._split_cache = {}
        # See ColumnLayout: pooled client fan-out plans.
        self.op_plans = {}

    def shards_for_row(self, row):
        return [(int(row) % self.n_servers, 0, self.dim)]

    def split_indices_for_row(self, row, indices):
        """All of *indices* map to row's single owning server.

        Memoized like :meth:`ColumnLayout.split_indices`; treat the result
        as read-only.
        """
        indices = np.asarray(indices, dtype=np.int64)
        server_index = int(row) % self.n_servers
        if indices.size == 0:
            return {server_index: indices}
        key = (server_index, indices.size, int(indices[0]),
               int(indices[-1]))
        entry = self._split_cache.get(key)
        if entry is not None and np.array_equal(entry[0], indices):
            return entry[1]
        result = {server_index: np.sort(indices)}
        if len(self._split_cache) >= 16:
            self._split_cache.clear()
        self._split_cache[key] = (indices.copy(), result)
        return result

    def same_layout(self, other):
        return (
            isinstance(other, RowLayout)
            and self.dim == other.dim
            and self.n_servers == other.n_servers
        )

    def __eq__(self, other):
        return self.same_layout(other)

    def __hash__(self):
        return hash((self.kind, self.dim, self.n_servers))

    def __repr__(self):
        return "RowLayout(dim=%d, n_servers=%d)" % (self.dim, self.n_servers)
