"""Typed PS protocol messages and their wire-size accounting.

The simulator does not serialize real bytes; it charges the sizes a compact
binary protocol (PS2 uses Netty + Protobuf) would put on the wire.  Every
client-to-server interaction is a first-class :class:`Request` value: the
client builds messages, the transport ships them (and re-ships them on
retry), and the server dispatches them through its handler table.  Keeping
both the message *types* and their byte formulas in one module makes the
communication model auditable.

Wire model
----------

A standalone request costs::

    REQUEST_HEADER_BYTES + shared_payload + private_payload

where the shared payload is a component several sibling requests can encode
once when batched (e.g. the column-index list of a block pull) and the
private payload is per-request data (values, range descriptors).

A :class:`BatchRequest` envelope — the per-server coalescing lever — costs::

    REQUEST_HEADER_BYTES                        # one envelope header
    + sum(unique shared payloads)               # index lists shipped once
    + sum(SUBREQUEST_HEADER_BYTES + private)    # per-sub descriptor + data

so coalescing k requests to one server saves ``(k-1)`` full request headers
plus ``(k-1)`` per-transfer envelope overheads at the NIC, and deduplicates
shared index lists — exactly the header amortization the paper's fat-request
design exploits.  Responses are positional (aligned with the request order
inside the envelope), so a batched response pays one response header plus
the concatenated value payloads.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import PSError
from repro.common.sizeof import FLOAT_BYTES, INDEX_BYTES

#: Matrix id + row id + op code + range descriptor.
REQUEST_HEADER_BYTES = 48

#: Status + matrix id + row id.
RESPONSE_HEADER_BYTES = 32

#: Per-sub-request descriptor inside a batch envelope: op code + row id +
#: payload length.  Smaller than a full request header — that difference,
#: times (k - 1), is the coalescing win.
SUBREQUEST_HEADER_BYTES = 16

#: Bytes per server entry in a routing-table response: server id + location
#: + column range.
ROUTING_ENTRY_BYTES = 16


# -- scalar wire formulas (shared by the message classes below) --------------


def dense_pull_request_bytes():
    """Pull of a full row shard: just the header (range implied by routing)."""
    return REQUEST_HEADER_BYTES


def sparse_pull_request_bytes(n_indices):
    """Pull of selected columns: header + one 64-bit key per column."""
    return REQUEST_HEADER_BYTES + int(n_indices) * INDEX_BYTES


def dense_pull_response_bytes(n_values):
    """Response carrying a dense value block."""
    return RESPONSE_HEADER_BYTES + int(n_values) * FLOAT_BYTES


def sparse_pull_response_bytes(n_values):
    """Response carrying values only (client re-associates with its keys)."""
    return RESPONSE_HEADER_BYTES + int(n_values) * FLOAT_BYTES


def dense_push_bytes(n_values):
    """Push of a dense delta block."""
    return REQUEST_HEADER_BYTES + int(n_values) * FLOAT_BYTES


def sparse_push_bytes(n_indices):
    """Push of a sparse delta: key + value per entry."""
    return REQUEST_HEADER_BYTES + int(n_indices) * (INDEX_BYTES + FLOAT_BYTES)


def scalar_op_request_bytes(n_operands=1):
    """Server-side op descriptor: header + operand matrix/row references."""
    return REQUEST_HEADER_BYTES + int(n_operands) * INDEX_BYTES


def scalar_response_bytes(n_scalars=1):
    """Response carrying aggregate scalars (dot partials, norms, gains)."""
    return RESPONSE_HEADER_BYTES + int(n_scalars) * FLOAT_BYTES


def routing_response_bytes(n_servers):
    """The master's routing-table reply: header + one entry per server."""
    return RESPONSE_HEADER_BYTES + ROUTING_ENTRY_BYTES * int(n_servers)


# -- typed requests -----------------------------------------------------------


class Request:
    """One typed client-to-server RPC message.

    A request is a plain value: it knows its destination
    (``server_index``), its metrics tag, its own wire size, and — when it
    expects a reply — the size of that reply.  It carries no references to
    server objects or closures, so the transport can re-resolve the serving
    server and re-send the *same message* on every retry attempt.

    ``n_values`` is the number of parameter values the request touches
    (hot-shard telemetry, not wire bytes).

    ``replica_of`` is ``None`` for a normal request; the replication
    manager sets it to the *primary* server index when it reroutes a read
    to a replica — the serving server uses it to look up its replica copy,
    and the hot-shard telemetry keeps attributing the access to the
    logical (primary) shard key so routing cannot drain the very heat
    signal that created the replica.

    ``trace_ctx`` is the causal-tracing context ``(trace_id,
    parent_span_id)`` the transport stamps on outgoing messages when
    tracing is enabled (``None`` otherwise).  It is **never** part of any
    wire formula: real tracers piggyback a few header bytes, but here the
    invariant that traced runs are bit-identical to untraced runs is worth
    more than that fidelity — no ``wire_bytes()`` / ``response_bytes()``
    implementation may read it.

    ``codec`` is the wire codec (:mod:`repro.ps.codecs`) the cost model
    attached, or ``None`` for the identity wire format.  Unlike
    ``trace_ctx`` it *is* a formula input: a push's payload is priced at
    its encoded size and a pull's response at the codec's fixed rate.
    ``None`` keeps every formula bit-identical to a codec-free build.
    """

    __slots__ = ("server_index", "matrix_id", "tag", "n_values", "replica_of",
                 "trace_ctx", "codec", "_wb", "_rb")

    op = "?"

    def __init__(self, server_index, matrix_id, tag, n_values=0):
        self.server_index = int(server_index)
        self.matrix_id = matrix_id
        self.tag = tag
        self.n_values = int(n_values)
        self.replica_of = None
        self.trace_ctx = None
        self.codec = None
        # Wire-size memos (0 = not computed; real sizes are positive).
        # Safe because every size input (n_values, payload lengths,
        # value_bytes) is fixed at construction — pooled requests only
        # swap same-length value views between sends.
        self._wb = 0
        self._rb = 0

    # -- wire accounting ---------------------------------------------------

    def shared_key(self):
        """Key identifying a payload component batch siblings can share.

        ``None`` means nothing is shareable.  Two requests in one batch
        with the same key encode that component once (the fat-request index
        list).  Keys use object identity of the underlying array: the
        client passes the *same* index array to every row of a block op.
        """
        return None

    def shared_payload_bytes(self):
        """Bytes of the shareable component (0 when there is none)."""
        return 0

    def payload_bytes(self):
        """Private payload bytes beyond header and shared component."""
        return 0

    def wire_bytes(self):
        """Total request bytes when sent standalone (memoized)."""
        wb = self._wb
        if not wb:
            wb = self._wb = (REQUEST_HEADER_BYTES
                             + self.shared_payload_bytes()
                             + self.payload_bytes())
        return wb

    def response_bytes(self):
        """Reply size, or ``None`` for fire-and-forget requests."""
        return None

    def materialize(self):
        """Decode any encoded payload in place before the server applies.

        Base requests carry no encoded payload (a pull's ``codec`` only
        shapes the *response* size); :class:`PushRequest` overrides this
        to replace its encoded values with the decoded array.  Idempotent,
        so retries that re-dispatch the same message are safe.
        """

    def message_count(self):
        """Logical sub-messages carried (1; batches report their size)."""
        return 1

    def __repr__(self):
        return "%s(server=%d, matrix=%r, tag=%r)" % (
            type(self).__name__, self.server_index, self.matrix_id, self.tag,
        )


class PullRowRequest(Request):
    """Pull one row's local shard, whole (dense) or selected columns.

    ``n_values`` is the number of values the server will return (the shard
    width for a dense pull, ``len(indices)`` for a sparse one) — the client
    knows it from the routing table, and the response is priced from it.
    ``value_bytes`` overrides the per-value response size (PS2's LDA ships
    counts as 32-bit integers — Section 6.3.3 message compression).
    """

    __slots__ = ("row", "indices", "value_bytes")

    op = "pull-row"

    def __init__(self, server_index, matrix_id, row, n_values, indices=None,
                 value_bytes=FLOAT_BYTES, tag="pull"):
        super().__init__(server_index, matrix_id, tag, n_values)
        self.row = int(row)
        self.indices = indices
        self.value_bytes = int(value_bytes)

    def shared_key(self):
        if self.indices is None:
            return None
        return ("idx", self.matrix_id, id(self.indices))

    def shared_payload_bytes(self):
        if self.indices is None:
            return 0
        return len(self.indices) * INDEX_BYTES

    def response_bytes(self):
        rb = self._rb
        if not rb:
            if self.codec is not None:
                rb = (RESPONSE_HEADER_BYTES
                      + self.codec.encoded_bytes(self.n_values))
            else:
                rb = RESPONSE_HEADER_BYTES + self.n_values * self.value_bytes
            self._rb = rb
        return rb


class PullOrCreateRequest(Request):
    """Pull one embedding row, creating it server-side if it is unseen.

    The lazy-table read path (ElasticDL's ``get_or_create``): online
    requests may reference ids no training pass ever touched, so the
    *server* owns initialization — if the row's shard is absent it is
    allocated from the table's deterministic per-row RNG stream (the same
    discipline :meth:`PSMaster.recover` replays, so creation, migration
    and recovery all materialize bit-identical values) and the freshly
    initialized values come back like any other pull.

    Wire accounting is honest but *deterministic*: the request carries the
    row id plus the init descriptor (init code + scale — the server cannot
    create without them), and the response always carries a created-marker
    word on top of the value payload.  The client prices the response
    before dispatch and cannot know whether creation will happen, so the
    marker is part of the fixed response layout rather than a
    data-dependent size — the create-path bytes are on the wire ledger
    either way.
    """

    __slots__ = ("row", "init", "scale")

    op = "pull-or-create"

    def __init__(self, server_index, matrix_id, row, n_values, init="random",
                 scale=0.01, tag="pull-create"):
        super().__init__(server_index, matrix_id, tag, n_values)
        self.row = int(row)
        self.init = init
        self.scale = float(scale)

    def payload_bytes(self):
        # Row id + init code word + the init scale.
        return 2 * INDEX_BYTES + FLOAT_BYTES

    def response_bytes(self):
        rb = self._rb
        if not rb:
            rb = (RESPONSE_HEADER_BYTES + INDEX_BYTES
                  + self.n_values * FLOAT_BYTES)
            self._rb = rb
        return rb


class PullRangeRequest(Request):
    """Pull the contiguous columns ``[start, stop)`` of one row.

    Dense-priced: the range is described by two integers, not per-index
    keys.
    """

    __slots__ = ("row", "start", "stop")

    op = "pull-range"

    def __init__(self, server_index, matrix_id, row, start, stop, tag="pull"):
        super().__init__(server_index, matrix_id, tag, int(stop) - int(start))
        self.row = int(row)
        self.start = int(start)
        self.stop = int(stop)

    def payload_bytes(self):
        return 2 * INDEX_BYTES

    def response_bytes(self):
        if self.codec is not None:
            return (RESPONSE_HEADER_BYTES
                    + self.codec.encoded_bytes(self.stop - self.start))
        return dense_pull_response_bytes(self.stop - self.start)


class PushRequest(Request):
    """Push a dense or sparse delta into one row (fire-and-forget).

    ``mode`` is ``"add"`` (accumulate) or ``"assign"`` (overwrite);
    ``value_bytes`` supports compressed block pushes.

    When the cost model attached a codec, ``encoded`` holds the encoded
    payload between the client's send and the server's dispatch, and
    ``_enc_nbytes`` its honest wire size.  ``_enc_nbytes`` survives
    :meth:`materialize` so post-apply pricing (replica fan-out envelopes)
    still charges the encoded size the wire actually carried.
    """

    __slots__ = ("row", "values", "indices", "mode", "value_bytes",
                 "encoded", "_enc_nbytes")

    op = "push"

    def __init__(self, server_index, matrix_id, row, values, indices=None,
                 mode="add", value_bytes=FLOAT_BYTES, tag="push"):
        if mode not in ("add", "assign"):
            raise PSError("unknown push mode %r" % (mode,))
        super().__init__(server_index, matrix_id, tag, len(values))
        self.row = int(row)
        self.values = values
        self.indices = indices
        self.mode = mode
        self.value_bytes = int(value_bytes)
        self.encoded = None
        self._enc_nbytes = 0

    def shared_key(self):
        if self.indices is None:
            return None
        return ("idx", self.matrix_id, id(self.indices))

    def shared_payload_bytes(self):
        if self.indices is None:
            return 0
        return len(self.indices) * INDEX_BYTES

    def payload_bytes(self):
        if self._enc_nbytes:
            return self._enc_nbytes
        return len(self.values) * self.value_bytes

    def materialize(self):
        encoded = self.encoded
        if encoded is not None:
            self.values = self.codec.decode(encoded)
            self.encoded = None


class PushRangeRequest(Request):
    """Write the contiguous columns ``[start, stop)`` of one row."""

    __slots__ = ("row", "start", "stop", "values", "mode")

    op = "push-range"

    def __init__(self, server_index, matrix_id, row, start, stop, values,
                 mode="assign", tag="push"):
        if mode not in ("add", "assign"):
            raise PSError("unknown push mode %r" % (mode,))
        super().__init__(server_index, matrix_id, tag, len(values))
        self.row = int(row)
        self.start = int(start)
        self.stop = int(stop)
        self.values = values
        self.mode = mode

    def payload_bytes(self):
        return 2 * INDEX_BYTES + len(self.values) * FLOAT_BYTES

    def span(self):
        """The global column indices this range covers."""
        return np.arange(self.start, self.stop, dtype=np.int64)


class AggregateRequest(Request):
    """Server-side whole-shard aggregate; only a scalar travels back."""

    __slots__ = ("row", "kind")

    op = "aggregate"

    def __init__(self, server_index, matrix_id, row, kind, n_values=0,
                 tag="rowagg"):
        super().__init__(server_index, matrix_id, tag, n_values)
        self.row = int(row)
        self.kind = kind

    def payload_bytes(self):
        return INDEX_BYTES  # the op descriptor's single operand reference

    def response_bytes(self):
        return scalar_response_bytes()


class KernelRequest(Request):
    """Execute a kernel over co-located rows; scalars (if any) come back.

    Only the op descriptor crosses the wire — this is the DCV column-access
    fast path.  ``wait_response=False`` marks pure-mutation kernels, which
    are fire-and-forget like pushes.
    """

    __slots__ = ("kernel", "operands", "args", "flops", "n_response_scalars",
                 "wait_response")

    op = "kernel"

    def __init__(self, server_index, kernel, operands, args=None, flops=None,
                 n_response_scalars=1, wait_response=True, n_values=0,
                 tag="kernel"):
        super().__init__(server_index, operands[0][0], tag, n_values)
        self.kernel = kernel
        self.operands = operands
        self.args = args
        self.flops = flops
        self.n_response_scalars = int(n_response_scalars)
        self.wait_response = bool(wait_response)

    def payload_bytes(self):
        return len(self.operands) * INDEX_BYTES

    def response_bytes(self):
        if not self.wait_response:
            return None
        return scalar_response_bytes(self.n_response_scalars)


class FillRequest(Request):
    """Set every element of a row's local shard (fire-and-forget)."""

    __slots__ = ("row", "value")

    op = "fill"

    def __init__(self, server_index, matrix_id, row, value, n_values=0,
                 tag="fill"):
        super().__init__(server_index, matrix_id, tag, n_values)
        self.row = int(row)
        self.value = float(value)

    def payload_bytes(self):
        return FLOAT_BYTES  # the fill value itself


class ClockAdvanceRequest(Request):
    """A worker's logical-clock tick: exchange version vectors for cached rows.

    Sent by a :class:`~repro.ps.cache.WorkerCache` at every clock advance,
    carrying the worker's new clock plus the ``(matrix_id, row)`` keys it
    holds cached on this server; the server replies with its current
    ``(epoch, counter)`` version token per key.  The cache drops entries
    whose server epoch changed (the server was recovered — its state may
    have rolled back to a checkpoint, so age-based staleness accounting is
    void) and lets the rest age out under the staleness bound.

    ``matrix_id`` is ``None``: the message is a control-plane exchange, not
    an access of any one matrix — the transport skips routing resolution
    and hot-shard accounting for it, exactly like routing RPCs.
    """

    __slots__ = ("keys", "clock")

    op = "clock-advance"

    def __init__(self, server_index, keys, clock, tag="clock-advance"):
        super().__init__(server_index, None, tag, 0)
        self.keys = list(keys)
        self.clock = int(clock)

    def payload_bytes(self):
        # The clock value plus one (matrix_id, row) pair per cached key.
        return INDEX_BYTES + len(self.keys) * 2 * INDEX_BYTES

    def response_bytes(self):
        # One packed (epoch, counter) token per key.
        return RESPONSE_HEADER_BYTES + len(self.keys) * FLOAT_BYTES


class ReplicatedPushRequest(Request):
    """Fan a mutation out to one replica of a hot shard (fire-and-forget).

    Wraps the *inner* mutation message (push / push-range / fill / kernel)
    that was applied to the primary and re-targets it at a replica holder.
    The envelope carries the fencing token that merges replication with
    the PR-4 version machinery: the primary's ``epoch`` at fan-out time
    plus the primary's post-apply per-row mutation ``versions`` (aligned
    with :meth:`version_keys`).  A replica applies the inner mutation only
    when its install epoch matches and its row counters are behind the
    recorded versions — so a redelivery after a crash-triggered re-install
    (which already copied the mutated primary state) is skipped instead of
    double-applied, and a fan-out raced by a primary recovery (whose
    rollback also lost the mutation) is fenced instead of resurrected.

    ``matrix_id`` is ``None``: like clock-advance renewals, fan-out is
    induced (not demand) traffic — the transport skips routing resolution
    and hot-shard accounting for it, so replication can never feed its own
    heat signal.
    """

    __slots__ = ("inner", "primary_index", "epoch", "versions")

    op = "replica-push"

    def __init__(self, server_index, inner, primary_index, epoch, versions,
                 tag="replica-push"):
        if isinstance(inner, (BatchRequest, ReplicatedPushRequest)):
            raise PSError("cannot fan out %r" % (type(inner).__name__,))
        super().__init__(server_index, None, tag, 0)
        self.inner = inner
        self.primary_index = int(primary_index)
        self.epoch = int(epoch)
        #: ``{(matrix_id, row): counter}`` — the primary's post-apply
        #: mutation counters for every row the inner message touches.
        self.versions = dict(versions)

    def version_keys(self):
        """The ``(matrix_id, row)`` keys the inner mutation touches."""
        return list(self.versions)

    def payload_bytes(self):
        # Primary index + epoch + one version token per touched row, then
        # the inner mutation verbatim (its shared component is not shared
        # across fan-out targets, so it rides as private payload here).
        return (2 * INDEX_BYTES + len(self.versions) * INDEX_BYTES
                + self.inner.shared_payload_bytes()
                + self.inner.payload_bytes())


def _chain_state_bytes(n_rows, value_bytes, n_versions):
    """The wire size of one chain state stream: per-row descriptors
    (row id + ``[start, stop)``), the row values, and one version token
    per carried counter."""
    return (int(n_rows) * 3 * INDEX_BYTES + int(value_bytes)
            + int(n_versions) * INDEX_BYTES)


class ChainSyncRequest(Request):
    """Install (or refresh) one chain replica on a successor server.

    The primary streams its full shard state for one matrix to a chain
    successor (fire-and-forget): *n_rows* row descriptors, *value_bytes*
    of row values — the raw float payload, or the cost model's compressed
    size when a codec regime is active — and *n_versions* mutation
    counters, fenced by the primary's recovery *epoch*.  ``matrix_id`` is
    ``None`` on the base slot: chain sync is induced (not demand) traffic
    and must never feed the hot-shard heat signal; the real matrix rides
    in ``matrix`` for telemetry.
    """

    __slots__ = ("matrix", "primary_index", "epoch", "n_rows", "value_bytes",
                 "n_versions")

    op = "chain-sync"

    def __init__(self, server_index, matrix, primary_index, epoch, n_rows,
                 value_bytes, n_versions, tag="chain-sync"):
        super().__init__(server_index, None, tag, 0)
        self.matrix = matrix
        self.primary_index = int(primary_index)
        self.epoch = int(epoch)
        self.n_rows = int(n_rows)
        self.value_bytes = int(value_bytes)
        self.n_versions = int(n_versions)

    def payload_bytes(self):
        # Primary index + epoch, then the state stream.
        return 2 * INDEX_BYTES + _chain_state_bytes(
            self.n_rows, self.value_bytes, self.n_versions
        )


class ChainPromoteRequest(Request):
    """Pull a successor's chain copy into a replacement primary.

    Sent by the replacement server (via the coordinator's recovery path)
    to a surviving successor: the request names the failed primary and
    the epoch whose copies are wanted — the response carries the state
    stream back, sized like a :class:`ChainSyncRequest` payload.
    """

    __slots__ = ("matrix", "primary_index", "epoch", "n_rows", "value_bytes",
                 "n_versions")

    op = "chain-promote"

    def __init__(self, server_index, matrix, primary_index, epoch, n_rows,
                 value_bytes, n_versions, tag="chain-promote"):
        super().__init__(server_index, None, tag, 0)
        self.matrix = matrix
        self.primary_index = int(primary_index)
        self.epoch = int(epoch)
        self.n_rows = int(n_rows)
        self.value_bytes = int(value_bytes)
        self.n_versions = int(n_versions)

    def payload_bytes(self):
        # The failed primary's index + the fenced epoch wanted.
        return 2 * INDEX_BYTES

    def response_bytes(self):
        return RESPONSE_HEADER_BYTES + _chain_state_bytes(
            self.n_rows, self.value_bytes, self.n_versions
        )


class BatchRequest(Request):
    """Envelope coalescing several requests to one server into one RPC.

    One request header and one NIC booking cover the whole batch; shared
    payload components (block-op index lists) are encoded once; each
    sub-request contributes a :data:`SUBREQUEST_HEADER_BYTES` descriptor plus
    its private payload.  Dispatching returns the sub-results in order, and
    the batched response pays one response header plus the concatenated
    per-sub value payloads (sub-responses are positional).
    """

    __slots__ = ("requests", "_wire_bytes", "_response_bytes")

    op = "batch"

    def __init__(self, requests):
        if not requests:
            raise PSError("a batch needs at least one request")
        first = requests[0]
        for request in requests:
            if request.server_index != first.server_index:
                raise PSError(
                    "batch mixes servers %d and %d"
                    % (first.server_index, request.server_index)
                )
            if isinstance(request, BatchRequest):
                raise PSError("batches do not nest")
        super().__init__(
            first.server_index, first.matrix_id, first.tag,
            sum(request.n_values for request in requests),
        )
        self.requests = list(requests)
        # The sub-request list is fixed at construction and no formula input
        # can change afterwards (trace_ctx is stamped later but is never a
        # formula input), so both envelope sizes are computed once and
        # memoized — the transport prices every message at least twice
        # (shard telemetry + the transfer itself).
        self._wire_bytes = None
        self._response_bytes = 0

    def wire_bytes(self):
        total = self._wire_bytes
        if total is None:
            total = REQUEST_HEADER_BYTES
            seen = set()
            for request in self.requests:
                total += SUBREQUEST_HEADER_BYTES + request.payload_bytes()
                key = request.shared_key()
                if key is not None and key not in seen:
                    seen.add(key)
                    total += request.shared_payload_bytes()
            self._wire_bytes = total
        return total

    def response_bytes(self):
        cached = self._response_bytes
        if cached != 0:
            return cached
        payload = 0
        any_response = False
        for request in self.requests:
            sub = request.response_bytes()
            if sub is not None:
                any_response = True
                payload += sub - RESPONSE_HEADER_BYTES
        total = RESPONSE_HEADER_BYTES + payload if any_response else None
        self._response_bytes = total
        return total

    def message_count(self):
        return len(self.requests)
