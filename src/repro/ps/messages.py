"""Wire-size accounting for PS protocol messages.

The simulator does not serialize real bytes; it charges the sizes a compact
binary protocol (PS2 uses Netty + Protobuf) would put on the wire.  Keeping
the formulas in one place makes the communication model auditable.
"""

from __future__ import annotations

from repro.common.sizeof import FLOAT_BYTES, INDEX_BYTES

#: Matrix id + row id + op code + range descriptor.
REQUEST_HEADER_BYTES = 48

#: Status + matrix id + row id.
RESPONSE_HEADER_BYTES = 32


def dense_pull_request_bytes():
    """Pull of a full row shard: just the header (range implied by routing)."""
    return REQUEST_HEADER_BYTES


def sparse_pull_request_bytes(n_indices):
    """Pull of selected columns: header + one 64-bit key per column."""
    return REQUEST_HEADER_BYTES + int(n_indices) * INDEX_BYTES


def dense_pull_response_bytes(n_values):
    """Response carrying a dense value block."""
    return RESPONSE_HEADER_BYTES + int(n_values) * FLOAT_BYTES


def sparse_pull_response_bytes(n_values):
    """Response carrying values only (client re-associates with its keys)."""
    return RESPONSE_HEADER_BYTES + int(n_values) * FLOAT_BYTES


def dense_push_bytes(n_values):
    """Push of a dense delta block."""
    return REQUEST_HEADER_BYTES + int(n_values) * FLOAT_BYTES


def sparse_push_bytes(n_indices):
    """Push of a sparse delta: key + value per entry."""
    return REQUEST_HEADER_BYTES + int(n_indices) * (INDEX_BYTES + FLOAT_BYTES)


def scalar_op_request_bytes(n_operands=1):
    """Server-side op descriptor: header + operand matrix/row references."""
    return REQUEST_HEADER_BYTES + int(n_operands) * INDEX_BYTES


def scalar_response_bytes(n_scalars=1):
    """Response carrying aggregate scalars (dot partials, norms, gains)."""
    return RESPONSE_HEADER_BYTES + int(n_scalars) * FLOAT_BYTES
