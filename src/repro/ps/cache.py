"""Worker-side parameter cache for relaxed-consistency execution.

Under SSP/ASP every executor's PS-client owns a :class:`WorkerCache`
holding full model rows pulled from the servers.  A ``pull``/``pull_range``
whose row is cached and no older than the staleness bound is served from
the executor-local copy — **zero** network traffic (no ``transfer`` call,
so the NIC timelines and byte counters genuinely do not move); a miss
promotes to a full-row dense pull (NuPS-style replication of the parameters
a worker keeps touching) whose result is cached for the next ``bound``
clocks.

Freshness is measured in the worker's *logical clocks* (one per task): an
entry pulled at clock ``p`` may serve reads through clock ``p + bound``,
which is exactly the SSP contract — a read is never more than ``bound``
clocks stale.  The worker's own pushes write through to the cached copy
(read-your-writes within the bound).

At every clock advance the cache runs a version-vector exchange: one
:class:`~repro.ps.messages.ClockAdvanceRequest` per server holding cached
rows, carrying the cached keys and returning the server's current
``(epoch, counter)`` token per key.  The tokens are compared by equality
only.  An *epoch* change means the server was recovered from a crash — its
state may have rolled back to a checkpoint, so clock-age staleness
accounting is void and the entry is dropped immediately (the PR-2 failure
model's guarantee: a recovered server's version vector must not permit
stale reads past the bound).  A *counter* change is ordinary progress by
other workers; the entry stays until it ages out.  Entries older than the
bound are evicted at the tick (they can never serve a hit again).

The renewal RPC pays full wire costs through the typed transport — the
cache's coherence traffic is part of the cost model, not free.

Interaction with hot-key replication: cache tokens are **primary** tokens.
A cached row's ``tokens`` map keys the primary server indices from the
routing table, and the renewal RPC always targets the primaries — never a
replica.  This keeps the fencing story single-sourced: replicas carry
their own install-epoch fence (validated server-side per read and per
fan-out apply, see :mod:`repro.ps.replication`), and a replica is only
ever readable while its install epoch equals the primary's current epoch,
so a primary-token equality check subsumes every replica the row may have
been served from.
"""

from __future__ import annotations

import numpy as np

from repro.ps import messages


class CacheEntry:
    """One cached model row: values + pull clock + per-server tokens."""

    __slots__ = ("values", "pull_clock", "tokens")

    def __init__(self, values, pull_clock, tokens):
        self.values = values
        self.pull_clock = int(pull_clock)
        self.tokens = tokens  # {server_index: (epoch, counter)}


class WorkerCache:
    """Executor-local full-row cache with a staleness-bounded reuse window."""

    def __init__(self, cluster, node_id, model, transport):
        self.cluster = cluster
        self.node_id = node_id
        self.model = model
        self.transport = transport
        self.entries = {}
        # An elastic resize re-shards every matrix; cached rows carry
        # per-server tokens keyed on the old primary indices, so they are
        # unconditionally dropped rather than renewed against a new map.
        cluster.topology_change_hooks.append(self.invalidate)

    @property
    def bound(self):
        return self.model.cache_bound()

    def clock(self):
        return self.model.clock_of(self.node_id)

    # -- lookup / store ----------------------------------------------------

    def lookup(self, matrix_id, row):
        """The cached entry for a row, or ``None`` if absent/too stale."""
        key = (matrix_id, int(row))
        entry = self.entries.get(key)
        if entry is None:
            return None
        age = self.clock() - entry.pull_clock
        if age > self.bound:
            del self.entries[key]
            return None
        return entry

    def store(self, matrix_id, row, values, tokens):
        """Cache a freshly pulled full row at the current clock."""
        self.entries[(matrix_id, int(row))] = CacheEntry(
            np.array(values, dtype=float, copy=True), self.clock(), tokens
        )

    def apply_push(self, matrix_id, row, values, indices, mode):
        """Write-through for the worker's own pushes (read-your-writes).

        Applies the values the client *intended* to push.  Under a lossy
        wire codec the server applies the decoded (quantized/sparsified)
        values instead, so a cached row can drift from the server copy by
        at most the codec's per-message error bound; the divergence is
        bounded by the staleness window — the next miss refills the row
        from the server's (decoded) state.  Cache-hit ``bytes_saved``
        telemetry is priced through the active cost model when one is
        configured (:meth:`CostModel.priced_pull_response_bytes`): a hit
        reports the wire volume the pull *would* have cost under the
        codec regime in force, falling back to identity rates only when
        no cost model is installed.
        """
        entry = self.entries.get((matrix_id, int(row)))
        if entry is None:
            return
        if mode == "add":
            if indices is None:
                entry.values += values
            else:
                np.add.at(entry.values,
                          np.asarray(indices, dtype=np.int64), values)
        else:
            if indices is None:
                entry.values[:] = values
            else:
                entry.values[np.asarray(indices, dtype=np.int64)] = values

    def invalidate(self, matrix_id=None):
        """Drop cached rows of one matrix (or everything)."""
        if matrix_id is None:
            self.entries.clear()
        else:
            for key in [k for k in self.entries if k[0] == matrix_id]:
                del self.entries[key]

    # -- clock-advance renewal ----------------------------------------------

    def on_clock_advance(self, node_id, clock_value):
        """Version-vector exchange at this worker's logical-clock tick.

        Registered on ``cluster.clock_advance_hooks``; ignores other
        workers' ticks.  Sends one ClockAdvance message per server holding
        cached rows (coalesced/retried by the transport like any RPC —
        a *down* server is recovered right here, which is how the epoch
        fence learns about crashes), waits for the token responses, then
        drops epoch-fenced and aged-out entries.
        """
        if node_id != self.node_id or not self.entries:
            return
        by_server = {}
        for key, entry in self.entries.items():
            for server_index in entry.tokens:
                by_server.setdefault(server_index, []).append(key)
        requests = [
            messages.ClockAdvanceRequest(server_index, keys, clock_value)
            for server_index, keys in sorted(by_server.items())
        ]
        values, arrivals = self.transport.send_all(requests)
        arrivals = [a for a in arrivals if a is not None]
        if arrivals:
            self.cluster.clock.set_at_least(self.node_id, max(arrivals))
        current = {}
        for request, tokens in zip(requests, values):
            for key, token in zip(request.keys, tokens):
                current[(key, request.server_index)] = token
        for key, entry in list(self.entries.items()):
            fenced = any(
                current.get((key, server_index), (epoch, None))[0] != epoch
                for server_index, (epoch, _counter) in entry.tokens.items()
            )
            if fenced:
                del self.entries[key]
                self.cluster.metrics.increment("cache-epoch-fences")
            elif clock_value - entry.pull_clock > self.bound:
                del self.entries[key]
