"""Checkpointing of server state to reliable external storage.

Section 5.3: "PS2 periodically checkpoints the model parameters on each
server to a reliable external storage.  When a server failure happens, the
coordinator starts a new server and the new server recovers the latest model
by loading from the checkpoints."  Reads and writes are charged at HDFS-like
sequential throughput against the server's clock.
"""

from __future__ import annotations

#: Sequential throughput to/from the external store (bytes/second).
STORAGE_BANDWIDTH = 200e6


class CheckpointManager:
    """Holds the latest durable snapshot per server."""

    def __init__(self, cluster, storage_bandwidth=STORAGE_BANDWIDTH):
        self.cluster = cluster
        self.storage_bandwidth = float(storage_bandwidth)
        self._snapshots = {}
        self.checkpoints_taken = 0
        self.recoveries = 0

    def checkpoint_server(self, server):
        """Write *server*'s state to the store, charging the write time."""
        nbytes = server.stored_bytes()
        snapshot = server.snapshot()
        self.cluster.charge_seconds(
            server.node_id, nbytes / self.storage_bandwidth, tag="checkpoint"
        )
        self._snapshots[server.server_index] = {
            "time": self.cluster.clock.now(server.node_id),
            "bytes": nbytes,
            "state": snapshot,
        }
        self.checkpoints_taken += 1
        self.cluster.metrics.increment("checkpoints")

    def checkpoint_all(self, servers):
        """Checkpoint every live server (the periodic sweep).

        A sweep must survive a concurrent server failure: dead servers are
        skipped (there is nothing durable to gain from an empty replacement)
        and counted, while every surviving server is still checkpointed — a
        single crash must not abort the whole sweep.
        """
        for server in servers:
            if not server.is_alive():
                self.cluster.metrics.increment("checkpoint-skips-dead-server")
                continue
            self.checkpoint_server(server)

    def has_checkpoint(self, server_index):
        return server_index in self._snapshots

    def invalidate(self):
        """Drop every snapshot; returns whether any existed.

        Called after a live shard migration: a pre-migration snapshot
        holds pre-migration shard *ranges*, and restoring it afterwards
        would reinstate wrong widths (reconciliation only fills missing
        shards, it never validates ranges).  The master takes a fresh
        sweep right after when checkpoint protection was in play.
        """
        had = bool(self._snapshots)
        self._snapshots.clear()
        return had

    def recover_server(self, server):
        """Load the latest snapshot into a replacement server.

        Returns the virtual time at which the snapshot was taken, or ``None``
        when the server has never been checkpointed — a failure before the
        first sweep is legal, and the master then rebuilds the server from
        matrix metadata instead of from storage.
        """
        entry = self._snapshots.get(server.server_index)
        if entry is None:
            return None
        self.cluster.charge_seconds(
            server.node_id, entry["bytes"] / self.storage_bandwidth, tag="recovery"
        )
        server.restore(entry["state"])
        self.recoveries += 1
        self.cluster.metrics.increment("recoveries")
        return entry["time"]
