"""Checkpointing of server state to reliable external storage.

Section 5.3: "PS2 periodically checkpoints the model parameters on each
server to a reliable external storage.  When a server failure happens, the
coordinator starts a new server and the new server recovers the latest model
by loading from the checkpoints."  Reads and writes are charged at HDFS-like
sequential throughput against the server's clock.
"""

from __future__ import annotations

#: Sequential throughput to/from the external store (bytes/second).
STORAGE_BANDWIDTH = 200e6


class CheckpointManager:
    """Holds the latest durable snapshot per server."""

    def __init__(self, cluster, storage_bandwidth=STORAGE_BANDWIDTH):
        self.cluster = cluster
        self.storage_bandwidth = float(storage_bandwidth)
        self._snapshots = {}
        self.checkpoints_taken = 0
        self.recoveries = 0

    def checkpoint_server(self, server):
        """Write *server*'s state to the store, charging the write time."""
        nbytes = server.stored_bytes()
        snapshot = server.snapshot()
        self.cluster.charge_seconds(
            server.node_id, nbytes / self.storage_bandwidth, tag="checkpoint"
        )
        self._snapshots[server.server_index] = {
            "time": self.cluster.clock.now(server.node_id),
            "bytes": nbytes,
            "state": snapshot,
        }
        self.checkpoints_taken += 1
        self.cluster.metrics.increment("checkpoints")

    def checkpoint_all(self, servers):
        """Checkpoint every live server (the periodic sweep).

        A sweep must survive a concurrent server failure: dead servers are
        skipped (there is nothing durable to gain from an empty replacement)
        and counted, while every surviving server is still checkpointed — a
        single crash must not abort the whole sweep.
        """
        for server in servers:
            if not server.is_alive():
                self.cluster.metrics.increment("checkpoint-skips-dead-server")
                continue
            self.checkpoint_server(server)

    def has_checkpoint(self, server_index):
        return server_index in self._snapshots

    def invalidate(self):
        """Drop every snapshot; returns whether any existed.

        Called after a live shard migration: a pre-migration snapshot
        holds pre-migration shard *ranges*, and restoring it afterwards
        would reinstate wrong widths (reconciliation only fills missing
        shards, it never validates ranges).  The master takes a fresh
        sweep right after when checkpoint protection was in play.
        """
        had = bool(self._snapshots)
        self._snapshots.clear()
        return had

    def recover_server(self, server, only_matrices=None):
        """Load the latest snapshot into a replacement server.

        Returns the virtual time at which the snapshot was taken, or ``None``
        when the server has never been checkpointed — a failure before the
        first sweep is legal, and the master then rebuilds the server from
        matrix metadata instead of from storage.

        *only_matrices* restricts the restore to those matrix ids — the
        chain-replication fallback path, where matrices already promoted
        from chain successors carry post-checkpoint updates and must not
        be rolled back.  Only the filtered bytes are charged (the storage
        read is per-matrix), and each surviving matrix is merged in via
        :meth:`~repro.ps.server.PSServer.restore_matrix` rather than a
        wholesale store replacement.  Returns ``None`` when the filter
        leaves nothing to restore.
        """
        entry = self._snapshots.get(server.server_index)
        if entry is None:
            return None
        state = entry["state"]
        nbytes = entry["bytes"]
        if only_matrices is not None:
            wanted = set(only_matrices)
            state = {
                matrix_id: rows
                for matrix_id, rows in state.items()
                if matrix_id in wanted
            }
            if not state:
                return None
            nbytes = sum(
                shard.values.nbytes
                for rows in state.values()
                for shard in rows.values()
            )
        # The restore occupies the replacement's CPU timeline, not just its
        # clock: requests arriving while the snapshot streams in from
        # storage queue behind it — the recovery pause the chain-recovery
        # benchmark measures.  (Chain promotion has no equivalent charge
        # here because its state moves through NIC reservations, which
        # delay subsequent arrivals on their own.)
        seconds = nbytes / self.storage_bandwidth
        now = self.cluster.clock.now(server.node_id)
        start = server.cpu.reserve(now, seconds)
        server.last_completion = start + seconds
        self.cluster.metrics.record_compute(
            server.node_id, seconds, tag="recovery"
        )
        self.cluster.clock.set_at_least(server.node_id, server.last_completion)
        if only_matrices is None:
            server.restore(state)
        else:
            for matrix_id in sorted(state):
                server.restore_matrix(matrix_id, state[matrix_id])
        self.recoveries += 1
        self.cluster.metrics.increment("recoveries")
        return entry["time"]
