"""Retry policy for client-to-server RPCs.

Section 5.3's recovery story needs more than "try again": a failed attempt
must cost time (failure detection is not free), repeated failures must back
off so a recovering server is not hammered, and a bounded attempt budget
must turn a permanently-dead server into a clean error instead of an
infinite loop.  :class:`RetryPolicy` packages those three knobs; all waits
are charged to the *virtual* clock of the retrying client, so fault
injection changes makespans, never wall time.

The policy is executed by :class:`repro.ps.transport.Transport`, whose
retry loop re-resolves routing and the serving server object and re-sends
the *typed message* through the network model on every attempt — a retry
is a full new RPC of the same message value, never a replayed closure.
"""

from __future__ import annotations

from repro.common.errors import ConfigError

#: Default retry budget after the first attempt (kept as a module constant
#: for backwards compatibility with the pre-policy client API).
MAX_SERVER_RETRIES = 3

#: Default failure-detection timeout charged per failed attempt (seconds).
DEFAULT_OP_TIMEOUT = 1e-3

#: Default first-retry backoff (seconds); doubles per subsequent retry.
DEFAULT_BACKOFF = 1e-3


class RetryPolicy:
    """How a PS client retries an op that hit a failed server or link.

    ``max_retries`` bounds the retries *after* the initial attempt, so an op
    runs at most ``max_retries + 1`` times.  Every failed attempt charges
    ``timeout`` (the client waited that long before declaring the attempt
    dead) plus ``backoff_for(attempt)`` (exponential: ``backoff *
    multiplier**(attempt - 1)`` for the attempt-th retry) to the client's
    virtual clock.
    """

    __slots__ = ("max_retries", "timeout", "backoff", "multiplier")

    def __init__(self, max_retries=MAX_SERVER_RETRIES, timeout=DEFAULT_OP_TIMEOUT,
                 backoff=DEFAULT_BACKOFF, multiplier=2.0):
        if max_retries < 0:
            raise ConfigError("max_retries must be >= 0, got %r" % (max_retries,))
        if timeout < 0:
            raise ConfigError("timeout must be >= 0, got %r" % (timeout,))
        if backoff < 0:
            raise ConfigError("backoff must be >= 0, got %r" % (backoff,))
        if multiplier < 1.0:
            raise ConfigError("multiplier must be >= 1, got %r" % (multiplier,))
        self.max_retries = int(max_retries)
        self.timeout = float(timeout)
        self.backoff = float(backoff)
        self.multiplier = float(multiplier)

    @classmethod
    def from_config(cls, failures):
        """Build the policy from a :class:`repro.config.FailureConfig`."""
        return cls(
            max_retries=failures.max_op_retries,
            timeout=failures.op_timeout,
            backoff=failures.retry_backoff,
            multiplier=failures.retry_backoff_multiplier,
        )

    def backoff_for(self, attempt):
        """Backoff before the *attempt*-th retry (attempts count from 1)."""
        if attempt < 1:
            raise ConfigError("retry attempts count from 1, got %r" % (attempt,))
        return self.backoff * self.multiplier ** (attempt - 1)

    def penalty_for(self, attempt):
        """Total virtual seconds charged for the *attempt*-th failure."""
        return self.timeout + self.backoff_for(attempt)

    def __repr__(self):
        return (
            "RetryPolicy(max_retries=%d, timeout=%g, backoff=%g, multiplier=%g)"
            % (self.max_retries, self.timeout, self.backoff, self.multiplier)
        )
