"""PS-master: matrix lifecycle, routing metadata and failure recovery.

The master runs inside the coordinator (the Spark driver), as in Section 5.1:
it "manages the lifetime of PS-servers, and provides some meta information,
including the locations and routing tables for PS-client to locate
parameters".
"""

from __future__ import annotations

from repro.cluster.cluster import DRIVER
from repro.common.errors import MatrixNotFoundError
from repro.ps.checkpoint import CheckpointManager
from repro.ps.messages import REQUEST_HEADER_BYTES
from repro.ps.partitioner import ColumnLayout
from repro.ps.server import PSServer


class MatrixInfo:
    """Metadata for one distributed model matrix."""

    __slots__ = ("matrix_id", "dim", "n_rows", "layout", "name")

    def __init__(self, matrix_id, dim, n_rows, layout, name):
        self.matrix_id = matrix_id
        self.dim = int(dim)
        self.n_rows = int(n_rows)
        self.layout = layout
        self.name = name


class PSMaster:
    """Coordinator-resident manager of parameter servers and matrices."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.servers = [
            PSServer(cluster, node_id, index)
            for index, node_id in enumerate(cluster.servers)
        ]
        self.checkpoints = CheckpointManager(cluster)
        self._matrices = {}
        self._next_matrix_id = 0

    @property
    def n_servers(self):
        return len(self.servers)

    def server(self, index):
        return self.servers[index]

    # -- matrix lifecycle ---------------------------------------------------

    def create_matrix(self, dim, n_rows=1, layout=None, init="zero", scale=0.01,
                      name=None):
        """Allocate an ``n_rows x dim`` model matrix across the servers.

        Returns the matrix id.  Allocation sends one control message per
        involved server; random initialization happens server-side with a
        per-shard deterministic stream, so values do not depend on the number
        of clients.
        """
        if layout is None:
            layout = ColumnLayout(dim, self.n_servers)
        matrix_id = self._next_matrix_id
        self._next_matrix_id += 1
        info = MatrixInfo(matrix_id, dim, n_rows, layout, name or "m%d" % matrix_id)
        self._matrices[matrix_id] = info

        involved = set()
        for row in range(n_rows):
            for server_index, start, stop in layout.shards_for_row(row):
                involved.add(server_index)
                rng = self.cluster.rng.get(
                    "ps-init-%d-%d-%d" % (matrix_id, row, server_index)
                )
                self.servers[server_index].allocate_row(
                    matrix_id, row, start, stop, init=init, rng=rng, scale=scale
                )
        for server_index in sorted(involved):
            self.cluster.network.transfer(
                DRIVER,
                self.servers[server_index].node_id,
                REQUEST_HEADER_BYTES,
                tag="ps-allocate",
            )
        return matrix_id

    def free_matrix(self, matrix_id):
        """Release every shard of *matrix_id*."""
        self._matrices.pop(matrix_id, None)
        for server in self.servers:
            server.drop_matrix(matrix_id)

    def info(self, matrix_id):
        try:
            return self._matrices[matrix_id]
        except KeyError:
            raise MatrixNotFoundError("unknown matrix %r" % (matrix_id,)) from None

    def layout(self, matrix_id):
        return self.info(matrix_id).layout

    # -- fault handling -----------------------------------------------------

    def checkpoint_all(self):
        """Periodic checkpoint sweep over all servers."""
        self.checkpoints.checkpoint_all(self.servers)

    def recover(self, server_index):
        """Replace a failed server and reload its latest checkpoint.

        Model updates since the last checkpoint are lost, exactly as in the
        paper's recovery story; SGD-style training absorbs the regression.
        """
        server = self.servers[server_index]
        recover_start = self.cluster.clock.now(server.node_id)
        server.revive()
        self.checkpoints.recover_server(server)
        self.cluster.network.transfer(
            DRIVER, server.node_id, REQUEST_HEADER_BYTES, tag="ps-recover"
        )
        self.cluster.metrics.increment("server-recoveries")
        tracer = self.cluster.tracer
        if tracer.enabled:
            tracer.record(
                server.node_id, "ps-recover", recover_start,
                self.cluster.clock.now(server.node_id), cat="op",
                server_index=server_index,
            )
