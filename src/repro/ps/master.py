"""PS-master: matrix lifecycle, routing metadata and failure recovery.

The master runs inside the coordinator (the Spark driver), as in Section 5.1:
it "manages the lifetime of PS-servers, and provides some meta information,
including the locations and routing tables for PS-client to locate
parameters".  Client-side, the routing table is cached (and re-fetched after
an invalidation) by each :class:`repro.ps.transport.Transport`, and
:meth:`PSMaster.server` is how every RPC attempt resolves the *current*
server object — a recovered server is a new process, and a transport retry
must never talk to the old one.

Recovery contract (Section 5.3): when a server fails, the coordinator starts
a **new** server process under the same node and loads the latest checkpoint
into it.  Matrices created (or grown) after that checkpoint — or matrices
that existed before the *first* checkpoint was ever taken — are rebuilt from
the master's metadata with the same deterministic per-shard RNG streams used
at allocation time, and matrices freed since the snapshot are dropped.  What
is lost, exactly as in the paper, is the *updates* applied to the failed
server's shards since the last checkpoint; SGD-style training absorbs the
regression, bounded by the updates-since-last-checkpoint.
"""

from __future__ import annotations

from repro.cluster.cluster import DRIVER
from repro.common.errors import MatrixNotFoundError
from repro.ps.checkpoint import CheckpointManager
from repro.ps.messages import REQUEST_HEADER_BYTES
from repro.ps.partitioner import ColumnLayout
from repro.ps.server import PSServer


class MatrixInfo:
    """Metadata for one distributed model matrix.

    Carries everything needed to rebuild any shard from scratch after a
    failure: the layout (placement) plus the initialization recipe
    (``init``/``scale``), replayed against the same named RNG streams.
    """

    __slots__ = ("matrix_id", "dim", "n_rows", "layout", "name", "init",
                 "scale")

    def __init__(self, matrix_id, dim, n_rows, layout, name, init="zero",
                 scale=0.01):
        self.matrix_id = matrix_id
        self.dim = int(dim)
        self.n_rows = int(n_rows)
        self.layout = layout
        self.name = name
        self.init = init
        self.scale = float(scale)


class PSMaster:
    """Coordinator-resident manager of parameter servers and matrices."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.servers = [
            PSServer(cluster, node_id, index)
            for index, node_id in enumerate(cluster.servers)
        ]
        self.checkpoints = CheckpointManager(cluster)
        self._matrices = {}
        #: Memoized send_all groupings for client plan-pool request lists,
        #: keyed by ``(id(list), coalesce)`` with the list ref pinned so
        #: the id stays valid (see Transport.send_all).
        self.fanout_group_plans = {}
        #: Bumped whenever a server process is replaced (failover): any
        #: pooled artifact that resolved server objects must rebuild.
        self.topology_epoch = 0
        self._next_matrix_id = 0
        self.checkpoint_interval = float(
            cluster.config.failures.checkpoint_interval
        )
        self._next_sweep = (
            self.checkpoint_interval if self.checkpoint_interval > 0 else None
        )
        #: Virtual times at which periodic sweeps ran (experiment telemetry).
        self.checkpoint_sweep_times = []
        if self._next_sweep is not None:
            cluster.stage_end_hooks.append(self.maybe_checkpoint)
        #: The hot-key replication manager — ``None`` with the knob off, so
        #: every transport/server fast path stays bit-identical to a
        #: pre-replication build (the golden-run guarantee).
        self.replication = None
        if getattr(cluster.config, "replication", "off") != "off":
            from repro.ps.replication import HotKeyManager

            self.replication = HotKeyManager(cluster, self)
            cluster.replication = self.replication
            cluster.stage_end_hooks.append(self._rebalance_at_stage_end)
        #: The wire-codec cost model — ``None`` with the knob off, so every
        #: wire-size formula stays bit-identical to a pre-codec build.
        self.costmodel = None
        if getattr(cluster.config, "wire_codec", "off") != "off":
            from repro.ps.costmodel import CostModel

            self.costmodel = CostModel(cluster, cluster.config)
            cluster.costmodel = self.costmodel

    @property
    def n_servers(self):
        return len(self.servers)

    def server(self, index):
        return self.servers[index]

    # -- matrix lifecycle ---------------------------------------------------

    def _init_rng(self, matrix_id, row, server_index):
        """The deterministic init stream for one shard.

        The same stream names are used at allocation and at post-failure
        re-initialization, so recovery is a deterministic function of the
        run's seed and failure schedule.
        """
        return self.cluster.rng.get(
            "ps-init-%d-%d-%d" % (matrix_id, row, server_index)
        )

    def create_matrix(self, dim, n_rows=1, layout=None, init="zero", scale=0.01,
                      name=None):
        """Allocate an ``n_rows x dim`` model matrix across the servers.

        Returns the matrix id.  Allocation sends one control message per
        involved server; random initialization happens server-side with a
        per-shard deterministic stream, so values do not depend on the number
        of clients.
        """
        if layout is None:
            layout = ColumnLayout(dim, self.n_servers)
        matrix_id = self._next_matrix_id
        self._next_matrix_id += 1
        info = MatrixInfo(matrix_id, dim, n_rows, layout, name or "m%d" % matrix_id,
                          init=init, scale=scale)
        self._matrices[matrix_id] = info

        involved = set()
        for row in range(n_rows):
            for server_index, start, stop in layout.shards_for_row(row):
                involved.add(server_index)
                self.servers[server_index].allocate_row(
                    matrix_id, row, start, stop, init=init,
                    rng=self._init_rng(matrix_id, row, server_index),
                    scale=scale,
                )
        for server_index in sorted(involved):
            self.cluster.network.transfer(
                DRIVER,
                self.servers[server_index].node_id,
                REQUEST_HEADER_BYTES,
                tag="ps-allocate",
            )
        return matrix_id

    def free_matrix(self, matrix_id):
        """Release every shard of *matrix_id* (replicas included)."""
        self._matrices.pop(matrix_id, None)
        for server in self.servers:
            server.drop_matrix(matrix_id)
        if self.replication is not None:
            self.replication.on_matrix_freed(matrix_id)

    def info(self, matrix_id):
        try:
            return self._matrices[matrix_id]
        except KeyError:
            raise MatrixNotFoundError("unknown matrix %r" % (matrix_id,)) from None

    def layout(self, matrix_id):
        return self.info(matrix_id).layout

    # -- fault handling -----------------------------------------------------

    def checkpoint_all(self):
        """Checkpoint sweep over all (live) servers."""
        self.checkpoints.checkpoint_all(self.servers)

    def maybe_checkpoint(self):
        """Run a checkpoint sweep if the configured interval has elapsed.

        Driven by virtual time (``checkpoint_interval`` in the failure
        config): polled after every sparklite stage barrier and after every
        client PS op, so training loops sweep automatically without manual
        ``checkpoint_all`` calls.  Returns whether a sweep ran.
        """
        if self._next_sweep is None:
            return False
        if self.cluster.clock.global_time() < self._next_sweep:
            return False
        self.checkpoint_all()
        self.cluster.metrics.increment("checkpoint-sweeps")
        self.checkpoint_sweep_times.append(self.cluster.clock.global_time())
        # Re-arm relative to the post-sweep clock: a long stage must trigger
        # one sweep, not a burst of catch-up sweeps.
        self._next_sweep = (
            self.cluster.clock.global_time() + self.checkpoint_interval
        )
        return True

    def _rebalance_at_stage_end(self):
        """Stage-barrier trigger for the replication rebalance sweep."""
        return self.replication.maybe_rebalance(at_stage_end=True)

    def maybe_rebalance(self):
        """Poll the replication rebalance sweep (virtual-time gated).

        Called after every client PS op, mirroring
        :meth:`maybe_checkpoint`, so pure-PS workloads sweep without a
        sparklite stage barrier.  A no-op (``False``) when replication is
        off or when ``rebalance_interval`` is 0 — interval-0 sweeps run
        only at stage ends.
        """
        if self.replication is None:
            return False
        return self.replication.maybe_rebalance()

    def _reconcile(self, server):
        """Bring *server*'s shard set in line with the matrix metadata.

        Re-allocates, freshly initialized, every shard the metadata assigns
        to this server that is missing from its store (matrices created
        after the last checkpoint, or everything when no checkpoint exists),
        and drops shards of matrices freed since the snapshot was taken.
        Returns the number of shards re-initialized.
        """
        reinitialized = 0
        for info in self._matrices.values():
            for row in range(info.n_rows):
                for server_index, start, stop in info.layout.shards_for_row(row):
                    if server_index != server.server_index:
                        continue
                    if server.has_shard(info.matrix_id, row):
                        continue
                    server.allocate_row(
                        info.matrix_id, row, start, stop, init=info.init,
                        rng=self._init_rng(info.matrix_id, row, server_index),
                        scale=info.scale,
                    )
                    reinitialized += 1
        for matrix_id in server.stored_matrix_ids():
            if matrix_id not in self._matrices:
                server.drop_matrix(matrix_id)
        if reinitialized:
            self.cluster.metrics.increment(
                "recovery-reinit-shards", reinitialized
            )
        return reinitialized

    def recover(self, server_index):
        """Start a replacement server and rebuild the failed one's state.

        The replacement is a **new** :class:`PSServer` object (the paper's
        coordinator "starts a new server"): clients holding the pre-failure
        object must re-resolve through the master to reach it.  State is
        rebuilt in three steps — load the latest checkpoint when one exists,
        re-initialize shards the snapshot does not cover from matrix
        metadata, and drop shards of matrices freed since the snapshot.
        """
        failed = self.servers[server_index]
        recover_start = self.cluster.clock.now(failed.node_id)
        # Epoch continuity: the replacement's version tokens must never
        # equal the failed process's — its state may have rolled back to a
        # checkpoint, and worker caches fence on the epoch to detect that.
        server = PSServer(self.cluster, failed.node_id, server_index,
                          epoch=failed.epoch + 1)
        server.revive()  # resets the CPU timeline to the node's current time
        self.servers[server_index] = server
        self.topology_epoch += 1
        checkpoint_time = self.checkpoints.recover_server(server)
        reinitialized = self._reconcile(server)
        self.cluster.network.transfer(
            DRIVER, server.node_id, REQUEST_HEADER_BYTES, tag="ps-recover"
        )
        self.cluster.metrics.increment("server-recoveries")
        if self.replication is not None:
            # Refresh the replica topology at the new epoch: replicas OF
            # this server's shards are stale (the primary may have rolled
            # back), and replicas it HOSTED died with its state.
            self.replication.on_server_recovered(server_index)
        tracer = self.cluster.tracer
        if tracer.enabled:
            tracer.record(
                server.node_id, "ps-recover", recover_start,
                self.cluster.clock.now(server.node_id), cat="op",
                server_index=server_index,
                from_checkpoint=checkpoint_time is not None,
                reinit_shards=reinitialized,
            )
        return server

    def repair(self, server_index):
        """Heal a server whose shard set drifted from the metadata.

        The client's retry path calls this on ``MatrixNotFoundError``: a
        dead server gets the full :meth:`recover` treatment; a live one only
        has its missing shards re-allocated (its live updates are kept).
        """
        server = self.servers[server_index]
        if not server.is_alive():
            return self.recover(server_index)
        self._reconcile(server)
        self.cluster.metrics.increment("server-repairs")
        return server
