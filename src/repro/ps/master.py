"""PS-master: matrix lifecycle, routing metadata and failure recovery.

The master runs inside the coordinator (the Spark driver), as in Section 5.1:
it "manages the lifetime of PS-servers, and provides some meta information,
including the locations and routing tables for PS-client to locate
parameters".  Client-side, the routing table is cached (and re-fetched after
an invalidation) by each :class:`repro.ps.transport.Transport`, and
:meth:`PSMaster.server` is how every RPC attempt resolves the *current*
server object — a recovered server is a new process, and a transport retry
must never talk to the old one.

Recovery contract (Section 5.3): when a server fails, the coordinator starts
a **new** server process under the same node and loads the latest checkpoint
into it.  Matrices created (or grown) after that checkpoint — or matrices
that existed before the *first* checkpoint was ever taken — are rebuilt from
the master's metadata with the same deterministic per-shard RNG streams used
at allocation time, and matrices freed since the snapshot are dropped.  What
is lost, exactly as in the paper, is the *updates* applied to the failed
server's shards since the last checkpoint; SGD-style training absorbs the
regression, bounded by the updates-since-last-checkpoint.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import DRIVER
from repro.common.errors import MatrixNotFoundError, PSError
from repro.common.rng import generator
from repro.common.sizeof import FLOAT_BYTES, INDEX_BYTES
from repro.ps.checkpoint import CheckpointManager
from repro.ps.messages import REQUEST_HEADER_BYTES
from repro.ps.partitioner import ColumnLayout, RowLayout
from repro.ps.server import PSServer, RowShard


class MatrixInfo:
    """Metadata for one distributed model matrix.

    Carries everything needed to rebuild any shard from scratch after a
    failure: the layout (placement) plus the initialization recipe
    (``init``/``scale``), replayed against the same named RNG streams.

    ``lazy`` marks an embedding table whose rows materialize on first
    access (:meth:`PSMaster.create_table`): ``created_rows`` is the
    master's authoritative registry of ids that exist — the recovery
    metadata that lets :meth:`PSMaster._reconcile` rebuild a lazy table
    after a crash, since no ``range(n_rows)`` enumerates it.
    """

    __slots__ = ("matrix_id", "dim", "n_rows", "layout", "name", "init",
                 "scale", "lazy", "created_rows")

    def __init__(self, matrix_id, dim, n_rows, layout, name, init="zero",
                 scale=0.01, lazy=False):
        self.matrix_id = matrix_id
        self.dim = int(dim)
        self.n_rows = int(n_rows)
        self.layout = layout
        self.name = name
        self.init = init
        self.scale = float(scale)
        self.lazy = bool(lazy)
        self.created_rows = set() if lazy else None


class PSMaster:
    """Coordinator-resident manager of parameter servers and matrices."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.servers = [
            PSServer(cluster, node_id, index)
            for index, node_id in enumerate(cluster.servers)
        ]
        self.checkpoints = CheckpointManager(cluster)
        self._matrices = {}
        #: Memoized send_all groupings for client plan-pool request lists,
        #: keyed by ``(id(list), coalesce)`` with the list ref pinned so
        #: the id stays valid (see Transport.send_all).
        self.fanout_group_plans = {}
        #: Bumped whenever a server process is replaced (failover): any
        #: pooled artifact that resolved server objects must rebuild.
        self.topology_epoch = 0
        self._next_matrix_id = 0
        self.checkpoint_interval = float(
            cluster.config.failures.checkpoint_interval
        )
        self._next_sweep = (
            self.checkpoint_interval if self.checkpoint_interval > 0 else None
        )
        #: Virtual times at which periodic sweeps ran (experiment telemetry).
        self.checkpoint_sweep_times = []
        if self._next_sweep is not None:
            cluster.stage_end_hooks.append(self.maybe_checkpoint)
        #: The hot-key replication manager — ``None`` with the knob off, so
        #: every transport/server fast path stays bit-identical to a
        #: pre-replication build (the golden-run guarantee).
        self.replication = None
        if getattr(cluster.config, "replication", "off") != "off":
            from repro.ps.replication import HotKeyManager

            self.replication = HotKeyManager(cluster, self)
            cluster.replication = self.replication
            cluster.stage_end_hooks.append(self._rebalance_at_stage_end)
        #: The wire-codec cost model — ``None`` with the knob off, so every
        #: wire-size formula stays bit-identical to a pre-codec build.
        self.costmodel = None
        if getattr(cluster.config, "wire_codec", "off") != "off":
            from repro.ps.costmodel import CostModel

            self.costmodel = CostModel(cluster, cluster.config)
            cluster.costmodel = self.costmodel
        #: The chain replicator — ``None`` with ``chain_replicas == 0``, so
        #: every transport/server fast path stays bit-identical to a
        #: pre-chain build and checkpoint restore stays the only recovery
        #: path (the golden-run guarantee).
        self.chain = None
        if int(getattr(cluster.config, "chain_replicas", 0)) > 0:
            from repro.ps.replication import ChainReplicator

            self.chain = ChainReplicator(cluster, self)
            cluster.chain = self.chain

    @property
    def n_servers(self):
        return len(self.servers)

    def server(self, index):
        return self.servers[index]

    # -- matrix lifecycle ---------------------------------------------------

    def _init_rng(self, matrix_id, row, server_index):
        """The deterministic init stream for one shard.

        The same stream names are used at allocation and at post-failure
        re-initialization, so recovery is a deterministic function of the
        run's seed and failure schedule.
        """
        return self.cluster.rng.get(
            "ps-init-%d-%d-%d" % (matrix_id, row, server_index)
        )

    def create_matrix(self, dim, n_rows=1, layout=None, init="zero", scale=0.01,
                      name=None):
        """Allocate an ``n_rows x dim`` model matrix across the servers.

        Returns the matrix id.  Allocation sends one control message per
        involved server; random initialization happens server-side with a
        per-shard deterministic stream, so values do not depend on the number
        of clients.
        """
        if layout is None:
            layout = ColumnLayout(dim, self.n_servers)
        matrix_id = self._next_matrix_id
        self._next_matrix_id += 1
        info = MatrixInfo(matrix_id, dim, n_rows, layout, name or "m%d" % matrix_id,
                          init=init, scale=scale)
        self._matrices[matrix_id] = info

        involved = set()
        for row in range(n_rows):
            for server_index, start, stop in layout.shards_for_row(row):
                involved.add(server_index)
                self.servers[server_index].allocate_row(
                    matrix_id, row, start, stop, init=init,
                    rng=self._init_rng(matrix_id, row, server_index),
                    scale=scale,
                )
        for server_index in sorted(involved):
            self.cluster.network.transfer(
                DRIVER,
                self.servers[server_index].node_id,
                REQUEST_HEADER_BYTES,
                tag="ps-allocate",
            )
        if self.chain is not None:
            self.chain.on_matrix_created(matrix_id)
        return matrix_id

    def _lazy_rng(self, matrix_id, row):
        """The one-shot init stream for one lazy-table row.

        Unlike :meth:`_init_rng` the stream carries **no server index** and
        is constructed fresh per call: creation on whichever server the
        current layout routes the row to, re-materialization during
        recovery, and re-creation after a shard migration all draw
        bit-identical values — layout-independent determinism, the
        property the serving tier's property tests pin down.
        """
        return generator(self.cluster.rng.seed,
                         "ps-lazy-init-%s-%d" % (matrix_id, int(row)))

    def create_table(self, dim, init="random", scale=0.01, name=None):
        """Create a lazy embedding table; returns the matrix id.

        No shards are allocated up front: rows materialize server-side on
        the first :class:`~repro.ps.messages.PullOrCreateRequest` that
        references them (ElasticDL's ``get_or_create``), so the table
        grows unbounded during online learning.  Row placement uses a
        :class:`RowLayout` — one whole embedding vector per id, the
        classic single-server embedding lookup.
        """
        matrix_id = self._next_matrix_id
        self._next_matrix_id += 1
        info = MatrixInfo(matrix_id, dim, 0, RowLayout(dim, self.n_servers),
                          name or "t%d" % matrix_id, init=init, scale=scale,
                          lazy=True)
        self._matrices[matrix_id] = info
        return matrix_id

    def register_lazy_rows(self, matrix_id, rows):
        """Record ids a client's get_or_create round materialized.

        The registry is create-once: ids already known are ignored, so
        concurrent workers racing on the same id converge on one creation
        record.  Returns the number of ids that were new.  The wire cost
        of the registration message is charged by the client.
        """
        info = self.info(matrix_id)
        if not info.lazy:
            raise PSError("matrix %r is not a lazy table" % (matrix_id,))
        fresh = 0
        for row in rows:
            row = int(row)
            if row not in info.created_rows:
                info.created_rows.add(row)
                if row >= info.n_rows:
                    info.n_rows = row + 1
                fresh += 1
        return fresh

    def free_matrix(self, matrix_id):
        """Release every shard of *matrix_id* (replicas included)."""
        self._matrices.pop(matrix_id, None)
        for server in self.servers:
            server.drop_matrix(matrix_id)
        if self.replication is not None:
            self.replication.on_matrix_freed(matrix_id)
        if self.chain is not None:
            self.chain.on_matrix_freed(matrix_id)

    def info(self, matrix_id):
        try:
            return self._matrices[matrix_id]
        except KeyError:
            raise MatrixNotFoundError("unknown matrix %r" % (matrix_id,)) from None

    def layout(self, matrix_id):
        return self.info(matrix_id).layout

    def matrix_ids(self):
        """Sorted ids of every live matrix (replication/chain sweeps)."""
        return sorted(self._matrices)

    # -- fault handling -----------------------------------------------------

    def checkpoint_all(self):
        """Checkpoint sweep over all (live) servers."""
        self.checkpoints.checkpoint_all(self.servers)

    def maybe_checkpoint(self):
        """Run a checkpoint sweep if the configured interval has elapsed.

        Driven by virtual time (``checkpoint_interval`` in the failure
        config): polled after every sparklite stage barrier and after every
        client PS op, so training loops sweep automatically without manual
        ``checkpoint_all`` calls.  Returns whether a sweep ran.
        """
        if self._next_sweep is None:
            return False
        if self.cluster.clock.global_time() < self._next_sweep:
            return False
        self.checkpoint_all()
        self.cluster.metrics.increment("checkpoint-sweeps")
        self.checkpoint_sweep_times.append(self.cluster.clock.global_time())
        # Re-arm relative to the post-sweep clock: a long stage must trigger
        # one sweep, not a burst of catch-up sweeps.
        self._next_sweep = (
            self.cluster.clock.global_time() + self.checkpoint_interval
        )
        return True

    def _rebalance_at_stage_end(self):
        """Stage-barrier trigger for the replication rebalance sweep."""
        return self.replication.maybe_rebalance(at_stage_end=True)

    def maybe_rebalance(self):
        """Poll the replication rebalance sweep (virtual-time gated).

        Called after every client PS op, mirroring
        :meth:`maybe_checkpoint`, so pure-PS workloads sweep without a
        sparklite stage barrier.  A no-op (``False``) when replication is
        off or when ``rebalance_interval`` is 0 — interval-0 sweeps run
        only at stage ends.
        """
        if self.replication is None:
            return False
        return self.replication.maybe_rebalance()

    def _reconcile(self, server):
        """Bring *server*'s shard set in line with the matrix metadata.

        Re-allocates, freshly initialized, every shard the metadata assigns
        to this server that is missing from its store (matrices created
        after the last checkpoint, or everything when no checkpoint exists),
        and drops shards of matrices freed since the snapshot was taken.
        Returns the number of shards re-initialized.
        """
        reinitialized = 0
        for info in self._matrices.values():
            for row in self._assigned_rows(info):
                for server_index, start, stop in info.layout.shards_for_row(row):
                    if server_index != server.server_index:
                        continue
                    if server.has_shard(info.matrix_id, row):
                        continue
                    rng = (self._lazy_rng(info.matrix_id, row) if info.lazy
                           else self._init_rng(info.matrix_id, row,
                                               server_index))
                    server.allocate_row(
                        info.matrix_id, row, start, stop, init=info.init,
                        rng=rng, scale=info.scale,
                    )
                    reinitialized += 1
        for matrix_id in server.stored_matrix_ids():
            if matrix_id not in self._matrices:
                server.drop_matrix(matrix_id)
        if reinitialized:
            self.cluster.metrics.increment(
                "recovery-reinit-shards", reinitialized
            )
        return reinitialized

    @staticmethod
    def _assigned_rows(info):
        """The rows a matrix actually has: dense range, or the lazy
        registry in sorted (deterministic) order."""
        if info.lazy:
            return sorted(info.created_rows)
        return range(info.n_rows)

    def _matrices_assigned_to(self, server_index):
        """Ids of matrices with at least one row assigned to the server
        under the current layouts (an empty lazy table assigns nothing,
        so it can never force a checkpoint fallback)."""
        assigned = set()
        for info in self._matrices.values():
            for row in self._assigned_rows(info):
                if any(owner == server_index for owner, _start, _stop
                       in info.layout.shards_for_row(row)):
                    assigned.add(info.matrix_id)
                    break
        return assigned

    def recover(self, server_index):
        """Start a replacement server and rebuild the failed one's state.

        The replacement is a **new** :class:`PSServer` object (the paper's
        coordinator "starts a new server"): clients holding the pre-failure
        object must re-resolve through the master to reach it.  With chain
        replication on, the replacement's matrices are first promoted from
        the failed primary's ring successors — a per-row max-version merge
        that loses **nothing**, not even updates applied after the last
        checkpoint — and only matrices with no surviving valid holder
        (correlated failure of all M+1 processes) fall back to the
        checkpoint path.  That fallback rebuilds state the pre-chain way:
        load the latest checkpoint where one exists, re-initialize shards
        the snapshot does not cover from matrix metadata, and drop shards
        of matrices freed since the snapshot.
        """
        failed = self.servers[server_index]
        recover_start = self.cluster.clock.now(failed.node_id)
        # Epoch continuity: the replacement's version tokens must never
        # equal the failed process's — its state may have rolled back to a
        # checkpoint, and worker caches fence on the epoch to detect that.
        server = PSServer(self.cluster, failed.node_id, server_index,
                          epoch=failed.epoch + 1)
        server.revive()  # resets the CPU timeline to the node's current time
        self.servers[server_index] = server
        self.topology_epoch += 1
        promoted = {}
        checkpoint_time = None
        if self.chain is None:
            checkpoint_time = self.checkpoints.recover_server(server)
        else:
            promoted = self.chain.promote_into(server, server_index,
                                               failed.epoch)
            uncovered = sorted(
                matrix_id
                for matrix_id in self._matrices_assigned_to(server_index)
                if matrix_id not in promoted
            )
            if uncovered:
                # Correlated failure: every holder of these matrices died
                # too.  Restore just them from the checkpoint — promoted
                # matrices carry post-checkpoint updates and must not be
                # rolled back underneath their merged state.
                self.cluster.metrics.increment("chain-fallbacks")
                checkpoint_time = self.checkpoints.recover_server(
                    server, only_matrices=uncovered
                )
        reinitialized = self._reconcile(server)
        self.cluster.network.transfer(
            DRIVER, server.node_id, REQUEST_HEADER_BYTES, tag="ps-recover"
        )
        self.cluster.metrics.increment("server-recoveries")
        if self.chain is not None:
            # Re-establish the chains at the new epoch: successors of this
            # primary get fresh full copies (their old ones fenced out any
            # fan-out during the crash window), and copies it hosted for
            # other primaries died with its state.
            self.chain.on_server_recovered(server_index)
        if self.replication is not None:
            # Refresh the replica topology at the new epoch: replicas OF
            # this server's shards are stale (the primary may have rolled
            # back), and replicas it HOSTED died with its state.
            self.replication.on_server_recovered(server_index)
        tracer = self.cluster.tracer
        if tracer.enabled:
            tracer.record(
                server.node_id, "ps-recover", recover_start,
                self.cluster.clock.now(server.node_id), cat="op",
                server_index=server_index,
                from_checkpoint=checkpoint_time is not None,
                reinit_shards=reinitialized,
            )
        return server

    # -- elastic topology ---------------------------------------------------

    def add_server(self):
        """Grow the PS tier by one server (live shard migration)."""
        self.resize_servers(self.n_servers + 1)

    def remove_server(self):
        """Shrink the PS tier by one server (its shards migrate off)."""
        self.resize_servers(self.n_servers - 1)

    def resize_servers(self, new_count):
        """Resize the PS tier to *new_count* servers with live migration.

        Growth appends fresh server processes (their node clocks start at
        the current global time); shrink removes the highest-indexed
        servers — only after every shard they own has migrated off, so
        indices stay dense and routing stays a pure function of the
        layout.  Either way :meth:`_migrate` re-partitions every matrix
        under a same-shape layout at the new server count, then
        :meth:`_after_resize` invalidates everything derived from the old
        shard map (routing caches, pooled plans, worker caches, stale
        checkpoints, the hot-shard heat ledger).
        """
        new_count = int(new_count)
        old_count = self.n_servers
        if new_count == old_count:
            return
        if new_count < 1:
            raise PSError(
                "cannot resize the PS tier below one server (got %d)"
                % new_count
            )
        # Chains are torn down *before* the migration sweep (while every
        # pre-resize holder is addressable): every copy was installed
        # against the old shard map, and a crash mid-migration must take
        # the checkpoint path rather than promote stale-layout state.
        # :meth:`_after_resize` re-forms them over the new stores.
        if self.chain is not None:
            self.chain.on_topology_resized()
        if new_count > old_count:
            for _ in range(new_count - old_count):
                node_id = self.cluster.add_server_node()
                server = PSServer(self.cluster, node_id, len(self.servers))
                server.revive()
                self.servers.append(server)
            self._migrate(new_count)
        else:
            self._drain_departing(new_count, old_count)
            self._migrate(new_count)
            # Replicas were installed against the pre-resize topology and
            # may live on (or point at) departing indices: demote them all
            # while every server object is still addressable.
            if self.replication is not None:
                self.replication.on_topology_resized()
            for _ in range(old_count - new_count):
                self.servers.pop()
                self.cluster.remove_server_node()
        if new_count > old_count and self.replication is not None:
            self.replication.on_topology_resized()
        self._after_resize(old_count, new_count)

    def _drain_departing(self, new_count, old_count):
        """Charge departing servers' in-flight drain before they hand off.

        Shard-migrate bytes were always priced, but a departing server
        with queued work used to stream its shards away as if the queue
        were empty — the migration departed *before* the requests it
        logically follows.  Pin each departing server's clock to its drain
        horizon (CPU completion watermark and both NIC timeline horizons)
        so the migration transfers it sources leave only after its backlog
        drains, and record the drained seconds.
        """
        clock = self.cluster.clock
        network = self.cluster.network
        drained = 0.0
        for index in range(new_count, old_count):
            server = self.servers[index]
            send_horizon, recv_horizon = network.nic_horizon(server.node_id)
            horizon = max(server.last_completion, send_horizon, recv_horizon)
            now = clock.now(server.node_id)
            if horizon > now:
                clock.set_at_least(server.node_id, horizon)
                drained += horizon - now
        if drained > 0.0:
            self.cluster.metrics.increment("elastic-drains")
            self.cluster.metrics.observe("elastic-drain", drained)

    def _remapped_layout(self, layout, new_n):
        """The same-shape layout at *new_n* servers.

        Column layouts keep their rotation and block, so pool-mates (which
        share a rotation) remain co-located after the resize; row layouts
        stay row layouts.
        """
        if isinstance(layout, RowLayout):
            return RowLayout(layout.dim, new_n)
        return ColumnLayout(layout.dim, new_n, rotation=layout.rotation,
                            block=layout.block)

    def _live_source(self, server_index):
        """The current server at *server_index*, recovered if a scheduled
        crash fired — a migration must survive mid-flight failures (the
        recovered process restores its checkpoint and re-initializes the
        rest against the still-current old layout, then migration
        continues from that state)."""
        server = self.servers[server_index]
        if not server.is_alive():
            server = self.recover(server_index)
        return server

    def _migrate(self, new_n):
        """Re-partition every matrix onto *new_n* servers, live.

        For each matrix the new shard map is computed first, every new
        shard's values are assembled from the overlapping old shards
        (reading through :meth:`_live_source`, so a server dying mid-sweep
        is recovered and the copy continues), and only then is the old
        shard map dropped and the new one installed — a reader can never
        observe a half-moved matrix because the swap is per-matrix atomic
        in virtual time (the simulator interleaves nothing inside it).
        Per-row version counters travel with the data (the max over
        contributing old shards), so worker-cache tokens can never
        *regress* across a migration.  Slices that change owner are
        charged to the NIC model under ``shard-migrate``, coalesced into
        one stream per (source, target) pair; the shard-heat ledger
        entries of (matrix, server) keys that lost their assignment are
        retired (no ghost heat).
        """
        transfers = {}
        moved_slices = 0
        old_keys = set()
        new_keys = set()
        for info in self._matrices.values():
            old_layout = info.layout
            new_layout = self._remapped_layout(old_layout, new_n)
            for server_index in range(old_layout.n_servers):
                old_keys.add((info.matrix_id, server_index))
            for server_index in range(new_n):
                new_keys.add((info.matrix_id, server_index))
            new_store = {}
            new_versions = {}
            for row in self._assigned_rows(info):
                old_shards = old_layout.shards_for_row(row)
                for new_server, nstart, nstop in new_layout.shards_for_row(row):
                    values = np.zeros(nstop - nstart)
                    version = 0
                    for old_server, ostart, ostop in old_shards:
                        lo = max(nstart, ostart)
                        hi = min(nstop, ostop)
                        if lo >= hi:
                            continue
                        source = self._live_source(old_server)
                        rows_held = source._store.get(info.matrix_id)
                        shard = None if rows_held is None \
                            else rows_held.get(row)
                        if shard is None:
                            # A drifted store (e.g. a crash recovered
                            # against stale metadata) heals in place.
                            self._reconcile(source)
                            shard = source._store[info.matrix_id][row]
                        values[lo - nstart:hi - nstart] = \
                            shard.values[lo - ostart:hi - ostart]
                        version = max(
                            version,
                            source.versions.get((info.matrix_id, row), 0),
                        )
                        if old_server != new_server:
                            pair = (source.node_id,
                                    self.servers[new_server].node_id)
                            transfers[pair] = (
                                transfers.get(pair, 0)
                                + (hi - lo) * FLOAT_BYTES + 2 * INDEX_BYTES
                            )
                            moved_slices += 1
                    new_store.setdefault(new_server, {})[row] = RowShard(
                        nstart, nstop, values
                    )
                    if version:
                        new_versions.setdefault(new_server, {})[
                            (info.matrix_id, row)
                        ] = version
            for server in self.servers:
                server._store.pop(info.matrix_id, None)
            for server_index, rows in new_store.items():
                target = self.servers[server_index]
                target._store[info.matrix_id] = rows
                for key, counter in new_versions.get(server_index, {}).items():
                    if counter > target.versions.get(key, 0):
                        target.versions[key] = counter
            info.layout = new_layout
        for (src, dst), nbytes in sorted(transfers.items()):
            self.cluster.network.transfer(
                src, dst, REQUEST_HEADER_BYTES + nbytes, tag="shard-migrate"
            )
        retired = sorted(old_keys - new_keys)
        if retired:
            self.cluster.metrics.retire_shards(retired)
        if moved_slices:
            self.cluster.metrics.increment("migrated-shard-slices",
                                           moved_slices)

    def _after_resize(self, old_count, new_count):
        """Invalidate every artifact derived from the old shard map."""
        self.topology_epoch += 1
        self.fanout_group_plans.clear()
        if self.costmodel is not None:
            self.costmodel.on_topology_resized()
        if self.chain is not None:
            # Chains re-form over the post-migration stores (the teardown
            # ran before the sweep), charging honest chain-sync streams.
            self.chain.reform()
        # Pre-resize snapshots hold pre-migration shard ranges; restoring
        # one would corrupt widths (reconcile only fills *missing* shards).
        # Drop them, and — when checkpointing was in play — take a fresh
        # sweep so the protection level survives the resize.
        if self.checkpoints.invalidate():
            self.checkpoint_all()
        for server in self.servers:
            self.cluster.network.transfer(
                DRIVER, server.node_id, REQUEST_HEADER_BYTES, tag="ps-resize"
            )
        self.cluster.metrics.increment("elastic-resizes")
        self.cluster.metrics.observe("elastic-server-count", new_count)
        self.cluster.notify_topology_change()

    def repair(self, server_index):
        """Heal a server whose shard set drifted from the metadata.

        The client's retry path calls this on ``MatrixNotFoundError``: a
        dead server gets the full :meth:`recover` treatment; a live one only
        has its missing shards re-allocated (its live updates are kept).
        """
        server = self.servers[server_index]
        if not server.is_alive():
            return self.recover(server_index)
        self._reconcile(server)
        if self.chain is not None:
            # Repaired shards were written outside the fan-out path; the
            # chain copies must follow.
            self.chain.resync_primary(server_index)
        self.cluster.metrics.increment("server-repairs")
        return server
