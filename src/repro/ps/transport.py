"""The client-side RPC transport: routing, transfer, dispatch, retry.

This module is the explicit wire between a :class:`~repro.ps.client.PSClient`
and the servers.  The client's job ends at *building* typed
:mod:`~repro.ps.messages` values and grouping them by destination; the
transport owns everything below that line:

- **routing resolution** — the per-matrix layout cache, the routing RPC to
  the coordinator on a cold (or invalidated) entry, and the re-resolution a
  retry performs after a recovery;
- **network transfer** — one NIC booking per outgoing message, request bytes
  charged from the message's own ``wire_bytes()``;
- **server dispatch** — each attempt resolves the *current*
  :class:`~repro.ps.server.PSServer` object through the master and invokes
  ``server.dispatch(message)``; no closures over server objects exist
  anywhere, so a retry can never replay work pinned to a pre-failure
  process;
- **response accounting** — replies depart at the request's service
  completion and are priced by the message's ``response_bytes()``;
- **the retry loop** — failed attempts charge the
  :class:`~repro.ps.retry.RetryPolicy` penalty to the client's virtual
  clock, repair/recover the server through the master, drop the cached
  routing, and then **re-send the same message** through the network model.

Per-server request coalescing (Section 5.1's fat requests): when one client
op produces several messages for the same server — block pulls/pushes issue
one message per (row, shard) — :meth:`Transport.send_all` wraps each
server's group in a single :class:`~repro.ps.messages.BatchRequest`
envelope: one request header, one NIC booking, shared index lists encoded
once.  The ``coalesce_requests`` config knob (default on) disables this for
A/B measurements of the header-amortization win.
"""

from __future__ import annotations

from repro.common.errors import MatrixNotFoundError, NetworkPartitionedError, \
    PSError, ServerDownError
from repro.ps import messages
from repro.ps.retry import RetryPolicy
from repro.ps.server import serve_fast_fanout

#: Failures a message attempt can hit that are retryable under the policy.
RETRYABLE_ERRORS = (ServerDownError, MatrixNotFoundError,
                    NetworkPartitionedError)

#: Client-side CPU cost of issuing one RPC (serialization, bookkeeping).
RPC_CPU_SECONDS = 5e-6

#: Memoized ``tag -> (tag + ":req", tag + ":resp")`` — tags come from a
#: small fixed vocabulary, so the hot transmit loops never re-concatenate.
_TAG_PAIRS = {}


def _tag_pair(tag):
    pair = _TAG_PAIRS.get(tag)
    if pair is None:
        pair = _TAG_PAIRS[tag] = (tag + ":req", tag + ":resp")
    return pair


class Transport:
    """One node's typed-message channel to the parameter servers."""

    def __init__(self, cluster, master, node_id, retry_policy=None):
        self.cluster = cluster
        self.master = master
        self.node_id = node_id
        self.retry_policy = retry_policy or RetryPolicy.from_config(
            cluster.config.failures
        )
        self.coalesce = bool(
            getattr(cluster.config, "coalesce_requests", True)
        )
        self._routing = {}
        # A live resize replaces every layout object wholesale; routing
        # cached before the migration would hand out stale shard ranges.
        cluster.topology_change_hooks.append(self.invalidate)

    # -- routing -----------------------------------------------------------

    def layout(self, matrix_id):
        """Resolve a matrix's layout, fetching the routing table once.

        Section 5.1: the PS-master "provides some meta information,
        including the locations and routing tables for PS-client to locate
        parameters."  The first touch of each matrix costs one RPC to the
        coordinator; afterwards the transport routes from its cache — until
        :meth:`invalidate` drops the entry (server recovery), at which
        point the next touch pays the routing RPC again.
        """
        layout = self._routing.get(matrix_id)
        if layout is None:
            layout = self.master.layout(matrix_id)
            from repro.cluster.cluster import DRIVER

            if self.node_id != DRIVER:
                clock = self.cluster.clock
                network = self.cluster.network
                fetch_start = clock.now(self.node_id)
                arrival = network.transfer(
                    self.node_id, DRIVER, messages.REQUEST_HEADER_BYTES,
                    tag="routing:req", deliver=False,
                )
                # The master answers from its metadata cache; the response
                # departs when THIS request was served, not when the
                # driver's (unrelated) clock says.
                response = network.transfer(
                    DRIVER, self.node_id,
                    messages.routing_response_bytes(layout.n_servers),
                    tag="routing:resp", deliver=False,
                    depart_at=arrival + RPC_CPU_SECONDS,
                )
                clock.set_at_least(self.node_id, response)
                self.cluster.metrics.observe(
                    "routing", clock.now(self.node_id) - fetch_start
                )
                tracer = self.cluster.tracer
                if tracer.enabled:
                    tracer.record(self.node_id, "routing", fetch_start,
                                  response, cat="op", matrix_id=matrix_id)
            self._routing[matrix_id] = layout
        return layout

    def invalidate(self, matrix_id=None):
        """Drop cached routing for *matrix_id* (or for every matrix).

        Called on the server-recovery retry path so a retried message
        re-resolves routing through the master instead of trusting a table
        that predates the failure; the next :meth:`layout` call pays the
        routing RPC again.
        """
        if matrix_id is None:
            self._routing.clear()
        else:
            self._routing.pop(matrix_id, None)

    # -- sending -----------------------------------------------------------

    def send(self, request):
        """Ship one message; returns ``(value, response_arrival)``.

        ``response_arrival`` is ``None`` for fire-and-forget messages; the
        caller decides when to block on arrivals.
        """
        costmodel = getattr(self.cluster, "costmodel", None)
        if costmodel is not None:
            costmodel.prepare(request, self.node_id)
        self._route(request)
        self._charge_rpc(1)
        result = self._transmit(request)
        self._send_fanout(self._fan_out([request]))
        return result

    def send_all(self, requests, pooled=False):
        """Ship a message list; returns ``(values, arrivals)`` aligned.

        With a replication manager configured, each read is first offered
        to :meth:`~repro.ps.replication.HotKeyManager.route_read`, which
        may retarget it at the nearest-by-queue replica (responses stay
        positional, so callers are oblivious).  Messages are then grouped
        by destination server (first-appearance order).  With coalescing
        on, each group of two or more becomes one
        :class:`~repro.ps.messages.BatchRequest` envelope — one header and
        one NIC booking per server; singleton groups always go standalone,
        so ops that already issue one message per server are byte-for-byte
        unaffected by the knob.  Client-side RPC CPU is charged once per
        outgoing transfer, before anything touches the wire.  After every
        original was transmitted (mutations applied to their primaries),
        replica fan-out messages are built from the post-apply version
        counters and shipped the same way.

        ``pooled=True`` marks *requests* as a client plan-pool list whose
        composition never changes between calls: the grouping (and any
        batch envelopes) is then memoized master-wide keyed on the list's
        identity, skipping the group/coalesce rebuild on every op.  With a
        replication manager the memo is bypassed — ``route_read`` may
        retarget ``server_index`` in place, invalidating any cached
        grouping — but the requests themselves may still come from the
        client plan pool: any retarget left over from a previous call is
        undone below before re-offering, so a pooled read routes exactly
        like a freshly built one.
        """
        costmodel = getattr(self.cluster, "costmodel", None)
        if costmodel is not None:
            # Codec selection runs before routing so decisions key on the
            # primary server_index and the sender's NIC backlog.
            for request in requests:
                costmodel.prepare(request, self.node_id)
        manager = getattr(self.cluster, "replication", None)
        chain = getattr(self.cluster, "chain", None)
        outgoing = None
        bulk_cache = None
        if manager is not None or chain is not None:
            for request in requests:
                if request.replica_of is not None:
                    # A pooled request retargeted on an earlier call:
                    # restore the primary before routing afresh.
                    request.server_index = request.replica_of
                    request.replica_of = None
                if manager is not None:
                    manager.route_read(request)
                if chain is not None and request.replica_of is None:
                    chain.route_read(request)
        elif pooled:
            plans = self.master.fanout_group_plans
            key = (id(requests), self.coalesce)
            entry = plans.get(key)
            if entry is not None and entry[0] is requests:
                outgoing = entry[1]
                bulk_cache = entry[2]
        if outgoing is None:
            groups = {}
            for position, request in enumerate(requests):
                groups.setdefault(request.server_index, []).append(position)
            outgoing = []
            for server_index, positions in groups.items():
                if self.coalesce and len(positions) > 1:
                    batch = messages.BatchRequest(
                        [requests[p] for p in positions]
                    )
                    outgoing.append((batch, positions))
                else:
                    for p in positions:
                        outgoing.append((requests[p], [p]))
            if pooled and manager is None and chain is None:
                plans = self.master.fanout_group_plans
                if len(plans) >= 64:
                    plans.clear()
                # The third slot caches the bulk path's phase-1 product
                # (see _transmit_bulk); one mutable cell per plan.
                bulk_cache = [None]
                plans[(id(requests), self.coalesce)] = (
                    requests, outgoing, bulk_cache
                )
        self._charge_rpc(len(outgoing))
        values = [None] * len(requests)
        arrivals = [None] * len(requests)
        if len(outgoing) > 1 and self._bulk_ok(outgoing):
            self._transmit_bulk(outgoing, values, arrivals, bulk_cache)
        else:
            for message, positions in outgoing:
                value, arrival = self._transmit(message)
                if isinstance(message, messages.BatchRequest):
                    metrics = self.cluster.metrics
                    metrics.increment("coalesced-batches")
                    metrics.increment("coalesced-requests", len(positions))
                    for p, sub_value in zip(positions, value):
                        values[p] = sub_value
                        arrivals[p] = arrival
                else:
                    values[positions[0]] = value
                    arrivals[positions[0]] = arrival
        self._send_fanout(self._fan_out(requests))
        return values, arrivals

    # -- replication hooks -------------------------------------------------

    def _route(self, request):
        """Offer one read to the replica routers (hot-key, then chain).

        The chain router only retargets reads whose primary is down, and
        only when the hot-key router left the request on its primary —
        a request already rerouted to a live hot replica needs no
        stand-in.
        """
        manager = getattr(self.cluster, "replication", None)
        chain = getattr(self.cluster, "chain", None)
        if manager is None and chain is None:
            return request
        if request.replica_of is not None:
            request.server_index = request.replica_of
            request.replica_of = None
        if manager is not None:
            manager.route_read(request)
        if chain is not None and request.replica_of is None:
            chain.route_read(request)
        return request

    def _fan_out(self, requests):
        """Replica fan-out messages for the mutations in *requests*.

        Hot-key fan-outs are built first; the chain replicator then skips
        ``(holder, original)`` pairs already covered, so a server holding
        a key both as hot replica and chain successor gets one copy.
        """
        manager = getattr(self.cluster, "replication", None)
        chain = getattr(self.cluster, "chain", None)
        extras = [] if manager is None else manager.fan_out_messages(requests)
        if chain is not None:
            covered = {
                (message.server_index, id(message.inner))
                for message in extras
            }
            extras = extras + chain.fan_out_messages(requests, covered)
        return extras

    def _send_fanout(self, extras):
        """Ship replica fan-out messages (all fire-and-forget).

        Grouped and coalesced per destination like :meth:`send_all`, but
        never re-offered to routing or fan-out — induced traffic does not
        recurse.
        """
        if not extras:
            return
        groups = {}
        for message in extras:
            groups.setdefault(message.server_index, []).append(message)
        outgoing = []
        for server_index, group in groups.items():
            if self.coalesce and len(group) > 1:
                outgoing.append(messages.BatchRequest(group))
            else:
                outgoing.extend(group)
        self._charge_rpc(len(outgoing))
        for message in outgoing:
            self._transmit(message)

    # -- the bulk fast path --------------------------------------------------

    def _bulk_ok(self, outgoing):
        """Whether this fan-out may take the bulk transmit path.

        The bulk path is bit-identical to per-message :meth:`_transmit`
        only when nothing can interleave with the phase-reordered bookings:
        no span tracing (spans must nest per message), no partition windows
        or pending server crashes (retries re-send individual messages), no
        replication manager (replica reads/fan-out have their own dispatch
        semantics), and no cold routing entry (a mid-loop routing RPC books
        the client NIC between message sends).  Every condition is a cheap
        flag check; chaos and traced runs simply keep the per-message path.
        """
        cluster = self.cluster
        if cluster.tracer.enabled:
            return False
        failures = cluster.failures
        if failures.has_partitions() or failures.has_pending_server_failures():
            return False
        if getattr(cluster, "replication", None) is not None:
            return False
        # The chain replicator fans every mutation out and may retarget
        # reads of a dead primary; both need per-message dispatch.
        if getattr(cluster, "chain", None) is not None:
            return False
        # The bulk path reads the _wb/_rb memo slots directly; a cost model
        # may attach codecs that re-price messages, so it keeps the
        # per-message path.
        if getattr(cluster, "costmodel", None) is not None:
            return False
        routing = self._routing
        server = self.master.server
        for message, _positions in outgoing:
            if message.matrix_id is not None \
                    and message.matrix_id not in routing:
                return False
            # A directly-crashed server (chaos tooling calls ``crash()``
            # without a schedule) must fail per message so the retry loop
            # can recover it.
            if not server(message.server_index).alive:
                return False
        return True

    def _batch_shard_entries(self, message):
        """Shard-telemetry entries for one batch envelope.

        Mirrors the batch arm of :meth:`_record_shard_access` but returns
        ``(matrix_id, heat_server, n_values, nbytes)`` entries for
        :meth:`~repro.cluster.metrics.MetricsRegistry.record_shard_access_many`
        instead of recording — the bulk path folds them into its per-fan-out
        entry list (and its pooled plan).  Per-key accumulation is
        order-insensitive for these integer-valued quantities, so the fold
        is bit-identical to recording the batch inline.
        """
        first_key = None
        n_values = 0
        nbytes = 0.0
        by_shard = None
        for request in message.requests:
            if request.matrix_id is None:
                continue
            heat_server = (request.replica_of
                           if request.replica_of is not None
                           else request.server_index)
            key = (request.matrix_id, heat_server)
            sub_bytes = (request.wire_bytes()
                         + (request.response_bytes() or 0))
            if by_shard is None:
                if first_key is None or key == first_key:
                    first_key = key
                    n_values += request.n_values
                    nbytes += sub_bytes
                    continue
                by_shard = {first_key: (n_values, nbytes)}
            prev_values, prev_bytes = by_shard.get(key, (0, 0.0))
            by_shard[key] = (prev_values + request.n_values,
                             prev_bytes + sub_bytes)
        if by_shard is not None:
            return [
                (matrix_id, heat_server, n_values, nbytes)
                for (matrix_id, heat_server), (n_values, nbytes)
                in by_shard.items()
            ]
        if first_key is not None:
            return [(first_key[0], first_key[1], n_values, nbytes)]
        return []

    def _transmit_bulk(self, outgoing, values, arrivals, bulk_cache=None):
        """Transmit a whole fan-out in three phases instead of N round trips.

        Phase 1 books every request transfer through one
        :meth:`~repro.cluster.network.NetworkModel.transfer_many` call,
        phase 2 runs every server dispatch (capturing each server's
        completion immediately, as the per-message path would see it), and
        phase 3 books every response through one ``transfer_gather``.  The
        per-direction NIC timelines are disjoint across phases and
        order-insensitive within them, so virtual times, bytes and counters
        are bit-identical to the interleaved per-message path — only the
        Python call count drops.  Callers must have checked
        :meth:`_bulk_ok`.

        *bulk_cache*, when given, is the one-element cache cell of a pooled
        send plan (see :meth:`send_all`): the entire phase-1 product —
        resolved servers, wire sizes, NIC fan-out items, shard-telemetry
        entries — depends only on the (pooled, composition-stable) message
        list and the server topology, so it is computed once and replayed,
        guarded by :attr:`~repro.ps.master.PSMaster.topology_epoch` (a
        failover swaps server objects and must force a rebuild).
        """
        cluster = self.cluster
        network = cluster.network
        metrics = cluster.metrics
        node_id = self.node_id
        BatchRequest = messages.BatchRequest
        epoch = self.master.topology_epoch

        plan = None
        if bulk_cache is not None:
            plan = bulk_cache[0]
            if plan is not None and plan[0] != epoch:
                plan = None
        if plan is not None:
            (_, servers, response_sizes, fan_items, shard_entries, msgs,
             counts, resp_tags) = plan
        else:
            master_servers = self.master.servers
            tag_pair = _tag_pair
            servers = []
            response_sizes = []
            fan_items = []
            shard_entries = []
            msgs = []
            counts = []
            resp_tags = []
            servers_append = servers.append
            for message, _positions in outgoing:
                # Size memos read at the call site: wire formulas run once
                # per pooled message, later sends pay one slot load.
                request_bytes = message._wb
                if not request_bytes:
                    request_bytes = message.wire_bytes()
                    message._wb = request_bytes
                response_bytes = message._rb
                if response_bytes == 0:
                    response_bytes = message.response_bytes()
                    message._rb = response_bytes
                if type(message) is BatchRequest:
                    shard_entries.extend(self._batch_shard_entries(message))
                    count = len(message.requests)
                else:
                    count = 1
                    if message.matrix_id is not None:
                        heat_server = (message.replica_of
                                       if message.replica_of is not None
                                       else message.server_index)
                        shard_entries.append((
                            message.matrix_id, heat_server, message.n_values,
                            request_bytes + (response_bytes or 0),
                        ))
                server = master_servers[message.server_index]
                servers_append(server)
                response_sizes.append(response_bytes)
                tag_req, tag_resp = tag_pair(message.tag)
                fan_items.append(
                    (server.node_id, request_bytes, tag_req, count)
                )
                msgs.append(message)
                counts.append(count)
                resp_tags.append(tag_resp)
            if bulk_cache is not None:
                bulk_cache[0] = (
                    epoch, servers, response_sizes, fan_items, shard_entries,
                    msgs, counts, resp_tags,
                )
        if shard_entries:
            metrics.record_shard_access_many(shard_entries)
        request_arrivals = network.transfer_many(node_id, fan_items)

        entry_values, completions = serve_fast_fanout(
            cluster, servers, msgs, request_arrivals
        )

        response_items = []
        response_slots = []
        for i, (message, positions) in enumerate(outgoing):
            value = entry_values[i]
            if type(message) is BatchRequest:
                metrics.increment("coalesced-batches")
                metrics.increment("coalesced-requests", len(positions))
                for p, sub_value in zip(positions, value):
                    values[p] = sub_value
            else:
                values[positions[0]] = value
            response_bytes = response_sizes[i]
            if response_bytes is not None:
                response_items.append(
                    (servers[i].node_id, response_bytes, resp_tags[i],
                     counts[i], completions[i])
                )
                response_slots.append(positions)
        if response_items:
            recv_times = network.transfer_gather(node_id, response_items)
            for positions, response_arrival in zip(response_slots, recv_times):
                for p in positions:
                    arrivals[p] = response_arrival

    # -- plumbing ----------------------------------------------------------

    def _charge_rpc(self, n_transfers):
        """Charge the client CPU for serializing *n_transfers* requests."""
        if n_transfers:
            self.cluster.charge_seconds(
                self.node_id, RPC_CPU_SECONDS * n_transfers, tag="rpc-cpu"
            )

    def _record_shard_access(self, message, wire_bytes=None,
                             response_bytes=None):
        """Feed the hot-shard telemetry: one access per wire message.

        A batch records one access per distinct matrix it touches, with the
        summed value count — matching the pre-coalescing fat block request
        it replaces.  Byte volume (request + response) is attributed from
        the message's own wire formulas; a batch attributes each
        sub-request its *standalone-equivalent* bytes, so per-shard volume
        stays comparable across the coalescing knob.  A replica-routed
        read (``replica_of`` set) is charged to the *primary* shard key:
        rerouting must never drain the heat signal that justified the
        replica.

        ``wire_bytes`` / ``response_bytes`` let :meth:`_transmit` share the
        sizes it already computed for a *standalone* message (for batches
        the standalone-equivalent sub sizes differ from the envelope's, so
        the hints are ignored).
        """
        metrics = self.cluster.metrics
        if isinstance(message, messages.BatchRequest):
            # The common batch touches one (matrix, shard) key — a block op
            # fanned over rows of one matrix — so accumulate scalars and
            # only fall back to a dict for genuinely mixed batches.
            first_key = None
            n_values = 0
            nbytes = 0.0
            by_shard = None
            for request in message.requests:
                if request.matrix_id is None:
                    continue
                heat_server = (request.replica_of
                               if request.replica_of is not None
                               else request.server_index)
                key = (request.matrix_id, heat_server)
                sub_bytes = (request.wire_bytes()
                             + (request.response_bytes() or 0))
                if by_shard is None:
                    if first_key is None or key == first_key:
                        first_key = key
                        n_values += request.n_values
                        nbytes += sub_bytes
                        continue
                    by_shard = {first_key: (n_values, nbytes)}
                prev_values, prev_bytes = by_shard.get(key, (0, 0.0))
                by_shard[key] = (prev_values + request.n_values,
                                 prev_bytes + sub_bytes)
            if by_shard is not None:
                for (matrix_id, heat_server), (n_values, nbytes) in \
                        by_shard.items():
                    metrics.record_shard_access(
                        matrix_id, heat_server, n_values, nbytes=nbytes
                    )
            elif first_key is not None:
                metrics.record_shard_access(
                    first_key[0], first_key[1], n_values, nbytes=nbytes
                )
        elif message.matrix_id is not None:
            heat_server = (message.replica_of
                           if message.replica_of is not None
                           else message.server_index)
            if wire_bytes is None:
                wire_bytes = message.wire_bytes()
            if response_bytes is None:
                response_bytes = message.response_bytes()
            metrics.record_shard_access(
                message.matrix_id, heat_server, message.n_values,
                nbytes=wire_bytes + (response_bytes or 0),
            )

    def _handle_failure(self, exc, server_index, matrix_id, attempt):
        """Recover from one failed attempt; charges the retry penalty.

        The failure-detection timeout and the exponential backoff are
        charged to the client's *virtual* clock (a retried message takes
        longer in simulated time), then the failure is repaired: a down
        server is recovered by the master, a stale shard set is reconciled,
        and a partition is simply waited out.  Cached routing for the
        touched matrix is dropped either way, so the next attempt
        re-resolves through the master.
        """
        metrics = self.cluster.metrics
        metrics.increment("op-retries")
        penalty_start = self.cluster.clock.now(self.node_id)
        self.cluster.charge_seconds(
            self.node_id, self.retry_policy.penalty_for(attempt),
            tag="retry-backoff",
        )
        tracer = self.cluster.tracer
        if tracer.enabled:
            tracer.record(
                self.node_id, "retry-backoff", penalty_start,
                self.cluster.clock.now(self.node_id), cat="op",
                attempt=attempt, error=type(exc).__name__,
                server_index=server_index,
            )
        if isinstance(exc, ServerDownError):
            self.master.recover(server_index)
            metrics.increment("routing-invalidations")
        elif isinstance(exc, MatrixNotFoundError):
            self.master.repair(server_index)
            metrics.increment("routing-invalidations")
        # NetworkPartitionedError: nothing to repair — the backoff advances
        # the client clock toward the end of the partition window.
        if matrix_id is not None:
            self.invalidate(matrix_id)

    def _transmit(self, message):
        """One message on the wire, retried as a whole until served.

        Each attempt re-resolves the serving server through the master (a
        recovery replaces the object — a retry must never talk to the
        pre-failure process), transfers ``message.wire_bytes()``, queues on
        the server CPU (``server.begin(arrival)``) and runs
        ``server.dispatch(message)``.  A failure anywhere in that chain —
        including halfway through a batch — retries the *entire message*
        under the policy, re-sending its bytes through the network model.

        Returns ``(value, response_arrival)``; the arrival is ``None`` for
        fire-and-forget messages.
        """
        network = self.cluster.network
        request_bytes = message.wire_bytes()
        response_bytes = message.response_bytes()
        self._record_shard_access(message, request_bytes, response_bytes)
        tracer = self.cluster.tracer
        trace_parent = None
        if tracer.enabled:
            span = tracer.current(self.node_id)
            if span is not None:
                span.args["fanout"] = span.args.get("fanout", 0) + 1
                span.args["bytes"] = (
                    span.args.get("bytes", 0) + request_bytes
                    + (response_bytes or 0)
                )
                if message.message_count() > 1:
                    span.args["coalesced"] = (
                        span.args.get("coalesced", 0)
                        + message.message_count()
                    )
                # Stamp the causal context on the message: the server's CPU
                # slot and both NIC bookings will parent to the client op
                # that caused them.  wire_bytes() above was computed before
                # the stamp and never reads it — tracing is byte-free.
                trace_parent = span.span_id
                message.trace_ctx = (span.trace_id, span.span_id)
        attempt = 0
        while True:
            if message.matrix_id is not None:
                # Re-resolve routing (pays the routing RPC again after an
                # invalidation) before the attempt touches the wire.
                self.layout(message.matrix_id)
            server = self.master.server(message.server_index)
            try:
                arrival = network.transfer(
                    self.node_id, server.node_id, request_bytes,
                    tag=message.tag + ":req", deliver=False,
                    messages=message.message_count(),
                    trace_parent=trace_parent,
                )
                server.begin(arrival)
                value = server.dispatch(message)
                break
            except RETRYABLE_ERRORS as exc:
                attempt += 1
                if attempt > self.retry_policy.max_retries:
                    self.cluster.metrics.increment("op-retries-exhausted")
                    raise PSError(
                        "server %s kept failing after %d attempts: %r"
                        % (server.node_id, attempt, exc)
                    ) from exc
                self._handle_failure(
                    exc, message.server_index, message.matrix_id, attempt
                )
        if response_bytes is None:
            return value, None
        response_arrival = network.transfer(
            server.node_id, self.node_id, response_bytes,
            tag=message.tag + ":resp", deliver=False,
            depart_at=server.last_completion,
            messages=message.message_count(),
            trace_parent=trace_parent,
        )
        return value, response_arrival
