"""The unified communication cost model: compress-vs-replicate decisions.

PR 5 left an open question: hot-key replication and (now) wire codecs
both trade message count against byte volume, but each had — or would
have had — its own hand-set knob.  This module folds the three signals
the transport already maintains into one decision point:

- **message size** relative to the bandwidth-delay product: a payload
  whose serialization time dwarfs the per-message latency is
  byte-dominated and benefits from compression; a payload that fits in
  one latency quantum is latency-dominated and compression only adds
  quantization loss for nothing;
- **NIC-horizon backlog** from :meth:`NetworkModel.nic_horizon`: when
  the sender's NIC timeline runs ahead of its clock the node is
  queueing, and the model escalates one compression tier to drain it;
- **shard heat** from :meth:`Metrics.shard_heat`: persistently hot
  shards get the aggressive sparsifying codec on gradient pushes, and
  :meth:`replication_worthwhile` prices the *same* heat against
  migration bytes for :class:`HotKeyManager`'s promote sweeps — one
  model, both knobs.

The model runs **before routing** in ``Transport.send``/``send_all`` so
decisions key on the primary ``server_index`` and the *sender's* NIC,
and every eligible message produces exactly one recorded decision
(``Metrics.record_codec_decision``) — including "identity", which
attaches nothing and leaves the byte formulas bit-identical to a run
without a cost model.

Determinism: every input (virtual clocks, NIC horizons, heat counters,
the decision-count refresh cadence) is a deterministic function of the
seeded simulation, so identical runs make identical decisions.
"""

from __future__ import annotations

import numpy as np

from repro.common.sizeof import FLOAT_BYTES
from repro.ps.codecs import CODEC_NAMES, make_codec
from repro.ps.messages import PullRangeRequest, PullRowRequest, PushRequest

#: Size-regime thresholds, in units of the bandwidth-delay ratio
#: ``r = serialization_time / latency``.  Below ``FP16_RATIO`` a message
#: is latency-dominated and ships identity.
FP16_RATIO = 1.0
INT8_RATIO = 4.0
TOPK_RATIO = 8.0

#: A sender whose NIC horizon runs more than this many latencies ahead
#: of its clock is backlogged; the model escalates one tier.
BACKLOG_LATENCIES = 50.0

#: Decisions between lazy refreshes of the hot-shard set.
HEAT_REFRESH_DECISIONS = 256

#: Shard heat >= HOT_FACTOR x the matrix mean marks a shard hot.
HOT_FACTOR = 2.0


class CostModel:
    """Per-message codec selection plus the replication gate.

    One instance per cluster (constructed by :class:`PSMaster` when
    ``ClusterConfig.wire_codec != "off"``), holding one shared instance
    of every codec so stateful streams (top-k residuals, delta bases)
    persist across messages.

    ``mode`` is the config knob: ``"auto"`` picks a tier per message
    from the size/backlog/heat regime; a codec name forces that codec
    wherever its loss class is sound (top-k only on additive dense
    pushes, delta only on assign-mode dense pushes, quantizers
    anywhere) and identity elsewhere.
    """

    def __init__(self, cluster, config=None):
        config = config if config is not None else cluster.config
        self.cluster = cluster
        self.mode = getattr(config, "wire_codec", "auto")
        ratio = getattr(config, "codec_topk_ratio", 0.1)
        self.codecs = {
            name: make_codec(name, topk_ratio=ratio) for name in CODEC_NAMES
        }
        # The effective path bandwidth is the slower of the NIC and the
        # fabric; the latency floor keeps the ratio finite.
        self.bandwidth = min(config.network.bandwidth,
                             config.node.nic_bandwidth)
        self.latency = max(config.network.latency, 1e-12)
        self._decisions = 0
        self._hot_shards = frozenset()

    # ------------------------------------------------------------------
    # per-message codec selection

    def prepare(self, request, node_id):
        """Attach a codec to *request* if its regime warrants one.

        Called by the transport before routing.  Only float64 value
        payloads are eligible: pushes get their values encoded here
        (the client is the encoder), pulls get a response codec tag the
        server honors at serve time.  Ineligible messages (control
        traffic, aggregates, batches — whose sub-requests were prepared
        individually) pass through untouched.
        """
        kind = type(request)
        if kind is PushRequest:
            if request.value_bytes != FLOAT_BYTES \
                    or request.encoded is not None:
                return
            self._attach_push(
                request, self._choose_push(request, node_id), node_id)
        elif kind is PullRowRequest:
            if request.value_bytes != FLOAT_BYTES \
                    or request.codec is not None:
                return
            self._attach_pull(
                request,
                self._choose_pull(request, node_id, request.n_values),
                request.n_values,
            )
        elif kind is PullRangeRequest:
            if request.codec is not None:
                return
            n_values = request.stop - request.start
            self._attach_pull(
                request,
                self._choose_pull(request, node_id, n_values),
                n_values,
            )

    def _choose_push(self, request, node_id):
        """The codec for one push, or ``None`` for identity."""
        dense = request.indices is None
        if self.mode == "topk":
            # Sparsification drops coordinates; only additive payloads
            # recover the dropped mass through error feedback.
            if dense and request.mode == "add":
                return self.codecs["topk"]
            return None
        if self.mode == "delta":
            # Delta encodes state against the previous payload of the
            # stream — only assign-mode streams *are* state.
            if dense and request.mode == "assign":
                return self.codecs["delta"]
            return None
        if self.mode in ("fp16", "int8"):
            return self.codecs[self.mode]
        tier = self._tier(len(request.values) * FLOAT_BYTES, node_id)
        if dense and request.mode == "add" and tier >= 2 and (
                tier >= 3 or self._shard_hot(request)):
            return self.codecs["topk"]
        if tier >= 2:
            return self.codecs["int8"]
        if tier == 1:
            return self.codecs["fp16"]
        return None

    def _choose_pull(self, request, node_id, n_values):
        """The response codec for one pull, or ``None`` for identity.

        Responses must be priced from the request alone, so only
        fixed-rate stateless quantizers are eligible — never top-k or
        delta (their sizes depend on stream state the client doesn't
        have at pricing time).
        """
        if self.mode in ("fp16", "int8"):
            return self.codecs[self.mode]
        if self.mode in ("topk", "delta"):
            return None
        tier = self._tier(n_values * FLOAT_BYTES, node_id)
        if tier >= 2:
            return self.codecs["int8"]
        if tier == 1:
            return self.codecs["fp16"]
        return None

    def _tier(self, payload_bytes, node_id):
        """Map one payload onto a compression tier (0 = identity).

        ``r`` is the payload's serialization time in units of the
        per-message latency: the knee where a message stops being
        latency-dominated.  A backlogged sender NIC escalates one tier.
        """
        r = (payload_bytes / self.bandwidth) / self.latency
        if r >= TOPK_RATIO:
            tier = 3
        elif r >= INT8_RATIO:
            tier = 2
        elif r >= FP16_RATIO:
            tier = 1
        else:
            tier = 0
        if tier and tier < 3 and self._backlogged(node_id):
            tier += 1
        return tier

    def _backlogged(self, node_id):
        send_h, recv_h = self.cluster.network.nic_horizon(node_id)
        now = self.cluster.clock.now(node_id)
        return max(send_h, recv_h) - now > BACKLOG_LATENCIES * self.latency

    def _shard_hot(self, request):
        return (request.matrix_id, request.server_index) in self._hot_shards

    def on_topology_resized(self):
        """Drop the memoized hot-shard set after a shard migration.

        The heat ledger just retired the migrated-away keys; without this
        the stale frozenset could keep marking ghost shards hot for up to
        ``HEAT_REFRESH_DECISIONS`` more decisions.
        """
        self._hot_shards = frozenset()
        self._decisions = 0

    def priced_pull_response_bytes(self, node_id, n_values):
        """The wire bytes a dense pull response of *n_values* would cost
        under the model's current regime — header plus the codec-encoded
        payload, or the identity size when the regime says identity.

        Used to price cache-hit ``bytes_saved`` telemetry honestly: a hit
        avoids the response the model *would have compressed*, not the
        identity-rate upper bound.  Pricing only — no decision is
        recorded and no codec state advances.
        """
        from repro.ps.messages import RESPONSE_HEADER_BYTES

        codec = self._choose_pull(None, node_id, n_values)
        if codec is None:
            return RESPONSE_HEADER_BYTES + n_values * FLOAT_BYTES
        return RESPONSE_HEADER_BYTES + codec.encoded_bytes(n_values)

    def _refresh_hot_shards(self):
        """Recompute the hot-shard set from the unified heat counters."""
        heat = self.cluster.metrics.shard_heat()
        by_matrix = {}
        for (matrix_id, _server), value in heat.items():
            by_matrix.setdefault(matrix_id, []).append(value)
        hot = set()
        for key, value in heat.items():
            group = by_matrix[key[0]]
            if len(group) > 1 and \
                    value >= HOT_FACTOR * (sum(group) / len(group)):
                hot.add(key)
        self._hot_shards = frozenset(hot)

    def _attach_push(self, request, codec, node_id):
        n_values = len(request.values)
        if codec is None:
            self._record(request.tag, "identity", 0.0)
            return
        key = None
        if codec.stateful:
            # One stream per (client, matrix, row, primary shard): the
            # residual/base state must follow the exact sequence of
            # payloads one client sends one shard.
            key = (node_id, request.matrix_id, request.row,
                   request.server_index)
        encoded = codec.encode(
            np.asarray(request.values, dtype=float), key=key)
        request.codec = codec
        request.encoded = encoded
        request._enc_nbytes = encoded.nbytes
        request._wb = 0  # invalidate the memoized wire size
        self._record(request.tag, codec.name,
                     n_values * FLOAT_BYTES - encoded.nbytes)

    def _attach_pull(self, request, codec, n_values):
        if codec is None:
            self._record(request.tag, "identity", 0.0)
            return
        request.codec = codec
        request._rb = 0  # invalidate the memoized response size
        self._record(request.tag, codec.name,
                     n_values * FLOAT_BYTES - codec.encoded_bytes(n_values))

    def _record(self, tag, codec_name, bytes_saved):
        if self._decisions % HEAT_REFRESH_DECISIONS == 0:
            self._refresh_hot_shards()
        self._decisions += 1
        self.cluster.metrics.record_codec_decision(
            tag, codec_name, bytes_saved)

    # ------------------------------------------------------------------
    # the replication gate

    def replication_worthwhile(self, key, delta_heat, master):
        """Should the hot key *key* = ``(matrix_id, server_index)`` still
        replicate, given that codecs already shrink its traffic?

        Replication pays ``migrate_bytes`` up front to spread a shard's
        read volume over replicas; compression shrinks that same volume
        by ``factor`` for free.  The gate admits a promotion only when
        the heat observed this window, *deflated by the compression
        factor*, still exceeds the migration cost — the NuPS trade
        priced in the codec-aware regime.  Keys already replicated are
        not re-gated (churn is what the demote sweep is for).
        """
        matrix_id, server_index = key
        try:
            info = master.info(matrix_id)
        except Exception:
            return True
        width = 0
        for shard_server, start, stop in info.layout.shards_for_row(0):
            if shard_server == server_index:
                width = stop - start
                break
        migrate_bytes = info.n_rows * width * FLOAT_BYTES
        factor = self._read_compression_factor(max(width, 1))
        worthwhile = delta_heat / factor > migrate_bytes
        self.cluster.metrics.increment(
            "codec-replication-allowed" if worthwhile
            else "codec-replication-vetoed")
        return worthwhile

    def priced_chain_value_bytes(self, n_values):
        """The value-payload bytes one chain state stream of *n_values*
        floats costs under the model's read regime.

        Chain sync and promotion streams are bulk state reads, so they
        compress exactly like replication fan-out reads of the same width
        rather than shipping identity-rate floats — the "chain-sync bytes
        priced like replication fan-out" contract.  Pricing only: no
        decision is recorded and no codec state advances.
        """
        n_values = int(n_values)
        if n_values <= 0:
            return 0
        raw = n_values * FLOAT_BYTES
        return int(round(raw / self._read_compression_factor(n_values)))

    def _read_compression_factor(self, n_values):
        """The factor reads of an ``n_values``-wide shard shrink by."""
        if self.mode == "fp16":
            return 4.0
        if self.mode == "int8":
            return (n_values * FLOAT_BYTES) / float(n_values + FLOAT_BYTES)
        if self.mode in ("topk", "delta"):
            return 1.0  # stateful codecs never encode responses
        r = (n_values * FLOAT_BYTES / self.bandwidth) / self.latency
        if r >= INT8_RATIO:
            return (n_values * FLOAT_BYTES) / float(n_values + FLOAT_BYTES)
        if r >= FP16_RATIO:
            return 4.0
        return 1.0
