"""Pluggable consistency models: BSP, SSP and ASP execution.

The paper evaluates strictly BSP because Spark's stage barrier forces it,
while noting (Sections 2 and 6) that the PS architecture itself supports
relaxed consistency.  This module makes the barrier a *policy*:

- **BSP** — the default and the paper's behaviour.  The sparklite
  scheduler keeps its stage barrier, deferred pushes commit after every
  task of the stage computed, and every hook here is an exact no-op, so a
  BSP run is bit-identical to a pre-consistency-layer run.
- **SSP(s)** — stale-synchronous parallel.  Each worker carries a logical
  clock (one tick per task).  A worker beginning clock ``c`` blocks until
  every *other* worker has completed clock ``c - s - 1``; the wait is
  charged to its virtual clock (observed under ``staleness-wait``).
  ``s = 0`` permits no cross-clock staleness; growing ``s`` approaches ASP.
- **ASP** — fully asynchronous: no gate at all.

Under SSP/ASP the scheduler drops the stage barrier (tasks of stage
``c + 1`` start from their own executor's clock, gated only by the model),
commits deferred pushes per task instead of per stage, and the PS-client
grows a :class:`~repro.ps.cache.WorkerCache` whose reuse window is
:meth:`ConsistencyModel.cache_bound` clocks.

Sequential-simulation note: stages are simulated to completion in order,
so when any worker begins clock ``c`` the completion *times* of every
worker's clock ``c - 1`` (and older) are already known — the SSP gate is
exactly computable.  A worker whose target clock has not been simulated
yet (only possible for workers that never ran, e.g. idle executors) simply
does not contribute to the gate.

Interaction with hot-key replication: the consistency machinery's fencing
tokens cover replicas *by construction*.  The per-row ``(epoch, counter)``
tokens workers validate are always the **primary's**; a replica is only
readable while its install epoch equals the primary's current epoch and
its row counters track the primary's fan-out stream (see
:mod:`repro.ps.replication`), so under BSP replica reads are value-equal
to primary reads, and under SSP/ASP a replica can never be staler than
the bound the primary tokens already enforce.
"""

from __future__ import annotations

from collections import defaultdict

from repro.common.errors import ConfigError


class ConsistencyModel:
    """Policy object consulted by the scheduler, task contexts and clients.

    ``barrier`` — whether the scheduler keeps the stage barrier (driver
    waits for every result, executors start stages from the driver's
    clock).  ``commit_at_barrier`` — whether deferred task effects (PS
    pushes) commit after the whole stage computed (BSP exactly-once
    semantics) or immediately after each task succeeds (async pipelining;
    still exactly-once, since commit happens after the retry decision).
    """

    name = "?"
    barrier = True
    commit_at_barrier = True

    def cache_bound(self):
        """Worker-cache reuse window in clocks, or ``None`` for no cache."""
        return None

    def clock_of(self, worker):
        """The worker's current logical clock (tasks completed)."""
        return 0

    def sync(self, cluster, worker):
        """Gate *worker* before it begins its next clock (may block)."""

    def advance(self, cluster, worker):
        """Mark *worker*'s current clock complete and tick it forward."""


class BSPModel(ConsistencyModel):
    """Bulk-synchronous parallel: the stage barrier *is* the gate.

    Every method is an exact no-op — no state, no clock or metrics
    traffic — so the default configuration stays bit-identical to the
    pre-consistency-layer simulator.
    """

    name = "bsp"
    barrier = True
    commit_at_barrier = True


class _ClockedModel(ConsistencyModel):
    """Shared logical-clock bookkeeping for the relaxed models."""

    barrier = False
    commit_at_barrier = False

    def __init__(self, staleness=0):
        self.staleness = int(staleness)
        self.clocks = defaultdict(int)
        #: ``(worker, clock) -> virtual completion time`` of that clock.
        self.completions = {}
        self.workers = set()

    def clock_of(self, worker):
        return self.clocks[worker]

    def advance(self, cluster, worker):
        clock = self.clocks[worker]
        self.workers.add(worker)
        self.completions[(worker, clock)] = cluster.clock.now(worker)
        self.clocks[worker] = clock + 1
        cluster.notify_clock_advance(worker, clock + 1)


class SSPModel(_ClockedModel):
    """Stale-synchronous parallel with staleness bound ``s``."""

    name = "ssp"

    def cache_bound(self):
        return self.staleness

    def sync(self, cluster, worker):
        self.workers.add(worker)
        target = self.clocks[worker] - self.staleness - 1
        if target < 0:
            return
        gate = 0.0
        for other in self.workers:
            if other == worker:
                continue
            done_at = self.completions.get((other, target))
            if done_at is not None:
                gate = max(gate, done_at)
        now = cluster.clock.now(worker)
        wait = gate - now
        if wait > 0:
            cluster.metrics.observe("staleness-wait", wait)
            cluster.metrics.increment("staleness-waits")
            tracer = cluster.tracer
            if tracer.enabled:
                tracer.record(worker, "staleness-wait", now, gate, cat="op",
                              clock=self.clocks[worker], target=target)
            cluster.clock.set_at_least(worker, gate)


class ASPModel(_ClockedModel):
    """Fully asynchronous: clocks tick (for the cache) but never gate."""

    name = "asp"

    def cache_bound(self):
        # ASP has no blocking bound; ``staleness`` (if set) sizes the
        # cache's reuse window, defaulting to one clock of reuse.
        return max(1, self.staleness)

    def sync(self, cluster, worker):
        self.workers.add(worker)


def make_consistency(config):
    """The model selected by ``config.consistency`` / ``config.staleness``."""
    name = getattr(config, "consistency", "bsp")
    staleness = int(getattr(config, "staleness", 0))
    if name == "bsp":
        return BSPModel()
    if name == "ssp":
        return SSPModel(staleness)
    if name == "asp":
        return ASPModel(staleness)
    raise ConfigError("unknown consistency model %r" % (name,))
