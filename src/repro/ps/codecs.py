"""Pluggable wire codecs for PS value payloads.

PS2's win over MLlib is fundamentally a communication win, and these
workloads are communication-bound long before they are compute-bound
(Dünner et al.), yet the wire model ships every parameter at full float64
width.  This module defines the codec layer the transport's cost model
(:mod:`repro.ps.costmodel`) attaches to individual messages: each codec
turns a 1-D float64 value payload into a smaller encoded payload with
**honest byte accounting** — ``Encoded.nbytes`` is what the wire formulas
charge, computed from the encoded representation itself, never from the
decision that produced it.

Loss classes
------------

Every codec declares its ``loss_class``, the contract tests pin down:

``lossless``
    ``decode(encode(x)) == x`` bit-for-bit.  :class:`IdentityCodec` (a
    straight copy) and :class:`DeltaCodec` (changed-entries encoding
    against per-stream state).

``quantized``
    Bounded elementwise error.  :class:`Fp16Codec` round-trips through
    IEEE half precision: for ``|x| <= 65504`` the error is at most
    ``max(2**-11 * |x|, 2**-24)`` (larger magnitudes clip).
    :class:`Int8Codec` quantizes with one scale per payload ("row" in the
    message layer: each push/pull shard slice is encoded independently):
    error is at most ``scale / 2`` with ``scale = max|x| / 127``.

``sparsified``
    :class:`TopKCodec` keeps only the ``ceil(ratio * n)``
    largest-magnitude entries per payload.  Unbounded per-message error,
    but with a *key* the codec keeps client-side error-feedback residuals
    (Stich et al.): dropped mass is added back into the next payload for
    the same stream, so ``decode(enc) + residual_after`` always equals
    ``values + residual_before`` exactly and convergence degrades
    gracefully instead of losing gradient mass.

Statefulness
------------

``topk`` (residuals) and ``delta`` (previous payload per stream) are
*stateful*: their encodings depend on the stream ``key`` the cost model
derives from ``(client node, matrix, row, server)``.  The decoder state
rides on the :class:`Encoded` value (the simulator shares one codec
instance cluster-wide), so encode/decode stay paired per stream.
Stateful codecs never encode pull *responses* — response sizes must be a
pure function of the request (priced before dispatch), which is exactly
the ``fixed_rate`` contract: ``encoded_bytes(n)`` equals the actual
encoded payload size for any length-``n`` input.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import PSError
from repro.common.sizeof import FLOAT_BYTES, INDEX_BYTES

#: Bytes of the float16 representation of one value.
FP16_BYTES = 2

#: Bytes of the int8 representation of one value.
INT8_BYTES = 1

#: Largest finite IEEE half-precision magnitude (values beyond it clip).
FP16_MAX = 65504.0


class Encoded:
    """One encoded payload: the representation plus its honest byte size.

    ``payload`` is codec-private; ``n_values`` is the decoded length;
    ``nbytes`` is the wire size of the encoded representation (what the
    message formulas charge); ``key`` is the stream key the payload was
    encoded under (``None`` for stateless codecs), so the decoder can
    address its per-stream state without a side channel.
    """

    __slots__ = ("payload", "n_values", "nbytes", "key")

    def __init__(self, payload, n_values, nbytes, key=None):
        self.payload = payload
        self.n_values = int(n_values)
        self.nbytes = int(nbytes)
        self.key = key


class Codec:
    """The codec interface: encode/decode over 1-D float64 payloads.

    ``fixed_rate`` declares that :meth:`encoded_bytes` is a pure function
    of the payload length equal to the actual encoded size — the property
    that lets a pull *response* be priced from the request alone.
    ``stateful`` declares per-stream encoder state (error-feedback
    residuals, delta bases); stateful codecs are push-only.
    """

    name = "?"
    loss_class = "?"
    fixed_rate = False
    stateful = False

    def encode(self, values, key=None):
        """Encode a 1-D float64 array into an :class:`Encoded` payload."""
        raise NotImplementedError

    def decode(self, encoded, key=None):
        """Decode back to a dense float64 array of ``encoded.n_values``."""
        raise NotImplementedError

    def encoded_bytes(self, n_values):
        """Encoded payload bytes for a length-``n_values`` input.

        Only meaningful for ``fixed_rate`` codecs; the contract (tested)
        is ``encode(x).nbytes == encoded_bytes(len(x))``.
        """
        raise NotImplementedError

    def __repr__(self):
        return "%s()" % (type(self).__name__,)


class IdentityCodec(Codec):
    """Bit-exact pass-through: full-width float64, zero loss."""

    name = "identity"
    loss_class = "lossless"
    fixed_rate = True

    def encode(self, values, key=None):
        values = np.asarray(values, dtype=float)
        return Encoded(values.copy(), values.size,
                       values.size * FLOAT_BYTES, key)

    def decode(self, encoded, key=None):
        return encoded.payload.copy()

    def encoded_bytes(self, n_values):
        return int(n_values) * FLOAT_BYTES


class Fp16Codec(Codec):
    """IEEE half-precision quantization (2 bytes/value).

    Error bound for ``|x| <= 65504``: round-to-nearest half keeps
    ``|decode(x) - x| <= max(2**-11 * |x|, 2**-24)`` (the relative bound
    in the normal range, the subnormal spacing near zero).  Magnitudes
    beyond the half range clip to ``+-65504``.
    """

    name = "fp16"
    loss_class = "quantized"
    fixed_rate = True

    def encode(self, values, key=None):
        values = np.asarray(values, dtype=float)
        clipped = np.clip(values, -FP16_MAX, FP16_MAX)
        return Encoded(clipped.astype(np.float16), values.size,
                       values.size * FP16_BYTES, key)

    def decode(self, encoded, key=None):
        return encoded.payload.astype(np.float64)

    def encoded_bytes(self, n_values):
        return int(n_values) * FP16_BYTES


class Int8Codec(Codec):
    """Scale-per-row int8 quantization (1 byte/value + one scale).

    Each payload (one message's shard slice — the "row" at the wire
    layer) is quantized against its own scale ``max|x| / 127``, so the
    elementwise error is at most ``scale / 2``.  An all-zero payload uses
    scale 1.0 and round-trips exactly.
    """

    name = "int8"
    loss_class = "quantized"
    fixed_rate = True

    def encode(self, values, key=None):
        values = np.asarray(values, dtype=float)
        peak = float(np.max(np.abs(values))) if values.size else 0.0
        scale = peak / 127.0 if peak > 0 else 1.0
        quantized = np.round(values / scale).astype(np.int8)
        return Encoded((quantized, scale), values.size,
                       values.size * INT8_BYTES + FLOAT_BYTES, key)

    def decode(self, encoded, key=None):
        quantized, scale = encoded.payload
        return quantized.astype(np.float64) * scale

    def encoded_bytes(self, n_values):
        return int(n_values) * INT8_BYTES + FLOAT_BYTES


class TopKCodec(Codec):
    """Top-k gradient sparsification with client-side error feedback.

    Keeps the ``k = max(1, ceil(ratio * n))`` largest-magnitude entries
    of ``values + residual(key)`` and zeroes the rest into the stream's
    residual, so no gradient mass is ever lost — only delayed.  The wire
    carries one (index, value) pair per kept entry plus a count.  Only
    meaningful for additive (``mode="add"``) dense pushes: an assign
    payload is state, not mass, and sparsifying it would drop
    coordinates permanently.
    """

    name = "topk"
    loss_class = "sparsified"
    fixed_rate = True
    stateful = True

    def __init__(self, ratio=0.1):
        if not 0.0 < ratio <= 1.0:
            raise PSError("topk ratio must be in (0, 1], got %r" % (ratio,))
        self.ratio = float(ratio)
        self._residuals = {}

    def k_for(self, n_values):
        """Entries kept for a length-``n_values`` payload."""
        n = int(n_values)
        if n <= 0:
            return 0
        return max(1, int(np.ceil(self.ratio * n)))

    def encode(self, values, key=None):
        values = np.asarray(values, dtype=float)
        residual = self._residuals.get(key) if key is not None else None
        if residual is not None and residual.size == values.size:
            error_fed = values + residual
        else:
            error_fed = values.astype(float, copy=True)
        k = self.k_for(error_fed.size)
        # Stable selection: argsort on (-|e|, index) is deterministic
        # across runs, unlike argpartition's unspecified tie order.
        order = np.argsort(-np.abs(error_fed), kind="stable")[:k]
        kept = np.sort(order)
        payload_values = error_fed[kept].copy()
        if key is not None:
            next_residual = error_fed.copy()
            next_residual[kept] = 0.0
            self._residuals[key] = next_residual
        return Encoded((kept.astype(np.int64), payload_values),
                       values.size, self.encoded_bytes(values.size), key)

    def decode(self, encoded, key=None):
        kept, payload_values = encoded.payload
        dense = np.zeros(encoded.n_values)
        dense[kept] = payload_values
        return dense

    def encoded_bytes(self, n_values):
        return (INDEX_BYTES
                + self.k_for(n_values) * (INDEX_BYTES + FLOAT_BYTES))

    def residual(self, key):
        """The stream's pending residual (zeros if none) — for tests."""
        residual = self._residuals.get(key)
        return None if residual is None else residual.copy()

    def __repr__(self):
        return "TopKCodec(ratio=%r)" % (self.ratio,)


class DeltaCodec(Codec):
    """Lossless changed-entries encoding against per-stream state.

    The first payload of a stream ships dense; every later payload ships
    only the entries that differ from the previous payload of the same
    stream, as (index, value) pairs plus a count.  Exact by construction
    — decode replays the changes onto the decoder's copy of the previous
    state.  Meaningful for assign-mode pushes of slowly-changing state
    (an embedding row where one update touches few coordinates); a
    stream of dense gradients degenerates to ~dense size, which the
    honest ``nbytes`` makes visible instead of hiding.
    """

    name = "delta"
    loss_class = "lossless"
    stateful = True

    def __init__(self):
        self._enc_state = {}
        self._dec_state = {}

    def encode(self, values, key=None):
        values = np.asarray(values, dtype=float)
        previous = self._enc_state.get(key) if key is not None else None
        if previous is None or previous.size != values.size:
            payload = ("full", values.copy())
            nbytes = values.size * FLOAT_BYTES
        else:
            changed = np.nonzero(values != previous)[0]
            payload = ("delta", changed, values[changed].copy())
            nbytes = INDEX_BYTES + changed.size * (INDEX_BYTES + FLOAT_BYTES)
        if key is not None:
            self._enc_state[key] = values.copy()
        return Encoded(payload, values.size, nbytes, key)

    def decode(self, encoded, key=None):
        if key is None:
            key = encoded.key
        kind = encoded.payload[0]
        if kind == "full":
            result = encoded.payload[1].copy()
        else:
            _kind, changed, changed_values = encoded.payload
            base = self._dec_state.get(key)
            if base is None or base.size != encoded.n_values:
                raise PSError(
                    "delta decode for stream %r has no base state" % (key,)
                )
            result = base.copy()
            result[changed] = changed_values
        if key is not None:
            self._dec_state[key] = result.copy()
        return result.copy()

    def encoded_bytes(self, n_values):
        raise PSError("delta is not fixed-rate: size depends on the stream")


#: Names accepted by :func:`make_codec` (and the ``wire_codec`` config
#: values besides ``off``/``auto``).
CODEC_NAMES = ("identity", "fp16", "int8", "topk", "delta")


def make_codec(name, topk_ratio=0.1):
    """Construct one codec instance by name."""
    if name == "identity":
        return IdentityCodec()
    if name == "fp16":
        return Fp16Codec()
    if name == "int8":
        return Int8Codec()
    if name == "topk":
        return TopKCodec(ratio=topk_ratio)
    if name == "delta":
        return DeltaCodec()
    raise PSError("unknown codec %r" % (name,))
