"""Parameter-server substrate: master, servers, clients, checkpoints."""

from repro.ps.checkpoint import CheckpointManager, STORAGE_BANDWIDTH
from repro.ps.client import PSClient
from repro.ps.master import MatrixInfo, PSMaster
from repro.ps.partitioner import ColumnLayout, RowLayout
from repro.ps.replication import HotKeyManager
from repro.ps.retry import MAX_SERVER_RETRIES, RetryPolicy
from repro.ps.server import PSServer, ReplicaEntry, RowShard

__all__ = [
    "CheckpointManager",
    "STORAGE_BANDWIDTH",
    "MAX_SERVER_RETRIES",
    "RetryPolicy",
    "PSClient",
    "MatrixInfo",
    "PSMaster",
    "ColumnLayout",
    "RowLayout",
    "HotKeyManager",
    "PSServer",
    "ReplicaEntry",
    "RowShard",
]
