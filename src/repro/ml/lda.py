"""Latent Dirichlet Allocation on PS2 via collapsed Gibbs sampling.

The word-topic count matrix (``n_topics x vocab``) lives on the parameter
servers as one DCV pool (column-partitioned over the vocabulary); the small
topic-totals vector is a separate DCV.  Per iteration every worker:

1. pulls the word-topic **block for its local vocabulary only** — the sparse
   communication PS2 credits for beating Petuum — with counts encoded as
   32-bit integers (the "message compression technique" of Section 6.3.3);
2. runs a collapsed Gibbs sweep over its tokens against local copies;
3. pushes the count deltas back (same sparse/compressed encoding).

``comm`` selects the communication discipline and is how the baselines
reuse this trainer:

- ``"ps2"``     — sparse block pulls/pushes, 4-byte values;
- ``"petuum"``  — dense pulls/pushes of the full vocabulary, 8-byte values;
- ``"glint"``   — dense, 8-byte, and pulls the model **twice** per sweep
  (the asynchronous refresh Glint performs mid-iteration).

Hyperparameters default to Table 4: alpha = 0.5, beta = 0.01.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import RngRegistry
from repro.ml.results import TrainResult

_COMM_MODES = {
    "ps2": {"sparse": True, "value_bytes": 4, "pulls_per_iter": 1},
    "petuum": {"sparse": False, "value_bytes": 8, "pulls_per_iter": 1},
    "glint": {"sparse": False, "value_bytes": 8, "pulls_per_iter": 2},
}


def gibbs_sweep(state, word_topic_block, topic_totals, vocab_size, alpha,
                beta, rng):
    """One collapsed Gibbs pass over a worker's local tokens.

    ``state`` holds per-partition arrays (docs, assignments, doc_topic);
    ``word_topic_block`` is the ``n_topics x n_local_words`` count block
    (mutated locally as a working copy) and ``topic_totals`` the global
    topic counts (also a working copy).  Returns ``(delta_block,
    delta_totals, loglik, n_tokens)`` where the deltas are what must be
    pushed back to the servers.
    """
    n_topics = word_topic_block.shape[0]
    delta_block = np.zeros_like(word_topic_block)
    delta_totals = np.zeros(n_topics)
    beta_sum = vocab_size * beta
    loglik = 0.0
    n_tokens = 0

    for doc_pos, (words, local_word_pos) in enumerate(
        zip(state["docs"], state["word_positions"])
    ):
        doc_topic = state["doc_topic"][doc_pos]
        assignments = state["assignments"][doc_pos]
        doc_len = words.size
        for token_pos in range(doc_len):
            w_pos = local_word_pos[token_pos]
            old_topic = assignments[token_pos]
            # Remove the token's current assignment.
            doc_topic[old_topic] -= 1
            word_topic_block[old_topic, w_pos] -= 1
            topic_totals[old_topic] -= 1
            delta_block[old_topic, w_pos] -= 1
            delta_totals[old_topic] -= 1

            word_counts = word_topic_block[:, w_pos]
            probs = (doc_topic + alpha) * (word_counts + beta) / (
                topic_totals + beta_sum
            )
            cumulative = np.cumsum(probs)
            total = cumulative[-1]
            new_topic = int(
                np.searchsorted(cumulative, rng.random() * total)
            )
            new_topic = min(new_topic, n_topics - 1)

            doc_topic[new_topic] += 1
            word_topic_block[new_topic, w_pos] += 1
            topic_totals[new_topic] += 1
            delta_block[new_topic, w_pos] += 1
            delta_totals[new_topic] += 1
            assignments[token_pos] = new_topic

            # Per-token predictive log-likelihood under the current state.
            theta_phi = total / (doc_len - 1 + n_topics * alpha)
            loglik += math.log(max(theta_phi, 1e-300))
            n_tokens += 1
    return delta_block, delta_totals, loglik, n_tokens


def train_lda(ctx, docs, vocab_size, n_topics=20, n_iterations=10, alpha=0.5,
              beta=0.01, seed=0, comm="ps2", system=None):
    """Train LDA on the simulated cluster; returns a :class:`TrainResult`.

    History records ``(virtual_seconds, -mean_token_loglik)`` per iteration
    (lower is better, as in Figure 12's convergence curves).  Extras hold
    the final word-topic matrix (pulled once at the end, charged).
    """
    if comm not in _COMM_MODES:
        raise ConfigError("comm must be one of %s" % sorted(_COMM_MODES))
    mode = _COMM_MODES[comm]
    if system is None:
        system = {"ps2": "PS2-LDA", "petuum": "Petuum-LDA",
                  "glint": "Glint-LDA"}[comm]

    word_topic = ctx.dense(vocab_size, rows=n_topics, name="word_topic",
                           allow_growth=False)
    topic_rows = list(range(n_topics))
    matrix_id = word_topic.matrix_id
    totals_dcv = ctx.dense(n_topics, name="topic_totals")

    docs_rdd = ctx.parallelize(list(enumerate(docs))).cache()
    state = {}

    # -- initialization: random topic assignments, counts pushed once --------
    def init_task(task_ctx, iterator):
        rng = RngRegistry(seed).get("lda-init-%d" % task_ctx.partition_id)
        local_docs = []
        for _doc_id, words in iterator:
            local_docs.append(np.asarray(words, dtype=np.int64))
        vocab = (
            np.unique(np.concatenate(local_docs))
            if local_docs else np.empty(0, dtype=np.int64)
        )
        word_positions = [np.searchsorted(vocab, words) for words in local_docs]
        doc_topic = np.zeros((len(local_docs), n_topics), dtype=np.int64)
        assignments = []
        delta_block = np.zeros((n_topics, vocab.size))
        delta_totals = np.zeros(n_topics)
        for doc_pos, words in enumerate(local_docs):
            z = rng.integers(n_topics, size=words.size)
            assignments.append(z)
            np.add.at(doc_topic[doc_pos], z, 1)
            np.add.at(delta_block, (z, word_positions[doc_pos]), 1)
            np.add.at(delta_totals, z, 1)
        state[task_ctx.partition_id] = {
            "docs": local_docs,
            "vocab": vocab,
            "word_positions": word_positions,
            "doc_topic": doc_topic,
            "assignments": assignments,
        }
        client = ctx.client_for(task_ctx.executor)
        if vocab.size:
            task_ctx.defer(
                lambda: client.push_block_add(
                    matrix_id, topic_rows, delta_block, indices=vocab,
                    value_bytes=mode["value_bytes"],
                )
            )
        totals_dcv.add(delta_totals, task_ctx=task_ctx)
        task_ctx.charge_flops(4.0 * sum(d.size for d in local_docs), tag="lda-init")
        return sum(d.size for d in local_docs)

    docs_rdd.map_partitions_with_context(
        lambda c, it: [init_task(c, it)]
    ).collect()

    result = TrainResult(system=system, workload="lda-k%d" % n_topics)
    for iteration in range(n_iterations):

        def sweep_task(task_ctx, iterator):
            for _ in iterator:
                pass
            local = state[task_ctx.partition_id]
            vocab = local["vocab"]
            if vocab.size == 0:
                return (0.0, 0)
            client = ctx.client_for(task_ctx.executor)
            pull_indices = vocab if mode["sparse"] else None
            for _ in range(mode["pulls_per_iter"]):
                block = client.pull_block(
                    matrix_id, topic_rows, indices=pull_indices,
                    value_bytes=mode["value_bytes"],
                )
            if not mode["sparse"]:
                block = block[:, vocab]
            totals = totals_dcv.pull(task_ctx=task_ctx)
            rng = RngRegistry(seed * 131 + iteration).get(
                "lda-%d" % task_ctx.partition_id
            )
            delta_block, delta_totals, loglik, n_tokens = gibbs_sweep(
                local, block, totals, vocab_size, alpha, beta, rng
            )
            task_ctx.charge_flops(6.0 * n_tokens * n_topics, tag="gibbs")
            if mode["sparse"]:
                push_block, push_indices = delta_block, vocab
            else:
                push_block = np.zeros((n_topics, vocab_size))
                push_block[:, vocab] = delta_block
                push_indices = None
            task_ctx.defer(
                lambda: client.push_block_add(
                    matrix_id, topic_rows, push_block, indices=push_indices,
                    value_bytes=mode["value_bytes"],
                )
            )
            totals_dcv.add(delta_totals, task_ctx=task_ctx)
            return (loglik, n_tokens)

        stats = docs_rdd.map_partitions_with_context(
            lambda c, it: [sweep_task(c, it)]
        ).collect()
        total_ll = sum(s[0] for s in stats)
        total_tokens = sum(s[1] for s in stats)
        result.record(ctx.elapsed(), -total_ll / max(1, total_tokens))
        result.iterations = iteration + 1

    result.elapsed = ctx.elapsed()
    result.extras["word_topic_dcv"] = word_topic
    result.extras["matrix_id"] = matrix_id
    result.extras["n_topics"] = n_topics
    return result
