"""Loss/gradient computations on sparse minibatches.

All functions operate on compact representations: a batch's rows plus the
weight values for the union of their feature indices, as pulled sparsely
from the parameter servers.  Dense variants (full weight vector) back the
MLlib-style baselines.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.sparse import batch_index_union


def sigmoid(x):
    """Numerically stable logistic function."""
    out = np.empty_like(np.asarray(x, dtype=float))
    x = np.asarray(x, dtype=float)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def log1p_exp(x):
    """``log(1 + exp(x))`` without overflow."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    pos = x > 0
    out[pos] = x[pos] + np.log1p(np.exp(-x[pos]))
    out[~pos] = np.log1p(np.exp(x[~pos]))
    return out


def logistic_grad_batch(rows, union_indices, union_weights):
    """Gradient + loss of logistic loss over a sparse minibatch.

    ``union_indices`` must be the sorted union of the rows' indices (as from
    :func:`repro.linalg.sparse.batch_index_union`) and ``union_weights`` the
    matching weight values.  Returns ``(grad_values, loss_sum)`` where
    ``grad_values`` aligns with ``union_indices`` and is **unnormalized**
    (sum over rows); labels are 0/1.
    """
    grad = np.zeros(union_indices.size)
    loss_sum = 0.0
    for row in rows:
        positions = np.searchsorted(union_indices, row.indices)
        margin = float(np.dot(union_weights[positions], row.values))
        prob = float(sigmoid(margin))
        loss_sum += float(log1p_exp(margin)) - row.label * margin
        np.add.at(grad, positions, (prob - row.label) * row.values)
    return grad, loss_sum


def logistic_grad_dense(rows, weights):
    """Dense-gradient variant (full weight vector), for MLlib-style runs."""
    grad = np.zeros(weights.size)
    loss_sum = 0.0
    for row in rows:
        margin = row.dot_dense(weights)
        prob = float(sigmoid(margin))
        loss_sum += float(log1p_exp(margin)) - row.label * margin
        np.add.at(grad, row.indices, (prob - row.label) * row.values)
    return grad, loss_sum


def logistic_loss_batch(rows, union_indices, union_weights):
    """Loss only (no gradient) over a sparse batch."""
    loss_sum = 0.0
    for row in rows:
        positions = np.searchsorted(union_indices, row.indices)
        margin = float(np.dot(union_weights[positions], row.values))
        loss_sum += float(log1p_exp(margin)) - row.label * margin
    return loss_sum


def hinge_grad_batch(rows, union_indices, union_weights):
    """Subgradient + loss of the hinge loss (labels 0/1 mapped to ±1)."""
    grad = np.zeros(union_indices.size)
    loss_sum = 0.0
    for row in rows:
        positions = np.searchsorted(union_indices, row.indices)
        margin = float(np.dot(union_weights[positions], row.values))
        y = 2.0 * row.label - 1.0
        loss_sum += max(0.0, 1.0 - y * margin)
        if y * margin < 1.0:
            np.add.at(grad, positions, -y * row.values)
    return grad, loss_sum


def grad_flops(rows):
    """Compute-cost estimate of a batch gradient (charged to executors)."""
    return 6.0 * sum(row.nnz for row in rows)


def batch_union(rows):
    """Re-export of :func:`batch_index_union` for trainer convenience."""
    return batch_index_union(rows)
