"""Logistic regression on PS2 (Sections 3.3 and 5.2.1)."""

from __future__ import annotations

import numpy as np

from repro.ml.linear import train_linear_ps2
from repro.ml.losses import log1p_exp


def train_logistic_regression(ctx, rows, dim, optimizer=None, n_iterations=20,
                              batch_fraction=0.1, seed=0, target_loss=None,
                              checkpoint_every=None, system="PS2"):
    """Train LR with a server-side optimizer (Adam by default, as Figure 3).

    See :func:`repro.ml.linear.train_linear_ps2` for the execution flow.
    """
    return train_linear_ps2(
        ctx, rows, dim, loss="logistic", optimizer=optimizer,
        n_iterations=n_iterations, batch_fraction=batch_fraction, seed=seed,
        target_loss=target_loss, checkpoint_every=checkpoint_every,
        system=system,
    )


def evaluate_logistic_loss(rows, weights):
    """Mean logistic loss of dense *weights* over *rows* (driver-side eval)."""
    total = 0.0
    for row in rows:
        margin = row.dot_dense(weights)
        total += float(log1p_exp(np.asarray(margin))) - row.label * margin
    return total / max(1, len(rows))


def accuracy(rows, weights):
    """Classification accuracy of dense *weights* over *rows*."""
    correct = sum(
        1 for row in rows if (row.dot_dense(weights) > 0) == (row.label > 0.5)
    )
    return correct / max(1, len(rows))
