"""Linear SVM on PS2 (hinge loss) — one of the "other models" of 5.2.4."""

from __future__ import annotations

from repro.ml.linear import train_linear_ps2
from repro.ml.optim import SGD


def train_svm(ctx, rows, dim, optimizer=None, n_iterations=20,
              batch_fraction=0.1, seed=0, target_loss=None, system="PS2"):
    """Train a linear SVM with minibatch subgradient descent on PS2.

    Labels are 0/1 (mapped internally to ±1).  Defaults to plain SGD, the
    standard choice for hinge loss.
    """
    if optimizer is None:
        optimizer = SGD(learning_rate=0.1)
    return train_linear_ps2(
        ctx, rows, dim, loss="hinge", optimizer=optimizer,
        n_iterations=n_iterations, batch_fraction=batch_fraction, seed=seed,
        target_loss=target_loss, system=system,
    )


def hinge_accuracy(rows, weights):
    """Classification accuracy of dense *weights* over *rows*."""
    correct = sum(
        1 for row in rows if (row.dot_dense(weights) > 0) == (row.label > 0.5)
    )
    return correct / max(1, len(rows))
