"""Server-side DCV optimizers: SGD, Adam, Adagrad, RMSProp, L-BFGS."""

from repro.ml.optim.base import ServerSideOptimizer
from repro.ml.optim.firstorder import SGD, Adagrad, Adam, RMSProp
from repro.ml.optim.lbfgs import LBFGS

OPTIMIZERS = {
    "sgd": SGD,
    "adam": Adam,
    "adagrad": Adagrad,
    "rmsprop": RMSProp,
    "lbfgs": LBFGS,
}


def make_optimizer(name, **kwargs):
    """Construct an optimizer by registry name."""
    try:
        cls = OPTIMIZERS[name]
    except KeyError:
        raise ValueError(
            "unknown optimizer %r (have: %s)" % (name, sorted(OPTIMIZERS))
        ) from None
    return cls(**kwargs)


__all__ = [
    "ServerSideOptimizer",
    "SGD",
    "Adam",
    "Adagrad",
    "RMSProp",
    "LBFGS",
    "OPTIMIZERS",
    "make_optimizer",
]
