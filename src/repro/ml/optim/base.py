"""Server-side optimizers over DCVs.

An optimizer owns the model's auxiliary vectors (momenta, squared-gradient
accumulators, L-BFGS history), all allocated via ``derive`` so they are
co-located with the weights, and applies its update as a fused ``zip``
kernel — the server-side computation of Figure 3, lines 21-26.
"""

from __future__ import annotations

from repro.common.errors import ReproError


class ServerSideOptimizer:
    """Base class: binds to a weight DCV and steps via a zip kernel."""

    name = "base"

    def __init__(self, learning_rate):
        self.learning_rate = float(learning_rate)
        self.weight = None
        self._grad = None
        self._step = 0

    def bind(self, weight):
        """Attach to *weight*, allocating co-located auxiliary DCVs.

        Returns the gradient DCV workers should ``add`` into.
        """
        self.weight = weight
        self._grad = weight.derive(name="%s.grad" % weight.name)
        self._grad.zero()
        self._allocate_aux()
        return self._grad

    def _allocate_aux(self):
        """Subclasses allocate their aux vectors here (may be empty)."""

    @property
    def gradient(self):
        if self._grad is None:
            raise ReproError("optimizer not bound; call bind(weight) first")
        return self._grad

    @property
    def step_count(self):
        return self._step

    def zero_grad(self):
        """Reset the shared gradient accumulator (Figure 3, line 10)."""
        self.gradient.zero()

    def step(self):
        """Apply one model update server-side; returns the kernel's fold."""
        if self.weight is None:
            raise ReproError("optimizer not bound; call bind(weight) first")
        self._step += 1
        return self._apply()

    def _apply(self):
        raise NotImplementedError
