"""L-BFGS implemented entirely with DCV operators.

Section 5.2.4 lists L-BFGS among the optimizers PS2 implements.  The
two-loop recursion is a showcase for DCVs: curvature pairs ``(s_i, y_i)``
are derived (co-located) vectors, and every ``dot``/``axpy`` of the
recursion runs server-side, so the history never leaves the servers — only
the ``rho``/``alpha``/``beta`` scalars travel.
"""

from __future__ import annotations

from collections import deque

from repro.ml.optim.base import ServerSideOptimizer


class LBFGS(ServerSideOptimizer):
    """Limited-memory BFGS with *memory* curvature pairs on the servers."""

    name = "lbfgs"

    def __init__(self, learning_rate=0.5, memory=5):
        super().__init__(learning_rate)
        self.memory = int(memory)
        self._pairs = deque()
        self._prev_weight = None
        self._prev_grad = None
        self._scratch = None

    def _allocate_aux(self):
        self._prev_weight = self.weight.derive(name="lbfgs.prev_w")
        self._prev_grad = self.weight.derive(name="lbfgs.prev_g")
        self._scratch = self.weight.derive(name="lbfgs.q")

    def _direction(self):
        """Two-loop recursion into the scratch DCV; returns it (= -H*g ... sign
        handled by the caller: the scratch holds H^{-1}-scaled gradient)."""
        q = self.gradient.copy(out=self._scratch)
        alphas = []
        for s_vec, y_vec, rho in reversed(self._pairs):
            alpha = rho * s_vec.dot(q)
            q.iaxpy(y_vec, -alpha)
            alphas.append(alpha)
        alphas.reverse()
        if self._pairs:
            s_vec, y_vec, rho = self._pairs[-1]
            ys = 1.0 / max(rho, 1e-12)
            yy = y_vec.dot(y_vec)
            if yy > 0:
                q.scale(ys / yy)
        for (s_vec, y_vec, rho), alpha in zip(self._pairs, alphas):
            beta = rho * y_vec.dot(q)
            q.iaxpy(s_vec, alpha - beta)
        return q

    def _apply(self):
        if self._step > 1:
            # Update curvature history: s = w - w_prev, y = g - g_prev.
            s_vec = self.weight.sub(self._prev_weight)
            y_vec = self.gradient.sub(self._prev_grad)
            ys = y_vec.dot(s_vec)
            if ys > 1e-10:
                self._pairs.append((s_vec, y_vec, 1.0 / ys))
                if len(self._pairs) > self.memory:
                    old_s, old_y, _rho = self._pairs.popleft()
                    old_s.free()
                    old_y.free()
            else:
                s_vec.free()
                y_vec.free()
        self.weight.copy(out=self._prev_weight)
        self.gradient.copy(out=self._prev_grad)
        direction = self._direction()
        self.weight.iaxpy(direction, -self.learning_rate)
        return None
