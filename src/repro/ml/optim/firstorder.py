"""First-order server-side optimizers: SGD, Adam, Adagrad, RMSProp.

Adam follows Equation (1) of the paper exactly (including its naming:
``s`` is the decayed average of squared gradients with decay ``beta1``,
``v`` the decayed average of gradients with decay ``beta2``).  Defaults
come from Table 4: learning rate 0.618, beta1 0.9, beta2 0.999, eps 1e-8.
"""

from __future__ import annotations

from repro.core import kernels
from repro.ml.optim.base import ServerSideOptimizer


class SGD(ServerSideOptimizer):
    """Plain stochastic gradient descent: ``w -= lr * g``."""

    name = "sgd"

    def __init__(self, learning_rate=0.618):
        super().__init__(learning_rate)

    def _apply(self):
        return self.weight.zip(self.gradient).map_partitions(
            kernels.sgd_update_kernel, args={"lr": self.learning_rate},
            wait=False,
        )


class Adam(ServerSideOptimizer):
    """Adam with bias correction (paper Section 3.1, Equation 1).

    Model state: weight ``w`` plus two co-located aux vectors — the squared-
    gradient average ``s`` and the gradient average ``v`` — exactly the four
    DCVs of Figure 3.
    """

    name = "adam"

    def __init__(self, learning_rate=0.618, beta1=0.9, beta2=0.999, eps=1e-8):
        super().__init__(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.velocity = None
        self.square = None

    def _allocate_aux(self):
        self.velocity = self.weight.derive(name="%s.velocity" % self.weight.name)
        self.velocity.fill(0.0)
        self.square = self.weight.derive(name="%s.square" % self.weight.name)
        self.square.fill(0.0)

    def _apply(self):
        return self.weight.zip(self.velocity, self.square, self.gradient
                               ).map_partitions(
            kernels.adam_update_kernel,
            args={
                "lr": self.learning_rate,
                "beta1": self.beta1,
                "beta2": self.beta2,
                "eps": self.eps,
                "step": self._step,
            },
            wait=False,
        )


class Adagrad(ServerSideOptimizer):
    """Adagrad: per-coordinate rates from accumulated squared gradients."""

    name = "adagrad"

    def __init__(self, learning_rate=0.618, eps=1e-8):
        super().__init__(learning_rate)
        self.eps = float(eps)
        self.accumulator = None

    def _allocate_aux(self):
        self.accumulator = self.weight.derive(name="%s.acc" % self.weight.name)
        self.accumulator.fill(0.0)

    def _apply(self):
        return self.weight.zip(self.accumulator, self.gradient).map_partitions(
            kernels.adagrad_update_kernel,
            args={"lr": self.learning_rate, "eps": self.eps},
            wait=False,
        )


class RMSProp(ServerSideOptimizer):
    """RMSProp: exponentially decayed squared-gradient normalization."""

    name = "rmsprop"

    def __init__(self, learning_rate=0.1, decay=0.9, eps=1e-8):
        super().__init__(learning_rate)
        self.decay = float(decay)
        self.eps = float(eps)
        self.accumulator = None

    def _allocate_aux(self):
        self.accumulator = self.weight.derive(name="%s.acc" % self.weight.name)
        self.accumulator.fill(0.0)

    def _apply(self):
        return self.weight.zip(self.accumulator, self.gradient).map_partitions(
            kernels.rmsprop_update_kernel,
            args={"lr": self.learning_rate, "decay": self.decay, "eps": self.eps},
            wait=False,
        )
