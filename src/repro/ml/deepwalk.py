"""DeepWalk graph embedding on PS2 (Section 5.2.2, Figures 5 and 6).

The model is ``2V`` K-dimensional vectors — an input embedding and a
"context" embedding per vertex — allocated as one DCV pool so all of them
are co-located.  Training samples skip-gram pairs from random walks with
negative sampling (Table 4: window 4, 5 negatives, batch 512, lr 0.01).

Two realizations, exactly the paper's Figure 9(c,d) comparison:

- :func:`train_deepwalk` with ``server_side=True`` (PS2-DeepWalk): the dot
  product and both ``iaxpy`` updates run on the servers; only scalars cross
  the network (Figure 6's code).
- ``server_side=False`` (PS-DeepWalk): workers pull both K-vectors, update
  locally, and push them back — the pull/push-only baseline.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.rng import RngRegistry
from repro.data.graphs import skipgram_pairs
from repro.ml.losses import sigmoid
from repro.ml.results import TrainResult

_EPS = 1e-9


def build_embeddings(ctx, n_vertices, embedding_dim, scale=None):
    """Allocate the ``2V`` co-located embedding DCVs (Figure 6, lines 1-5).

    Index ``u`` is vertex u's input embedding; ``u + V`` its context vector.
    """
    if scale is None:
        scale = 0.5 / embedding_dim
    first = ctx.dense(embedding_dim, rows=2 * n_vertices, name="emb",
                      allow_growth=False, init="uniform", scale=scale)
    embeddings = [first]
    for _ in range(2 * n_vertices - 1):
        embeddings.append(first.derive())
    return embeddings


def _pair_loss(dot_value, positive):
    prob = float(sigmoid(np.asarray(dot_value)))
    if positive:
        return -math.log(max(prob, _EPS))
    return -math.log(max(1.0 - prob, _EPS))


def _update_server_side(task_ctx, embeddings, n_vertices, u, v, positive,
                        learning_rate):
    """Figure 6's inner loop: server-side dot + two iaxpy updates."""
    input_u = embeddings[u]
    output_v = embeddings[v + n_vertices]
    dot = input_u.dot(output_v, task_ctx=task_ctx)
    target = 1.0 if positive else 0.0
    coeff = learning_rate * (target - float(sigmoid(np.asarray(dot))))
    input_u.iaxpy(output_v, coeff, task_ctx=task_ctx)
    output_v.iaxpy(input_u, coeff, task_ctx=task_ctx)
    return _pair_loss(dot, positive)


def _update_pull_push(task_ctx, embeddings, n_vertices, u, v, positive,
                      learning_rate):
    """PS-DeepWalk: pull both vectors, update locally, push back."""
    input_u = embeddings[u]
    output_v = embeddings[v + n_vertices]
    vec_u = input_u.pull(task_ctx=task_ctx)
    vec_v = output_v.pull(task_ctx=task_ctx)
    dot = float(np.dot(vec_u, vec_v))
    target = 1.0 if positive else 0.0
    coeff = learning_rate * (target - float(sigmoid(np.asarray(dot))))
    new_u = vec_u + coeff * vec_v
    new_v = vec_v + coeff * new_u
    task_ctx.charge_flops(6.0 * vec_u.size, tag="embed-update")
    input_u.push(new_u, task_ctx=task_ctx)
    output_v.push(new_v, task_ctx=task_ctx)
    return _pair_loss(dot, positive)


def train_embedding_pairs(ctx, pairs, n_vertices, embedding_dim=32,
                          n_iterations=3, batch_size=512, learning_rate=0.01,
                          n_negative=5, seed=0, server_side=True,
                          embeddings=None, system="PS2-Embedding",
                          workload="embedding"):
    """Train vertex embeddings from (center, context) *pairs*.

    The shared engine behind DeepWalk, node2vec and LINE: every model
    samples "similar" vertex pairs by its own rule and trains the same
    skip-gram-with-negative-sampling objective over the 2V co-located
    embedding DCVs.
    """
    if not pairs:
        raise ValueError("no training pairs supplied")
    if embeddings is None:
        embeddings = build_embeddings(ctx, n_vertices, embedding_dim)
    update = _update_server_side if server_side else _update_pull_push

    pairs_rdd = ctx.parallelize(pairs).cache()
    total_pairs = len(pairs)
    fraction = min(1.0, batch_size / total_pairs)
    result = TrainResult(system=system, workload=workload)

    for iteration in range(n_iterations):
        batch = pairs_rdd.sample(fraction, seed=seed * 997 + iteration)

        def pair_task(task_ctx, iterator):
            # No-ops under BSP; the SSP gate and cache-renewal tick under
            # relaxed consistency (the pull/push realization benefits most:
            # its full-row embedding pulls are exactly what the cache holds).
            task_ctx.sync_clock()
            rng = RngRegistry(seed * 31 + iteration).get(
                "neg-%d" % task_ctx.partition_id
            )
            loss_sum = 0.0
            count = 0
            for u, v in iterator:
                loss_sum += update(task_ctx, embeddings, n_vertices, u, v,
                                   True, learning_rate)
                for _ in range(n_negative):
                    neg = int(rng.integers(n_vertices))
                    loss_sum += update(task_ctx, embeddings, n_vertices, u,
                                       neg, False, learning_rate)
                count += 1
            task_ctx.advance_clock()
            return (loss_sum, count)

        stats = batch.map_partitions_with_context(
            lambda task_ctx, it: [pair_task(task_ctx, it)]
        ).collect()
        total_loss = sum(s[0] for s in stats)
        total_count = sum(s[1] for s in stats)
        per_pair = total_loss / max(1, total_count) / (1 + n_negative)
        result.record(ctx.elapsed(), per_pair)
        result.iterations = iteration + 1

    result.elapsed = ctx.elapsed()
    result.extras["embeddings"] = embeddings
    return result


def train_deepwalk(ctx, walks, n_vertices, embedding_dim=32, n_iterations=3,
                   batch_size=512, learning_rate=0.01, window=4,
                   n_negative=5, seed=0, server_side=True, embeddings=None,
                   system=None):
    """Train DeepWalk embeddings from pre-sampled random *walks*.

    Returns a :class:`TrainResult`; extras hold the embedding DCV list.
    ``server_side`` switches between the PS2 (DCV ops) and PS (pull/push)
    realizations of Figure 9(c,d).
    """
    pairs = skipgram_pairs(walks, window=window)
    if not pairs:
        raise ValueError("no skip-gram pairs; walks too short for the window")
    if system is None:
        system = "PS2-DeepWalk" if server_side else "PS-DeepWalk"
    return train_embedding_pairs(
        ctx, pairs, n_vertices, embedding_dim=embedding_dim,
        n_iterations=n_iterations, batch_size=batch_size,
        learning_rate=learning_rate, n_negative=n_negative, seed=seed,
        server_side=server_side, embeddings=embeddings, system=system,
        workload="deepwalk",
    )


def embedding_matrix(embeddings, n_vertices):
    """Materialize the input embeddings as a ``V x K`` array (eval helper)."""
    return np.stack([embeddings[u].materialize() for u in range(n_vertices)])
