"""Training-run results shared by every trainer and benchmark."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TrainResult:
    """Outcome of one training run on the simulated cluster.

    ``history`` is a list of ``(virtual_seconds, loss)`` pairs sampled once
    per iteration (or per tree, for GBDT) — the loss-vs-time curves of the
    paper's figures.  ``extras`` carries trainer-specific artifacts (final
    weights, trees, per-step timing breakdowns).
    """

    system: str
    workload: str
    history: list = field(default_factory=list)
    iterations: int = 0
    elapsed: float = 0.0
    extras: dict = field(default_factory=dict)

    @property
    def final_loss(self):
        """Loss at the last recorded point (None for an empty history)."""
        if not self.history:
            return None
        return self.history[-1][1]

    def record(self, time, loss):
        """Append one history point."""
        self.history.append((float(time), float(loss)))

    def time_to(self, target_loss):
        """First virtual time at which loss reached *target_loss* (or None).

        This is the paper's headline metric: "to achieve 0.3 training loss,
        PS2-Adam requires 59 seconds while PS-Adam requires 277 seconds".
        """
        for time, loss in self.history:
            if loss <= target_loss:
                return time
        return None

    def best_loss(self):
        """The minimum loss seen across the run."""
        if not self.history:
            return None
        return min(loss for _time, loss in self.history)


def speedup(baseline, contender, target_loss):
    """``baseline_time / contender_time`` to a target loss (None if unmet)."""
    t_base = baseline.time_to(target_loss)
    t_cont = contender.time_to(target_loss)
    if t_base is None or t_cont is None or t_cont == 0:
        return None
    return t_base / t_cont
