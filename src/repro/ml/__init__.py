"""ML workloads on PS2: LR, SVM, DeepWalk, GBDT, LDA + server-side optim."""

from repro.ml.fm import FMModel, train_fm
from repro.ml.deepwalk import (
    build_embeddings,
    embedding_matrix,
    train_deepwalk,
    train_embedding_pairs,
)
from repro.ml.line import train_line
from repro.ml.gbdt import GBDTModel, train_gbdt
from repro.ml.lda import train_lda
from repro.ml.linear import serve_linear_ps2, train_linear_ps2
from repro.ml.lr import accuracy, evaluate_logistic_loss, train_logistic_regression
from repro.ml.results import TrainResult, speedup
from repro.ml.svm import hinge_accuracy, train_svm

__all__ = [
    "FMModel",
    "train_fm",
    "build_embeddings",
    "embedding_matrix",
    "train_deepwalk",
    "train_embedding_pairs",
    "train_line",
    "GBDTModel",
    "train_gbdt",
    "train_lda",
    "serve_linear_ps2",
    "train_linear_ps2",
    "accuracy",
    "evaluate_logistic_loss",
    "train_logistic_regression",
    "TrainResult",
    "speedup",
    "hinge_accuracy",
    "train_svm",
]
