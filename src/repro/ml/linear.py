"""Linear-model training on PS2 — the execution flow of Figure 3.

One iteration:

1. **model pull** — each worker pulls, *sparsely*, only the weights its
   minibatch touches (the sparse communication PS2 credits for beating
   Petuum);
2. **gradient calculation** — local numpy math, charged to the executor;
3. **gradient push** — a deferred ``DCV.add`` that commits with the task
   (exactly-once under retry), followed by the stage barrier;
4. **model update** — a fused server-side optimizer kernel over the
   co-located weight/aux/gradient DCVs (``zip``).
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.linalg.sparse import batch_index_union
from repro.ml import losses
from repro.ml.optim import Adam, make_optimizer
from repro.ml.results import TrainResult

_LOSS_FUNCTIONS = {
    "logistic": losses.logistic_grad_batch,
    "hinge": losses.hinge_grad_batch,
}


def train_linear_ps2(ctx, rows, dim, loss="logistic", optimizer=None,
                     n_iterations=20, batch_fraction=0.1, seed=0,
                     target_loss=None, checkpoint_every=None, system="PS2",
                     pool_rows=8):
    """Train a linear model (LR or SVM) with PS2 + DCVs.

    *rows* is a list of :class:`~repro.linalg.sparse.SparseRow`; *dim* the
    feature dimension.  Returns a :class:`TrainResult` whose history holds
    ``(virtual_seconds, mean_batch_loss)`` per iteration; extras carry the
    bound optimizer (whose ``weight`` DCV is the trained model).

    ``pool_rows`` sizes the co-located DCV pool backing the model.  The
    default (8) fits any optimizer here (Adam + L-BFGS history); SGD only
    ever acquires weight + gradient, and a run that will be subject to
    hot-key replication wants the pool no larger than needed — a replica
    install ships every pool row of the shard, so unused slots are pure
    migration bytes.
    """
    if loss not in _LOSS_FUNCTIONS:
        raise ConfigError("unknown loss %r (have %s)" % (loss, sorted(_LOSS_FUNCTIONS)))
    grad_fn = _LOSS_FUNCTIONS[loss]
    if optimizer is None:
        optimizer = Adam()
    elif isinstance(optimizer, str):
        optimizer = make_optimizer(optimizer)

    data = ctx.parallelize(rows).cache()
    weight = ctx.dense(dim, rows=pool_rows, name="weight")
    gradient = optimizer.bind(weight)

    result = TrainResult(system=system, workload="%s-%s" % (loss, optimizer.name))
    for iteration in range(n_iterations):
        optimizer.zero_grad()
        batch = data.sample(batch_fraction, seed=seed * 10000 + iteration)

        def gradient_task(task_ctx, iterator):
            # Consistency gate / logical-clock tick: exact no-ops under BSP
            # (the stage barrier already synchronizes), the SSP wait and the
            # worker-cache renewal point under relaxed consistency.
            task_ctx.sync_clock()
            batch_rows = list(iterator)
            if not batch_rows:
                task_ctx.advance_clock()
                return (0.0, 0)
            union = batch_index_union(batch_rows)
            union_weights = weight.pull(indices=union, task_ctx=task_ctx)
            grad_values, loss_sum = grad_fn(batch_rows, union, union_weights)
            task_ctx.charge_flops(losses.grad_flops(batch_rows), tag="gradient")
            gradient.add(grad_values, indices=union, task_ctx=task_ctx)
            task_ctx.advance_clock()
            return (loss_sum, len(batch_rows))

        stats = batch.map_partitions_with_context(
            lambda task_ctx, it: [gradient_task(task_ctx, it)]
        ).collect()

        total_loss = sum(s[0] for s in stats)
        total_count = sum(s[1] for s in stats)
        if total_count > 0:
            gradient.scale(1.0 / total_count)
            optimizer.step()
            result.record(ctx.elapsed(), total_loss / total_count)
        else:
            result.record(ctx.elapsed(), result.final_loss or 0.0)
        result.iterations = iteration + 1

        if checkpoint_every and (iteration + 1) % checkpoint_every == 0:
            ctx.checkpoint()
        if target_loss is not None and total_count > 0 \
                and total_loss / total_count <= target_loss:
            break

    result.elapsed = ctx.elapsed()
    result.extras["optimizer"] = optimizer
    result.extras["weight"] = weight
    return result


_LOSS_ONLY = {
    "logistic": losses.logistic_loss_batch,
    "hinge": lambda rows, union, weights: losses.hinge_grad_batch(
        rows, union, weights
    )[1],
}


def serve_linear_ps2(ctx, rows, weight, loss="logistic", n_passes=1,
                     system="PS2"):
    """Score a trained linear model over *rows*, *n_passes* times.

    The serving half of a train-then-serve pipeline: every pass pulls,
    sparsely, the weights each partition's rows touch and computes the
    loss locally — **pure reads**, no gradient pushes.  This is the
    read-dominated access pattern hot-key replication pays off on (the
    model rows stop changing, so replica fan-out traffic drops to zero
    while pull load still concentrates on the skew-hot shard).

    *weight* is the trained DCV (``result.extras["weight"]``).  Returns a
    :class:`TrainResult` whose history holds ``(virtual_seconds,
    mean_loss)`` per pass.
    """
    if loss not in _LOSS_ONLY:
        raise ConfigError("unknown loss %r (have %s)" % (loss, sorted(_LOSS_ONLY)))
    loss_fn = _LOSS_ONLY[loss]
    data = ctx.parallelize(rows).cache()
    result = TrainResult(system=system, workload="%s-serve" % loss)

    def score_task(task_ctx, iterator):
        task_ctx.sync_clock()
        part_rows = list(iterator)
        if not part_rows:
            task_ctx.advance_clock()
            return (0.0, 0)
        union = batch_index_union(part_rows)
        union_weights = weight.pull(indices=union, task_ctx=task_ctx)
        loss_sum = loss_fn(part_rows, union, union_weights)
        task_ctx.charge_flops(losses.grad_flops(part_rows) // 2, tag="serve")
        task_ctx.advance_clock()
        return (loss_sum, len(part_rows))

    for _ in range(n_passes):
        stats = data.map_partitions_with_context(
            lambda task_ctx, it: [score_task(task_ctx, it)]
        ).collect()
        total = sum(s[1] for s in stats)
        result.record(
            ctx.elapsed(),
            sum(s[0] for s in stats) / total if total else 0.0,
        )
    result.elapsed = ctx.elapsed()
    return result
