"""LINE: Large-scale Information Network Embedding on PS2.

The paper lists LINE (Tang et al., WWW'15 — its reference [27]) with
DeepWalk and node2vec as the graph-embedding workloads PS2 serves.  LINE's
second-order proximity objective is exactly the skip-gram-with-negative-
sampling update over (vertex, context-vertex) pairs — but sampled directly
from the EDGES rather than from random walks, so it needs no walk corpus.

Everything below delegates to the shared pair-training engine, so LINE
inherits both realizations (PS2 server-side ops / PS pull-push) for free.
"""

from __future__ import annotations

from repro.data.graphs import edge_pairs
from repro.ml.deepwalk import train_embedding_pairs


def train_line(ctx, adjacency, embedding_dim=32, n_iterations=3,
               batch_size=512, learning_rate=0.01, n_negative=5, seed=0,
               server_side=True, embeddings=None, system=None):
    """Train LINE (second-order proximity) embeddings from a graph.

    *adjacency* is the adjacency-list representation produced by
    :func:`repro.data.graphs.preferential_attachment_graph`.  Returns a
    :class:`~repro.ml.results.TrainResult` whose extras hold the 2V
    embedding DCVs (input vectors at ``[0, V)``, context vectors at
    ``[V, 2V)``), exactly as DeepWalk's.
    """
    pairs = edge_pairs(adjacency)
    if system is None:
        system = "PS2-LINE" if server_side else "PS-LINE"
    return train_embedding_pairs(
        ctx, pairs, len(adjacency), embedding_dim=embedding_dim,
        n_iterations=n_iterations, batch_size=batch_size,
        learning_rate=learning_rate, n_negative=n_negative, seed=seed,
        server_side=server_side, embeddings=embeddings, system=system,
        workload="line",
    )
