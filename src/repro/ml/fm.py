"""Factorization Machines on PS2.

The paper's introduction names FM alongside LR as the classification models
Tencent's user-profiling pipeline trains over 200M-feature instances
(Section 1).  The second-order FM

    y(x) = w0 + <w, x> + sum_{i<j} <v_i, v_j> x_i x_j

is a showcase multi-vector model: the weight vector plus ``n_factors``
latent-factor vectors, all ``derive``d from one pool so they are co-located,
pulled **as a block** for each minibatch's index union and updated with
server-side SGD kernels — DCV machinery end to end.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError
from repro.core import kernels
from repro.linalg.sparse import batch_index_union
from repro.ml.losses import log1p_exp, sigmoid
from repro.ml.results import TrainResult


class FMModel:
    """Handles to the distributed FM parameters plus the local bias."""

    def __init__(self, ctx, dim, n_factors, init_scale=0.01):
        if n_factors < 1:
            raise ConfigError("n_factors must be >= 1")
        self.ctx = ctx
        self.dim = int(dim)
        self.n_factors = int(n_factors)
        self.bias = 0.0
        # One pool holds the weight row, the factor rows and their gradient
        # accumulators, so every vector is co-located and block-addressable.
        rows_needed = 2 * (n_factors + 1)
        self.weight = ctx.dense(dim, rows=rows_needed, name="fm",
                                allow_growth=False)
        self.factors = [self.weight.derive(name="fm.v%d" % f)
                        for f in range(n_factors)]
        self.weight_grad = self.weight.derive(name="fm.gw")
        self.factor_grads = [self.weight.derive(name="fm.gv%d" % f)
                             for f in range(n_factors)]
        rng = ctx.cluster.rng.get("fm-init")
        for factor in self.factors:
            factor.push(rng.standard_normal(dim) * init_scale)
        self._check_single_segment()

    def _check_single_segment(self):
        matrix_ids = {self.weight.matrix_id}
        matrix_ids.update(v.matrix_id for v in self.factors)
        matrix_ids.update(g.matrix_id for g in self.factor_grads)
        matrix_ids.add(self.weight_grad.matrix_id)
        if len(matrix_ids) != 1:
            raise ConfigError("FM parameters must share one pool segment")

    @property
    def matrix_id(self):
        return self.weight.matrix_id

    def parameter_rows(self):
        """Server rows of ``[w, v_0, ..., v_{k-1}]`` for block access."""
        return [self.weight.row] + [v.row for v in self.factors]

    def gradient_rows(self):
        return [self.weight_grad.row] + [g.row for g in self.factor_grads]

    def predict_margin(self, rows):
        """Raw margins for a list of SparseRow (driver-side evaluation)."""
        union = batch_index_union(rows)
        client = self.ctx.coordinator_client
        block = client.pull_block(self.matrix_id, self.parameter_rows(),
                                  indices=union)
        margins = np.empty(len(rows))
        for i, row in enumerate(rows):
            positions = np.searchsorted(union, row.indices)
            margins[i] = _sample_margin(block, positions, row.values,
                                        self.bias)
        return margins

    def predict_proba(self, rows):
        """P(label=1) for each instance."""
        return sigmoid(self.predict_margin(rows))


def _sample_margin(block, positions, values, bias):
    """FM margin from the pulled parameter block (row 0 = w, rest = V)."""
    w_vals = block[0, positions]
    v_sub = block[1:, positions]
    linear = float(np.dot(w_vals, values))
    s = v_sub @ values
    sq = (v_sub**2) @ (values**2)
    interaction = 0.5 * float(np.sum(s * s - sq))
    return bias + linear + interaction


def _batch_gradients(block, rows, union, bias):
    """Loss, bias gradient and parameter-block gradient for a minibatch."""
    grad_block = np.zeros_like(block)
    grad_bias = 0.0
    loss_sum = 0.0
    for row in rows:
        positions = np.searchsorted(union, row.indices)
        values = row.values
        margin = _sample_margin(block, positions, values, bias)
        prob = float(sigmoid(np.asarray(margin)))
        loss_sum += float(log1p_exp(np.asarray(margin))) - row.label * margin
        g = prob - row.label
        grad_bias += g
        np.add.at(grad_block[0], positions, g * values)
        v_sub = block[1:, positions]
        s = v_sub @ values
        factor_grad = g * (np.outer(s, values) - v_sub * values**2)
        np.add.at(grad_block[1:], (slice(None), positions), factor_grad)
    return grad_block, grad_bias, loss_sum


def train_fm(ctx, rows, dim, n_factors=8, learning_rate=0.05,
             n_iterations=20, batch_fraction=0.3, seed=0, init_scale=0.01,
             target_loss=None, system="PS2-FM"):
    """Train a second-order FM classifier on PS2.

    Per iteration: workers block-pull ``w`` and all factor rows for their
    batch's index union, compute FM gradients locally, block-push them into
    the co-located gradient rows (deferred to the stage barrier), and the
    coordinator applies ``n_factors + 1`` server-side SGD kernels — no
    parameter ever round-trips for the update.
    """
    model = FMModel(ctx, dim, n_factors, init_scale=init_scale)
    data = ctx.parallelize(rows).cache()
    param_rows = model.parameter_rows()
    grad_rows = model.gradient_rows()
    grad_dcvs = [model.weight_grad] + model.factor_grads
    param_dcvs = [model.weight] + model.factors

    result = TrainResult(system=system, workload="fm-k%d" % n_factors)
    for iteration in range(n_iterations):
        for grad in grad_dcvs:
            grad.zero()
        batch = data.sample(batch_fraction, seed=seed * 10000 + iteration)

        def gradient_task(task_ctx, iterator):
            batch_rows = list(iterator)
            if not batch_rows:
                return (0.0, 0.0, 0)
            union = batch_index_union(batch_rows)
            client = ctx.client_for(task_ctx.executor)
            block = client.pull_block(model.matrix_id, param_rows,
                                      indices=union)
            grad_block, grad_bias, loss_sum = _batch_gradients(
                block, batch_rows, union, model.bias
            )
            nnz = sum(r.nnz for r in batch_rows)
            task_ctx.charge_flops(8.0 * n_factors * nnz, tag="fm-gradient")
            task_ctx.defer(
                lambda: client.push_block_add(
                    model.matrix_id, grad_rows, grad_block, indices=union
                )
            )
            return (loss_sum, grad_bias, len(batch_rows))

        stats = batch.map_partitions_with_context(
            lambda c, it: [gradient_task(c, it)]
        ).collect()
        total_loss = sum(s[0] for s in stats)
        total_bias_grad = sum(s[1] for s in stats)
        total_count = sum(s[2] for s in stats)

        if total_count > 0:
            scale = 1.0 / total_count
            model.bias -= learning_rate * total_bias_grad * scale
            for param, grad in zip(param_dcvs, grad_dcvs):
                grad.scale(scale)
                param.zip(grad).map_partitions(
                    kernels.sgd_update_kernel,
                    args={"lr": learning_rate},
                    wait=False,
                )
            result.record(ctx.elapsed(), total_loss / total_count)
        else:
            result.record(ctx.elapsed(), result.final_loss or 0.0)
        result.iterations = iteration + 1
        if target_loss is not None and total_count > 0 \
                and total_loss / total_count <= target_loss:
            break

    result.elapsed = ctx.elapsed()
    result.extras["model"] = model
    return result
