"""Gradient Boosting Decision Trees on PS2 (Section 5.2.3, Figures 7 and 8).

Histogram-based GBDT with logistic loss:

- features are quantile-binned once (``size_of_histogram`` bins, Table 4);
- per tree node, every worker builds local first/second-order gradient
  histograms over its data partition and **adds** them into two co-located
  DCVs (``gradHist``/``hessHist`` of Figure 8, dimension ``features x bins``
  flattened);
- split finding runs **server-side** via a ``zip`` kernel that enumerates
  cut positions and ships back only ``(gain, feature, cut, left-sums)``
  scalars — histograms never leave the servers.

``method="allreduce"`` replaces steps 2-3 with XGBoost's strategy: full
histograms are ring-AllReduced among the workers and each worker finds the
split locally — the communication pattern the paper measures 3.3x slower.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError
from repro.core import kernels
from repro.ml.losses import log1p_exp, sigmoid
from repro.ml.results import TrainResult


class TreeNode:
    """One node of a regression tree over binned features."""

    __slots__ = ("feature", "cut_bin", "left", "right", "leaf_value")

    def __init__(self, feature=-1, cut_bin=-1, left=None, right=None,
                 leaf_value=None):
        self.feature = feature
        self.cut_bin = cut_bin
        self.left = left
        self.right = right
        self.leaf_value = leaf_value

    @property
    def is_leaf(self):
        return self.leaf_value is not None


class GBDTModel:
    """A trained ensemble: bin edges + trees of :class:`TreeNode`."""

    def __init__(self, bin_edges, learning_rate):
        self.bin_edges = bin_edges
        self.learning_rate = learning_rate
        self.trees = []

    def bin_features(self, features):
        """Map raw features to bin ids with the training quantile edges."""
        n_rows, n_features = features.shape
        binned = np.empty((n_rows, n_features), dtype=np.int32)
        for f in range(n_features):
            binned[:, f] = np.searchsorted(self.bin_edges[f], features[:, f])
        return binned

    def predict_margin(self, features):
        """Raw additive margin (pre-sigmoid) for each row of *features*."""
        binned = self.bin_features(features)
        margins = np.zeros(features.shape[0])
        for tree in self.trees:
            for i in range(binned.shape[0]):
                node = tree[0]
                while not node.is_leaf:
                    if binned[i, node.feature] <= node.cut_bin:
                        node = tree[node.left]
                    else:
                        node = tree[node.right]
                margins[i] += node.leaf_value
        return margins

    def predict_proba(self, features):
        """P(label=1) for each row."""
        return sigmoid(self.predict_margin(features))


def quantile_bin_edges(features, n_bins):
    """Per-feature quantile cut points (``n_bins - 1`` edges each)."""
    quantiles = np.linspace(0, 1, n_bins + 1)[1:-1]
    return [
        np.unique(np.quantile(features[:, f], quantiles))
        for f in range(features.shape[1])
    ]


def _logloss(margins, labels):
    return float(np.mean(log1p_exp(margins) - labels * margins))


def train_gbdt(ctx, features, labels, n_trees=100, max_depth=7, n_bins=100,
               learning_rate=0.1, reg_lambda=1.0, min_child_weight=1.0,
               method="ps2", hist_subtraction=False, seed=0, system=None):
    """Train GBDT on the simulated cluster; returns a :class:`TrainResult`.

    ``method``: ``"ps2"`` (histograms pushed to DCVs, server-side split
    finding), ``"allreduce"`` (XGBoost-style) or ``"driver"``
    (MLlib-style).  History records ``(virtual_seconds, train_logloss)``
    after each tree; extras hold the :class:`GBDTModel`.  Defaults follow
    the paper's Table 4 (100 trees, depth 7, 100-bin histograms) — pass
    smaller values for quick experiments.
    """
    if method not in ("ps2", "allreduce", "driver"):
        raise ConfigError("method must be 'ps2', 'allreduce' or 'driver'")
    if hist_subtraction and method != "ps2":
        raise ConfigError("hist_subtraction requires the 'ps2' method")
    if system is None:
        system = {
            "ps2": "PS2-GBDT",
            "allreduce": "XGBoost-GBDT",
            "driver": "SparkMLlib-GBDT",
        }[method]
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels, dtype=float)
    n_rows, n_features = features.shape
    hist_dim = n_features * n_bins

    model = GBDTModel(quantile_bin_edges(features, n_bins), learning_rate)
    binned_all = model.bin_features(features)

    # Distribute rows; each partition keeps persistent local state.
    indices_rdd = ctx.parallelize(range(n_rows)).cache()
    state = {}

    def init_task(task_ctx, iterator):
        rows = np.fromiter(iterator, dtype=np.int64)
        state[task_ctx.partition_id] = {
            "rows": rows,
            "binned": binned_all[rows],
            "labels": labels[rows],
            "margins": np.zeros(rows.size),
            "nodes": np.zeros(rows.size, dtype=np.int64),
        }
        task_ctx.charge_flops(rows.size * n_features, tag="binning")
        return rows.size

    indices_rdd.map_partitions_with_context(
        lambda c, it: [init_task(c, it)]
    ).collect()

    grad_hist = ctx.dense(hist_dim, rows=4, name="gradHist", block=n_bins)
    hess_hist = grad_hist.derive(name="hessHist")
    feature_offsets = np.arange(n_features, dtype=np.int64) * n_bins

    if method == "ps2" and hist_subtraction:
        hist_exchange = _SubtractionHistExchange(
            ctx, grad_hist, hist_dim, n_bins, reg_lambda, min_child_weight,
        )
    elif method == "ps2":
        hist_exchange = _ps2_histogram_exchange(
            ctx, grad_hist, hess_hist, hist_dim, n_bins, reg_lambda,
            min_child_weight,
        )
    elif method == "allreduce":
        hist_exchange = _allreduce_histogram_exchange(
            ctx, hist_dim, n_bins, reg_lambda, min_child_weight,
        )
    else:
        hist_exchange = _driver_histogram_exchange(
            ctx, hist_dim, n_bins, reg_lambda, min_child_weight,
        )

    start_tree = getattr(hist_exchange, "start_tree", lambda: None)
    after_routing = getattr(hist_exchange, "after_routing", None)

    result = TrainResult(system=system, workload="gbdt")
    for tree_index in range(n_trees):
        tree = {0: TreeNode()}
        start_tree()
        # Root statistics + per-sample grad/hess from current margins.
        def grad_task(task_ctx, iterator):
            local = state[task_ctx.partition_id]
            for _ in iterator:
                pass
            prob = sigmoid(local["margins"])
            local["grad"] = prob - local["labels"]
            local["hess"] = np.maximum(prob * (1.0 - prob), 1e-9)
            local["nodes"].fill(0)
            task_ctx.charge_flops(local["rows"].size * 4.0, tag="grad")
            return (float(local["grad"].sum()), float(local["hess"].sum()))

        sums = indices_rdd.map_partitions_with_context(
            lambda c, it: [grad_task(c, it)]
        ).collect()
        node_stats = {0: (sum(s[0] for s in sums), sum(s[1] for s in sums))}

        frontier = [0]
        next_node_id = 1
        for _depth in range(max_depth):
            next_frontier = []
            splits = {}
            for node_id in frontier:
                parent_grad, parent_hess = node_stats[node_id]
                best = hist_exchange(
                    indices_rdd, state, feature_offsets, node_id,
                    parent_grad, parent_hess,
                )
                gain, feature, cut, left_grad, left_hess = best
                if gain <= 1e-12 or feature < 0:
                    continue
                left_id, right_id = next_node_id, next_node_id + 1
                next_node_id += 2
                node = tree[node_id]
                node.feature = feature
                node.cut_bin = cut
                node.left = left_id
                node.right = right_id
                tree[left_id] = TreeNode()
                tree[right_id] = TreeNode()
                node_stats[left_id] = (left_grad, left_hess)
                node_stats[right_id] = (
                    parent_grad - left_grad, parent_hess - left_hess
                )
                splits[node_id] = (feature, cut, left_id, right_id)
                next_frontier.extend([left_id, right_id])
            if not splits:
                break

            def route_task(task_ctx, iterator, routing=dict(splits)):
                local = state[task_ctx.partition_id]
                for _ in iterator:
                    pass
                nodes = local["nodes"]
                binned = local["binned"]
                for node_id, (feature, cut, left_id, right_id) in routing.items():
                    mask = nodes == node_id
                    goes_left = binned[mask, feature] <= cut
                    updated = np.where(goes_left, left_id, right_id)
                    nodes[mask] = updated
                task_ctx.charge_flops(nodes.size * 2.0, tag="route")
                return None

            indices_rdd.map_partitions_with_context(
                lambda c, it, fn=route_task: [fn(c, it)]
            ).collect()
            # Prepare children histograms, except at the last level whose
            # children are leaves and will never be split.
            if after_routing is not None and _depth < max_depth - 1:
                after_routing(splits, node_stats, indices_rdd, state,
                              feature_offsets)
            frontier = next_frontier

        # Assign leaf values and update margins.
        for node_id, node in tree.items():
            if node.left is None:
                g, h = node_stats[node_id]
                node.leaf_value = -learning_rate * g / (h + reg_lambda)

        def margin_task(task_ctx, iterator, leaf_tree=dict(tree)):
            local = state[task_ctx.partition_id]
            for _ in iterator:
                pass
            values = np.array(
                [leaf_tree[n].leaf_value or 0.0 for n in sorted(leaf_tree)]
            )
            local["margins"] += values[local["nodes"]]
            task_ctx.charge_flops(local["rows"].size, tag="margin")
            return (
                _logloss(local["margins"], local["labels"])
                * local["rows"].size,
                local["rows"].size,
            )

        stats = indices_rdd.map_partitions_with_context(
            lambda c, it: [margin_task(c, it)]
        ).collect()
        total = sum(s[0] for s in stats)
        count = sum(s[1] for s in stats)
        model.trees.append(tree)
        result.record(ctx.elapsed(), total / max(1, count))
        result.iterations = tree_index + 1

    result.elapsed = ctx.elapsed()
    result.extras["model"] = model
    return result


def _local_histograms(local, feature_offsets, node_id, hist_dim):
    """Per-partition grad/hess histograms for samples in *node_id*."""
    mask = local["nodes"] == node_id
    n_features = feature_offsets.size
    grad_hist = np.zeros(hist_dim)
    hess_hist = np.zeros(hist_dim)
    if mask.any():
        flat = (local["binned"][mask] + feature_offsets).ravel()
        np.add.at(grad_hist, flat, np.repeat(local["grad"][mask], n_features))
        np.add.at(hess_hist, flat, np.repeat(local["hess"][mask], n_features))
    return grad_hist, hess_hist, int(mask.sum())


def _ps2_histogram_exchange(ctx, grad_hist, hess_hist, hist_dim, n_bins,
                            reg_lambda, min_child_weight):
    """PS2 path: push histograms to DCVs, find the split server-side."""

    def exchange(indices_rdd, state, feature_offsets, node_id, parent_grad,
                 parent_hess):
        grad_hist.zero()
        hess_hist.zero()

        def hist_task(task_ctx, iterator):
            local = state[task_ctx.partition_id]
            for _ in iterator:
                pass
            g_hist, h_hist, n_samples = _local_histograms(
                local, feature_offsets, node_id, hist_dim
            )
            task_ctx.charge_flops(
                2.0 * n_samples * feature_offsets.size, tag="hist"
            )
            grad_hist.add(g_hist, task_ctx=task_ctx)
            hess_hist.add(h_hist, task_ctx=task_ctx)
            return n_samples

        indices_rdd.map_partitions_with_context(
            lambda c, it: [hist_task(c, it)]
        ).collect()

        partials = grad_hist.zip(hess_hist).map_partitions(
            kernels.split_gain_kernel,
            args={
                "n_bins": n_bins,
                "parent_grad": parent_grad,
                "parent_hess": parent_hess,
                "reg_lambda": reg_lambda,
                "min_child_weight": min_child_weight,
            },
            n_response_scalars=5,
        )
        # Max gain; ties broken toward the lowest (feature, cut), matching
        # the single-pass enumeration the other exchanges perform.
        return max(
            partials.collect(),
            key=lambda best: (best[0], -best[1], -best[2]),
        )

    return exchange


def _allreduce_histogram_exchange(ctx, hist_dim, n_bins, reg_lambda,
                                  min_child_weight):
    """XGBoost path: ring-AllReduce full histograms, split locally."""

    def exchange(indices_rdd, state, feature_offsets, node_id, parent_grad,
                 parent_hess):
        locals_list = []

        def hist_task(task_ctx, iterator):
            local = state[task_ctx.partition_id]
            for _ in iterator:
                pass
            g_hist, h_hist, n_samples = _local_histograms(
                local, feature_offsets, node_id, hist_dim
            )
            task_ctx.charge_flops(
                2.0 * n_samples * feature_offsets.size, tag="hist"
            )
            locals_list.append((g_hist, h_hist))
            return n_samples

        indices_rdd.map_partitions_with_context(
            lambda c, it: [hist_task(c, it)]
        ).collect()

        # AllReduce the two histograms across every executor.
        from repro.baselines.collectives import ring_allreduce

        executors = ctx.cluster.executors
        ring_allreduce(ctx.cluster, executors, 2 * hist_dim * 8)
        grad_total = np.sum([g for g, _h in locals_list], axis=0)
        hess_total = np.sum([h for _g, h in locals_list], axis=0)
        # Every worker enumerates every candidate split locally.
        for executor in executors:
            ctx.cluster.charge_flops(executor, 6.0 * hist_dim, tag="split-find")
        return kernels.split_gain_kernel(
            [grad_total, hess_total],
            start=0,
            stop=hist_dim,
            n_bins=n_bins,
            parent_grad=parent_grad,
            parent_hess=parent_hess,
            reg_lambda=reg_lambda,
            min_child_weight=min_child_weight,
        )

    return exchange


def _driver_histogram_exchange(ctx, hist_dim, n_bins, reg_lambda,
                               min_child_weight):
    """MLlib path: every worker ships its full histograms to the driver."""
    from repro.cluster.cluster import DRIVER

    def exchange(indices_rdd, state, feature_offsets, node_id, parent_grad,
                 parent_hess):
        def hist_task(task_ctx, iterator):
            local = state[task_ctx.partition_id]
            for _ in iterator:
                pass
            g_hist, h_hist, n_samples = _local_histograms(
                local, feature_offsets, node_id, hist_dim
            )
            task_ctx.charge_flops(
                2.0 * n_samples * feature_offsets.size, tag="hist"
            )
            return (g_hist, h_hist)

        placed = ctx.spark.scheduler.run_stage(
            indices_rdd.map_partitions_with_context(
                lambda c, it: [hist_task(c, it)]
            ),
            lambda c, it: next(iter(it)),
            tag="gbdt-driver-hist",
            gather_results=False,
        )
        grad_total = np.zeros(hist_dim)
        hess_total = np.zeros(hist_dim)
        for executor, (g_hist, h_hist) in placed:
            ctx.cluster.network.transfer(
                executor, DRIVER, 2 * hist_dim * 8, tag="gbdt-driver-gather"
            )
            grad_total += g_hist
            hess_total += h_hist
        ctx.cluster.charge_flops(
            DRIVER, 6.0 * hist_dim + 2.0 * hist_dim * len(placed),
            tag="gbdt-driver-split",
        )
        return kernels.split_gain_kernel(
            [grad_total, hess_total],
            start=0,
            stop=hist_dim,
            n_bins=n_bins,
            parent_grad=parent_grad,
            parent_hess=parent_hess,
            reg_lambda=reg_lambda,
            min_child_weight=min_child_weight,
        )

    return exchange


class _SubtractionHistExchange:
    """PS2 histogram exchange with server-side sibling subtraction.

    Keeps the live histograms of the current tree's nodes on the servers
    (one co-located DCV pair per node).  When a node splits, only the
    smaller child's histogram is rebuilt from data; the larger child's is
    derived on the servers as ``parent - smaller`` — halving (or better)
    both the histogram-building compute and the push traffic per level.
    """

    def __init__(self, ctx, hist_anchor, hist_dim, n_bins, reg_lambda,
                 min_child_weight):
        self.ctx = ctx
        self.anchor = hist_anchor  # any DCV of the histogram pool
        self.hist_dim = hist_dim
        self.n_bins = n_bins
        self.reg_lambda = reg_lambda
        self.min_child_weight = min_child_weight
        self.hists = {}

    def start_tree(self):
        """Release every per-node histogram of the previous tree."""
        for grad_dcv, hess_dcv in self.hists.values():
            grad_dcv.free()
            hess_dcv.free()
        self.hists = {}

    def _build(self, node_id, indices_rdd, state, feature_offsets):
        grad_dcv = self.anchor.derive(name="hist.g%d" % node_id)
        hess_dcv = self.anchor.derive(name="hist.h%d" % node_id)
        grad_dcv.zero()
        hess_dcv.zero()
        hist_dim = self.hist_dim

        def hist_task(task_ctx, iterator):
            local = state[task_ctx.partition_id]
            for _ in iterator:
                pass
            g_hist, h_hist, n_samples = _local_histograms(
                local, feature_offsets, node_id, hist_dim
            )
            task_ctx.charge_flops(
                2.0 * n_samples * feature_offsets.size, tag="hist"
            )
            grad_dcv.add(g_hist, task_ctx=task_ctx)
            hess_dcv.add(h_hist, task_ctx=task_ctx)
            return n_samples

        indices_rdd.map_partitions_with_context(
            lambda c, it: [hist_task(c, it)]
        ).collect()
        self.hists[node_id] = (grad_dcv, hess_dcv)

    def __call__(self, indices_rdd, state, feature_offsets, node_id,
                 parent_grad, parent_hess):
        if node_id not in self.hists:
            # Only the root reaches here without a prepared histogram.
            self._build(node_id, indices_rdd, state, feature_offsets)
        grad_dcv, hess_dcv = self.hists[node_id]
        partials = grad_dcv.zip(hess_dcv).map_partitions(
            kernels.split_gain_kernel,
            args={
                "n_bins": self.n_bins,
                "parent_grad": parent_grad,
                "parent_hess": parent_hess,
                "reg_lambda": self.reg_lambda,
                "min_child_weight": self.min_child_weight,
            },
            n_response_scalars=5,
        )
        return max(
            partials.collect(),
            key=lambda best: (best[0], -best[1], -best[2]),
        )

    def after_routing(self, splits, node_stats, indices_rdd, state,
                      feature_offsets):
        """Prepare the children's histograms: build small, subtract big."""
        for parent, (_feature, _cut, left_id, right_id) in splits.items():
            if node_stats[left_id][1] <= node_stats[right_id][1]:
                smaller, larger = left_id, right_id
            else:
                smaller, larger = right_id, left_id
            self._build(smaller, indices_rdd, state, feature_offsets)
            parent_grad_dcv, parent_hess_dcv = self.hists.pop(parent)
            small_grad_dcv, small_hess_dcv = self.hists[smaller]
            self.hists[larger] = (
                parent_grad_dcv.sub(small_grad_dcv),
                parent_hess_dcv.sub(small_hess_dcv),
            )
            parent_grad_dcv.free()
            parent_hess_dcv.free()
