"""PS2 core: the PS2 context, the DCV abstraction and its operators."""

from repro.core import kernels
from repro.core.context import PS2Context
from repro.core.dcv import DCV
from repro.core.pool import DCVPool
from repro.core.zipop import DCVZip, ZipResult

__all__ = ["kernels", "PS2Context", "DCV", "DCVPool", "DCVZip", "ZipResult"]
