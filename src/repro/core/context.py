"""PS2Context: Spark + parameter servers wired together (Figure 2).

The context owns one simulated cluster and runs both applications on it —
sparklite (driver + executors) for data processing, and the PS module
(master + servers) for model management.  The driver doubles as the
coordinator, as in Section 5.1, and every executor gets a PS-client.

This mirrors the paper's deployment story: Spark and the parameter servers
are *separate applications* sharing a cluster; nothing in sparklite's core
is modified to support the PS.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster, DRIVER
from repro.config import ClusterConfig
from repro.core.dcv import DCV
from repro.core.pool import DCVPool
from repro.ps.client import PSClient
from repro.ps.master import PSMaster
from repro.ps.messages import scalar_op_request_bytes
from repro.ps.partitioner import ColumnLayout
from repro.sparklite.context import SparkContext


class PS2Context:
    """Entry point: create DCVs, parallelize data, train models."""

    def __init__(self, cluster=None, config=None, strict_colocation=False):
        self.cluster = cluster or Cluster(config or ClusterConfig())
        self.spark = SparkContext(self.cluster)
        self.master = PSMaster(self.cluster)
        self.strict_colocation = bool(strict_colocation)
        self.coordinator = DRIVER
        self._clients = {}
        self._pool_counter = 0

    # -- clients ------------------------------------------------------------

    def client_for(self, node_id):
        """The PS-client living on *node_id* (one per executor + coordinator)."""
        if node_id not in self._clients:
            self._clients[node_id] = PSClient(self.cluster, self.master, node_id)
        return self._clients[node_id]

    @property
    def coordinator_client(self):
        return self.client_for(self.coordinator)

    # -- DCV creation ---------------------------------------------------------

    def _new_pool(self, dim, rows, name, allow_growth=True, init="zero",
                  scale=0.01, block=1):
        rotation = self._pool_counter
        self._pool_counter += 1
        layout = ColumnLayout(dim, self.master.n_servers, rotation=rotation,
                              block=block)
        pool_name = name or "dcv%d" % rotation
        return DCVPool(self, dim, rows, layout, pool_name,
                       allow_growth=allow_growth, init=init, scale=scale)

    def dense(self, dim, rows=10, name=None, allow_growth=True, init="zero",
              scale=0.01, block=1):
        """``DCV.dense``: a fresh pool of *rows* co-located slots; row 0 back.

        Each ``dense`` call gets its own placement rotation, so two
        independently created DCVs are **not** co-located — use ``derive``
        on the returned DCV for siblings (Figure 4).  ``init`` is applied
        server-side to every pool row: ``"zero"`` (default), ``"random"``
        (normal * scale) or ``"uniform"`` (centered, half-width *scale*).
        ``block`` aligns partition boundaries to multiples of that many
        columns (GBDT uses it so one feature's histogram bins never straddle
        two servers).
        """
        pool = self._new_pool(dim, rows, name, allow_growth=allow_growth,
                              init=init, scale=scale, block=block)
        matrix_id, row = pool.acquire()
        return DCV(self, pool, matrix_id, row, name=name)

    def sparse(self, dim, rows=10, name=None, allow_growth=True):
        """``DCV.sparse``: as :meth:`dense`, flagged for index-based access."""
        dcv = self.dense(dim, rows=rows, name=name, allow_growth=allow_growth)
        dcv.is_sparse = True
        return dcv

    # -- realignment (the non-co-located slow path) ------------------------------

    def realign(self, src, dst):
        """Copy *src*'s contents into *dst* under *dst*'s layout.

        Every range that lives on a different server under the two layouts
        is shipped server-to-server (tag ``realign``); this is the data
        shuffling across servers that Figure 4 warns about, made explicit
        and measurable.
        """
        network = self.cluster.network
        master = self.master
        for s_srv, s_start, s_stop in src.layout.shards_for_row(src.row):
            network.transfer(
                self.coordinator,
                master.server(s_srv).node_id,
                scalar_op_request_bytes(),
                tag="realign:ctrl",
            )
            for d_srv, d_start, d_stop in dst.layout.shards_for_row(dst.row):
                lo = max(s_start, d_start)
                hi = min(s_stop, d_stop)
                if lo >= hi:
                    continue
                span = np.arange(lo, hi, dtype=np.int64)
                values = master.server(s_srv).read(src.matrix_id, src.row, span)
                if s_srv != d_srv:
                    network.transfer(
                        master.server(s_srv).node_id,
                        master.server(d_srv).node_id,
                        values.nbytes,
                        tag="realign",
                    )
                master.server(d_srv).assign(dst.matrix_id, dst.row, values, span)
        return dst

    # -- convenience ------------------------------------------------------------

    def parallelize(self, data, n_partitions=None, record_flops=None):
        """Distribute *data* as an RDD (delegates to sparklite)."""
        kwargs = {}
        if record_flops is not None:
            kwargs["record_flops"] = record_flops
        return self.spark.parallelize(data, n_partitions=n_partitions, **kwargs)

    def checkpoint(self):
        """Checkpoint every server's model state to reliable storage."""
        self.master.checkpoint_all()

    def elapsed(self):
        """Virtual makespan of everything run on this context so far."""
        return self.cluster.elapsed()

    @property
    def metrics(self):
        return self.cluster.metrics
