"""Dimension Co-located Vector — the paper's core abstraction (Section 4).

A DCV is a distributed vector stored on the parameter servers.  It is
column-partitioned, so row access (pull/push) parallelizes over servers, and
DCVs created from one another via :meth:`derive` are **dimension co-located**:
equal index ranges live on the same server, making element-wise multi-vector
operators pure server-side computation with only scalars on the wire.

Operator sets follow Table 1 of the paper:

=================  ====================================================
row access          ``pull``, ``push``, ``add``, ``sum``, ``nnz``, ``norm2``
column access       ``axpy``/``iaxpy``, ``dot``, ``copy``, ``sub``, ``add_vec``,
                    ``mul``, ``div`` (+ in-place forms, ``scale``, ``zip``)
creation            ``dense``, ``sparse``, ``derive`` (alias ``duplicate``)
=================  ====================================================

Column-access operators between DCVs that are *not* co-located are legal but
slow: the simulator realigns one operand across servers first, charging the
cross-server traffic — the "inefficient writing" of Figure 4.  Constructing
the context with ``strict_colocation=True`` turns that case into
:class:`~repro.common.errors.NotColocatedError` instead.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import DimensionMismatchError, NotColocatedError
from repro.core import kernels
from repro.core.zipop import DCVZip


class DCV:
    """A distributed model vector living on the parameter servers."""

    def __init__(self, ps2, pool, matrix_id, row, name=None, is_sparse=False):
        self.ps2 = ps2
        self.pool = pool
        self.matrix_id = matrix_id
        self.row = int(row)
        self.name = name or "%s[%d]" % (pool.name, row)
        self.is_sparse = is_sparse

    # -- identity ----------------------------------------------------------

    @property
    def dim(self):
        return self.pool.dim

    @property
    def layout(self):
        return self.pool.layout

    def operand(self):
        """The ``(matrix_id, row)`` pair servers address this DCV by."""
        return (self.matrix_id, self.row)

    def is_colocated_with(self, other):
        """True when column ops with *other* need no cross-server traffic."""
        return self.pool is other.pool or self.layout.same_layout(other.layout)

    def __repr__(self):
        return "DCV(%s, dim=%d)" % (self.name, self.dim)

    # -- creation ops --------------------------------------------------------

    @staticmethod
    def dense(ps2, dim, rows=10, name=None):
        """Allocate a fresh pool of *rows* co-located slots; return row 0."""
        return ps2.dense(dim, rows=rows, name=name)

    @staticmethod
    def sparse(ps2, dim, rows=10, name=None):
        """Like :meth:`dense`, flagged sparse (favors index-based access)."""
        return ps2.sparse(dim, rows=rows, name=name)

    def derive(self, name=None):
        """A new DCV co-located with this one (same pool, same layout)."""
        matrix_id, row = self.pool.acquire()
        return DCV(self.ps2, self.pool, matrix_id, row, name=name,
                   is_sparse=self.is_sparse)

    #: Paper Figure 6 uses ``duplicate`` as a synonym for ``derive``.
    duplicate = derive

    def free(self):
        """Return this DCV's slot to its pool (contents become undefined)."""
        self.pool.release(self.operand())

    # -- plumbing -------------------------------------------------------------

    def _client(self, task_ctx=None):
        node = task_ctx.executor if task_ctx is not None else self.ps2.coordinator
        return self.ps2.client_for(node)

    def _check_dim(self, other):
        if self.dim != other.dim:
            raise DimensionMismatchError(
                "dim %d vs %d" % (self.dim, other.dim)
            )

    def _aligned_operand(self, other, task_ctx=None):
        """Return an operand co-located with *self* for *other*.

        Fast path: already co-located.  Slow path: realign *other* into a
        temporary derived DCV, shipping every misplaced range across servers
        (charged under the ``realign`` tag).  The caller must release the
        temporary via the returned cleanup flag.
        """
        self._check_dim(other)
        if self.is_colocated_with(other):
            return other, False
        if self.ps2.strict_colocation:
            raise NotColocatedError(
                "%r and %r are not co-located; use derive() (Figure 4)"
                % (self.name, other.name)
            )
        temp = self.derive(name="%s.realigned" % other.name)
        self.ps2.realign(other, temp)
        return temp, True

    # -- row access ops --------------------------------------------------------

    def pull(self, indices=None, task_ctx=None):
        """Fetch the vector (or selected *indices*) to the calling node.

        Inside a sparklite task pass the :class:`TaskContext` so traffic is
        charged to that executor; without it the coordinator pulls.
        """
        return self._client(task_ctx).pull_row(self.matrix_id, self.row, indices)

    def push(self, values, indices=None, task_ctx=None):
        """Overwrite the vector (or selected *indices*) with *values*."""
        self._client(task_ctx).push_assign(self.matrix_id, self.row,
                                           np.asarray(values, dtype=float),
                                           indices)

    def add(self, values, indices=None, task_ctx=None, defer=True):
        """Accumulate *values* into the vector (the push-add of Figure 3).

        Inside a task with ``defer=True`` (the default) the push runs only
        when the task commits — exactly-once semantics under task retry.
        """
        client = self._client(task_ctx)
        values = np.array(values, dtype=float, copy=True)
        indices = None if indices is None else np.array(indices, copy=True)
        if task_ctx is not None and defer:
            task_ctx.defer(
                lambda: client.push_add(self.matrix_id, self.row, values, indices)
            )
        else:
            client.push_add(self.matrix_id, self.row, values, indices)

    def sum(self, task_ctx=None):
        """Sum of all elements (computed server-side, scalars on the wire)."""
        return self._client(task_ctx).aggregate_row(self.matrix_id, self.row, "sum")

    def nnz(self, task_ctx=None):
        """Number of non-zero elements (server-side)."""
        return int(self._client(task_ctx).aggregate_row(self.matrix_id, self.row,
                                                        "nnz"))

    def norm2(self, task_ctx=None):
        """Euclidean norm (server-side partial sums of squares)."""
        return math.sqrt(
            self._client(task_ctx).aggregate_row(self.matrix_id, self.row, "sumsq")
        )

    # -- column access ops -------------------------------------------------------

    def _execute(self, kernel, operands, args=None, task_ctx=None,
                 n_response_scalars=1, wait_response=True):
        return self._client(task_ctx).execute(
            kernel,
            operands,
            args=args,
            n_response_scalars=n_response_scalars,
            wait_response=wait_response,
        )

    def dot(self, other, task_ctx=None):
        """Dot product with *other*, computed where the data lives."""
        operand, cleanup = self._aligned_operand(other, task_ctx)
        partials = self._execute(
            kernels.dot_kernel, [self.operand(), operand.operand()],
            task_ctx=task_ctx,
        )
        if cleanup:
            operand.free()
        return float(sum(partials))

    def iaxpy(self, other, alpha, task_ctx=None):
        """In-place ``self += alpha * other`` (Figure 6's update step)."""
        operand, cleanup = self._aligned_operand(other, task_ctx)
        self._execute(
            kernels.axpy_kernel, [self.operand(), operand.operand()],
            args={"alpha": float(alpha)}, task_ctx=task_ctx,
            wait_response=False,
        )
        if cleanup:
            operand.free()
        return self

    #: Table 1 names the operator ``axpy``; it is in-place on the receiver.
    axpy = iaxpy

    def copy(self, out=None, task_ctx=None):
        """Server-side copy into *out* (a new derived DCV by default)."""
        if out is None:
            out = self.derive(name="%s.copy" % self.name)
        operand, cleanup = out._aligned_operand(self, task_ctx)
        self._execute(
            kernels.copy_kernel, [out.operand(), operand.operand()],
            task_ctx=task_ctx, wait_response=False,
        )
        if cleanup:
            operand.free()
        return out

    def _binary(self, other, op, out, task_ctx):
        operand, cleanup = self._aligned_operand(other, task_ctx)
        if out is None:
            out = self.derive(name="%s.%s" % (self.name, op))
        elif not out.is_colocated_with(self):
            raise NotColocatedError("output DCV must be co-located")
        self._execute(
            kernels.binary_kernel,
            [out.operand(), self.operand(), operand.operand()],
            args={"op": op}, task_ctx=task_ctx, wait_response=False,
        )
        if cleanup:
            operand.free()
        return out

    def add_vec(self, other, out=None, task_ctx=None):
        """Element-wise ``self + other`` into *out* (new derived DCV if None)."""
        return self._binary(other, "add", out, task_ctx)

    def sub(self, other, out=None, task_ctx=None):
        """Element-wise ``self - other``."""
        return self._binary(other, "sub", out, task_ctx)

    def mul(self, other, out=None, task_ctx=None):
        """Element-wise ``self * other``."""
        return self._binary(other, "mul", out, task_ctx)

    def div(self, other, out=None, task_ctx=None):
        """Element-wise ``self / other``."""
        return self._binary(other, "div", out, task_ctx)

    def _inplace_binary(self, other, op, task_ctx):
        operand, cleanup = self._aligned_operand(other, task_ctx)
        self._execute(
            kernels.inplace_binary_kernel,
            [self.operand(), operand.operand()],
            args={"op": op}, task_ctx=task_ctx, wait_response=False,
        )
        if cleanup:
            operand.free()
        return self

    def iadd(self, other, task_ctx=None):
        """In-place ``self += other``."""
        return self._inplace_binary(other, "add", task_ctx)

    def isub(self, other, task_ctx=None):
        """In-place ``self -= other``."""
        return self._inplace_binary(other, "sub", task_ctx)

    def imul(self, other, task_ctx=None):
        """In-place ``self *= other``."""
        return self._inplace_binary(other, "mul", task_ctx)

    def idiv(self, other, task_ctx=None):
        """In-place ``self /= other``."""
        return self._inplace_binary(other, "div", task_ctx)

    def scale(self, alpha, task_ctx=None):
        """In-place ``self *= alpha``."""
        self._execute(kernels.scale_kernel, [self.operand()],
                      args={"alpha": float(alpha)}, task_ctx=task_ctx,
                      wait_response=False)
        return self

    def shift(self, delta, task_ctx=None):
        """In-place ``self += delta`` (scalar broadcast)."""
        self._execute(kernels.shift_kernel, [self.operand()],
                      args={"delta": float(delta)}, task_ctx=task_ctx,
                      wait_response=False)
        return self

    # -- fills -------------------------------------------------------------------

    def fill(self, value, task_ctx=None):
        """Set every element to *value* (returns self, as in Figure 3)."""
        self._client(task_ctx).fill_row(self.matrix_id, self.row, value)
        return self

    def zero(self, task_ctx=None):
        """Reset to all zeros (the ``gradient.zero()`` of Figure 3)."""
        return self.fill(0.0, task_ctx=task_ctx)

    def randomize(self, scale=0.01, rng=None):
        """Fill with centered uniform noise of half-width *scale*.

        Runs through the coordinator as a dense push; used for model
        initialization where reproducibility across server counts matters.
        """
        if rng is None:
            rng = self.ps2.cluster.rng.get("dcv-init-%s" % self.name)
        values = (rng.random(self.dim) - 0.5) * 2.0 * scale
        self.push(values)
        return self

    # -- zip (multi-vector server-side computation) --------------------------------

    def zip(self, *others):
        """Zip with co-located siblings for a fused server-side kernel.

        ``weight.zip(velocity, square, gradient).map_partitions(fn)`` runs
        ``fn`` once per server over the aligned local arrays (Figure 3,
        lines 21-26).
        """
        return DCVZip(self, others)

    # -- debugging / testing -------------------------------------------------------

    def materialize(self, task_ctx=None):
        """Pull the full vector (dense) — test/debug helper, fully charged."""
        return self.pull(task_ctx=task_ctx)
