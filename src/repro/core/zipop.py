"""``zip`` — fused server-side computation over multiple co-located DCVs.

This is the operator the paper's Figure 3 uses for the Adam model update
(lines 21-26) and Figure 8 uses for GBDT split finding: the coordinator
issues one kernel per server; each server applies the kernel to the aligned
local shard arrays of all zipped DCVs; only per-server scalar partials come
back.
"""

from __future__ import annotations

from repro.common.errors import NotColocatedError


class ZipResult:
    """Per-server partial results of a zip kernel, with driver-side folds."""

    def __init__(self, partials):
        self.partials = list(partials)

    def collect(self):
        """The raw per-server partials, in server order."""
        return list(self.partials)

    def _values(self):
        return [p for p in self.partials if p is not None]

    def sum(self):
        """Sum of the (non-None) partials."""
        return sum(self._values())

    def max(self):
        """Max of the (non-None) partials (tuples compare lexicographically,
        which is how GBDT's ``(gain, split)`` partials pick a winner)."""
        values = self._values()
        if not values:
            raise ValueError("zip kernel returned no partials to maximize")
        return max(values)

    def min(self):
        """Min of the (non-None) partials."""
        values = self._values()
        if not values:
            raise ValueError("zip kernel returned no partials to minimize")
        return min(values)


class DCVZip:
    """A group of co-located DCVs awaiting a fused kernel."""

    def __init__(self, first, others):
        self.dcvs = [first] + list(others)
        for other in self.dcvs[1:]:
            if not first.is_colocated_with(other):
                raise NotColocatedError(
                    "zip requires co-located DCVs; %r and %r differ "
                    "(create siblings with derive())" % (first.name, other.name)
                )

    def map_partitions(self, fn, args=None, task_ctx=None,
                       n_response_scalars=1, flops_per_server=None,
                       wait=True):
        """Run ``fn(arrays, **args)`` on every server's aligned shards.

        ``arrays`` is the list of local 1-D value arrays, one per zipped DCV,
        in zip order; the kernel may mutate them in place.  Returns a
        :class:`ZipResult` of the per-server return values.  Pass
        ``wait=False`` for pure-mutation kernels whose results the caller
        ignores — the requests are then fire-and-forget, like pushes.
        """
        first = self.dcvs[0]
        client = first._client(task_ctx)
        partials = client.execute(
            fn,
            [dcv.operand() for dcv in self.dcvs],
            args=args,
            n_response_scalars=n_response_scalars,
            flops_per_server=flops_per_server,
            wait_response=wait,
        )
        return ZipResult(partials)
