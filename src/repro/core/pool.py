"""The matrix pool backing ``derive``.

Section 4.3: "when allocating one DCV through *dense*, we create a
distributed raw model matrix with k rows, in which (k-1) rows are
pre-allocated for future usage.  Thus, when calling the *derive* method, one
free row from the matrix is returned, and the new derived DCV is guaranteed
to share the same partition strategy with the first row".

When a pool runs out of pre-allocated rows it grows by a whole sibling
matrix with the *same layout* (same rotation), so derived DCVs stay
co-located no matter how many are created.
"""

from __future__ import annotations

from repro.common.errors import PoolExhaustedError


class DCVPool:
    """A group of co-located model-matrix rows handed out to DCVs."""

    def __init__(self, ps2, dim, rows, layout, name, allow_growth=True,
                 init="zero", scale=0.01):
        if rows < 1:
            raise PoolExhaustedError("a pool needs at least one row")
        self.ps2 = ps2
        self.dim = int(dim)
        self.rows_per_segment = int(rows)
        self.layout = layout
        self.name = name
        self.allow_growth = allow_growth
        self.init = init
        self.scale = float(scale)
        self.segments = []
        self._free = []
        self._grow()

    def _grow(self):
        segment_name = "%s/seg%d" % (self.name, len(self.segments))
        matrix_id = self.ps2.master.create_matrix(
            self.dim,
            n_rows=self.rows_per_segment,
            layout=self.layout,
            init=self.init,
            scale=self.scale,
            name=segment_name,
        )
        self.segments.append(matrix_id)
        self._free.extend(
            (matrix_id, row) for row in range(self.rows_per_segment)
        )

    def acquire(self):
        """Hand out one free ``(matrix_id, row)`` slot, growing if needed."""
        if not self._free:
            if not self.allow_growth:
                raise PoolExhaustedError(
                    "pool %r has no free rows (growth disabled)" % (self.name,)
                )
            self._grow()
        return self._free.pop(0)

    def release(self, slot):
        """Return a slot to the pool (its contents are left as-is)."""
        self._free.append(slot)

    @property
    def free_rows(self):
        return len(self._free)

    @property
    def allocated_rows(self):
        return len(self.segments) * self.rows_per_segment - len(self._free)
