"""Server-side kernels backing the DCV column-access operators.

A kernel runs on one server over the locally stored, range-aligned shard
arrays of several co-located DCVs.  It may mutate the arrays in place and
returns at most a few scalars — that is the whole point: heavy element-wise
math stays on the server, only scalars cross the network.
"""

from __future__ import annotations

import numpy as np


def dot_kernel(arrays):
    """Partial dot product of two co-located vectors."""
    x, y = arrays
    return float(np.dot(x, y))


def axpy_kernel(arrays, alpha):
    """In-place ``y += alpha * x`` (operand order: [y, x])."""
    y, x = arrays
    y += alpha * x
    return None


def copy_kernel(arrays):
    """``dst[:] = src`` (operand order: [dst, src])."""
    dst, src = arrays
    dst[:] = src
    return None


def scale_kernel(arrays, alpha):
    """In-place ``x *= alpha``."""
    (x,) = arrays
    x *= alpha
    return None


def shift_kernel(arrays, delta):
    """In-place ``x += delta`` (scalar broadcast)."""
    (x,) = arrays
    x += delta
    return None


def _binary(out, x, y, op):
    if op == "add":
        np.add(x, y, out=out)
    elif op == "sub":
        np.subtract(x, y, out=out)
    elif op == "mul":
        np.multiply(x, y, out=out)
    elif op == "div":
        np.divide(x, y, out=out)
    else:
        raise ValueError("unknown binary op %r" % (op,))


def binary_kernel(arrays, op):
    """``out[:] = x <op> y`` (operand order: [out, x, y])."""
    out, x, y = arrays
    _binary(out, x, y, op)
    return None


def inplace_binary_kernel(arrays, op):
    """``x <op>= y`` (operand order: [x, y])."""
    x, y = arrays
    _binary(x, x, y, op)
    return None


def adam_update_kernel(arrays, lr, beta1, beta2, eps, step):
    """The fused Adam step of Section 3.1, Equation (1).

    Operand order: ``[w, v, s, g]`` — weight, first-moment, second-moment,
    aggregated gradient.  Mutates ``w``, ``v`` and ``s`` in place; ``g`` is
    read-only.  Returns the local squared gradient norm as a progress signal
    (cheap, and exactly the kind of scalar PS2 ships back).

    Note: Equation (1) as printed in the paper applies ``beta1`` to the
    squared-gradient average and ``beta2`` to the gradient average, the
    reverse of Kingma & Ba's Adam.  With Table 4's values (0.9 / 0.999)
    that literal reading means momentum with a ~1000-step memory, which
    oscillates badly; we follow the standard role assignment (``beta1`` =
    first-moment decay, ``beta2`` = second-moment decay), which is surely
    what the production system computes.
    """
    w, v, s, g = arrays
    s *= beta2
    s += (1.0 - beta2) * g * g
    v *= beta1
    v += (1.0 - beta1) * g
    s_hat = s / (1.0 - beta2**step)
    v_hat = v / (1.0 - beta1**step)
    w -= lr * v_hat / (np.sqrt(s_hat) + eps)
    return float(np.dot(g, g))


def sgd_update_kernel(arrays, lr):
    """Plain SGD step: ``w -= lr * g`` (operand order: [w, g])."""
    w, g = arrays
    w -= lr * g
    return None


def adagrad_update_kernel(arrays, lr, eps):
    """Adagrad step (operand order: [w, h, g]); ``h`` accumulates g^2."""
    w, h, g = arrays
    h += g * g
    w -= lr * g / (np.sqrt(h) + eps)
    return None


def rmsprop_update_kernel(arrays, lr, decay, eps):
    """RMSProp step (operand order: [w, h, g])."""
    w, h, g = arrays
    h *= decay
    h += (1.0 - decay) * g * g
    w -= lr * g / (np.sqrt(h) + eps)
    return None


def with_range(kernel):
    """Mark *kernel* as wanting its shard's global ``start``/``stop`` range.

    The server injects ``start=shard.start, stop=shard.stop`` keyword
    arguments, letting kernels that care about global positions (GBDT's
    per-feature histogram blocks) orient themselves.
    """
    kernel._wants_range = True
    return kernel


@with_range
def split_gain_kernel(arrays, start, stop, n_bins, parent_grad, parent_hess,
                      reg_lambda=1.0, min_child_weight=1e-6):
    """GBDT split finding over co-located grad/hess histograms (Figure 8).

    Operand order: ``[grad, hess]``; the DCVs hold histograms flattened as
    ``feature * n_bins + bin``.  The kernel enumerates cut positions of every
    feature whose bin block is fully contained in this shard (footnote 5 of
    the paper: "enumerate the same elements of grad and hess ... find the
    place that yields the maximal loss gain").  Features straddling a server
    boundary are skipped by that server — at most ``n_servers - 1`` of them,
    a documented approximation of the simulator.

    Returns ``(gain, feature, cut_bin, left_grad, left_hess)`` for this
    server's best cut, or gain ``-inf`` when it owns no complete feature.
    """
    grad, hess = arrays
    best = (-np.inf, -1, -1, 0.0, 0.0)
    parent_score = parent_grad**2 / (parent_hess + reg_lambda)
    feature = start // n_bins
    if feature * n_bins < start:
        feature += 1
    while (feature + 1) * n_bins <= stop:
        lo = feature * n_bins - start
        grad_left = np.cumsum(grad[lo : lo + n_bins])[:-1]
        hess_left = np.cumsum(hess[lo : lo + n_bins])[:-1]
        grad_right = parent_grad - grad_left
        hess_right = parent_hess - hess_left
        gains = (
            grad_left**2 / (hess_left + reg_lambda)
            + grad_right**2 / (hess_right + reg_lambda)
            - parent_score
        )
        invalid = (hess_left < min_child_weight) | (hess_right < min_child_weight)
        gains[invalid] = -np.inf
        cut = int(np.argmax(gains))
        if gains[cut] > best[0]:
            best = (
                float(gains[cut]),
                int(feature),
                cut,
                float(grad_left[cut]),
                float(hess_left[cut]),
            )
        feature += 1
    return best
