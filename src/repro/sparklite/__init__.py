"""sparklite: a miniature Spark (driver, executors, RDDs) over the simulator."""

from repro.sparklite.broadcast import Broadcast
from repro.sparklite.context import SparkContext
from repro.sparklite.rdd import (
    CachedRDD,
    MapPartitionsRDD,
    ParallelizedRDD,
    RDD,
    RECORD_FLOPS,
    SampledRDD,
)
from repro.sparklite.scheduler import (
    Scheduler,
    TASK_DESCRIPTION_BYTES,
    TASK_OVERHEAD_SECONDS,
)
from repro.sparklite.task import TaskContext, with_context

__all__ = [
    "Broadcast",
    "SparkContext",
    "CachedRDD",
    "MapPartitionsRDD",
    "ParallelizedRDD",
    "RDD",
    "RECORD_FLOPS",
    "SampledRDD",
    "Scheduler",
    "TASK_DESCRIPTION_BYTES",
    "TASK_OVERHEAD_SECONDS",
    "TaskContext",
    "with_context",
]
