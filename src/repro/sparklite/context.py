"""SparkContext, miniature edition: the driver-side entry point."""

from __future__ import annotations

from repro.cluster.cluster import Cluster, DRIVER
from repro.common.errors import SparkliteError
from repro.sparklite.broadcast import Broadcast
from repro.sparklite.rdd import ParallelizedRDD, RECORD_FLOPS
from repro.sparklite.scheduler import Scheduler


class SparkContext:
    """Driver handle for creating RDDs and broadcasts on a cluster."""

    def __init__(self, cluster=None):
        self.cluster = cluster or Cluster()
        self.scheduler = Scheduler(self.cluster)

    @property
    def n_executors(self):
        return len(self.cluster.executors)

    @property
    def driver(self):
        return DRIVER

    def parallelize(self, data, n_partitions=None, record_flops=RECORD_FLOPS):
        """Distribute *data* across ``n_partitions`` (default: one/executor).

        Elements are dealt round-robin so partition sizes differ by at most
        one; the driver->executor distribution cost for the initial data is
        charged once, here.
        """
        data = list(data)
        if n_partitions is None:
            n_partitions = self.n_executors
        if n_partitions <= 0:
            raise SparkliteError("n_partitions must be positive")
        partitions = [[] for _ in range(n_partitions)]
        for index, element in enumerate(data):
            partitions[index % n_partitions].append(element)
        rdd = ParallelizedRDD(self, partitions, record_flops=record_flops)
        self._charge_distribution(rdd)
        return rdd

    def _charge_distribution(self, rdd):
        """Charge shipping each base partition from the driver to its executor.

        In production the data comes from HDFS; reading a partition costs
        roughly one network transfer of its bytes, which this models.
        """
        from repro.common.sizeof import sizeof

        load_start = self.cluster.clock.now(DRIVER)
        for partition_id in range(rdd.get_num_partitions()):
            executor = self.scheduler.executor_for(partition_id)
            nbytes = sizeof(rdd._partitions[partition_id])
            self.cluster.network.transfer(
                DRIVER, executor, nbytes, tag="data-load"
            )
        self.cluster.barrier([DRIVER] + self.cluster.executors)
        tracer = self.cluster.tracer
        if tracer.enabled:
            tracer.record(
                DRIVER, "data-load", load_start,
                self.cluster.clock.now(DRIVER), cat="stage",
                n_partitions=rdd.get_num_partitions(),
            )

    def broadcast(self, value, nbytes=None):
        """Ship *value* to every executor and return the broadcast handle."""
        bc = Broadcast(self.cluster, value, nbytes=nbytes)
        bc.ship()
        return bc

    def elapsed(self):
        """Virtual makespan of everything run on this context so far."""
        return self.cluster.elapsed()
