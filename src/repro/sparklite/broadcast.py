"""Driver-side broadcast variables.

Spark's TorrentBroadcast splits the value into chunks that executors then
exchange peer-to-peer, so the driver seeds each chunk once and every NIC
moves roughly one copy of the value — broadcast does NOT incast at the
driver.  (That is why Figure 1(b)'s bottleneck is gradient *aggregation*,
which has no torrent equivalent, not the model broadcast.)

``mode="naive"`` keeps the W-copies-through-one-NIC behavior for ablations.
"""

from __future__ import annotations

from repro.cluster.cluster import DRIVER
from repro.common.sizeof import sizeof


class Broadcast:
    """An immutable value shipped from the driver to all executors."""

    _next_id = 0

    def __init__(self, cluster, value, nbytes=None, mode="torrent"):
        self.broadcast_id = Broadcast._next_id
        Broadcast._next_id += 1
        self.cluster = cluster
        self._value = value
        self.nbytes = int(nbytes) if nbytes is not None else sizeof(value)
        self.mode = mode
        self._shipped = False

    @property
    def value(self):
        return self._value

    def ship(self):
        """Transfer the value to every executor (idempotent)."""
        if self._shipped:
            return
        executors = self.cluster.executors
        network = self.cluster.network
        if self.mode == "naive" or len(executors) == 1:
            for executor in executors:
                network.transfer(DRIVER, executor, self.nbytes, tag="broadcast")
        else:
            # Torrent: the driver seeds one chunk per executor; executors
            # then exchange the remaining (W-1)/W peer-to-peer.  Chunked
            # pipelining means nobody waits for a full copy before
            # forwarding, so the exchange departs right after seeding
            # rather than chaining around the ring.
            n = len(executors)
            chunk = self.nbytes / n
            seeded = [
                network.transfer(DRIVER, executor, chunk, tag="broadcast")
                for executor in executors
            ]
            pipeline_start = max(seeded)
            rest = self.nbytes - chunk
            for position, executor in enumerate(executors):
                peer = executors[(position + 1) % n]
                network.transfer(
                    executor, peer, rest, tag="broadcast",
                    depart_at=pipeline_start,
                )
        self._shipped = True

    def destroy(self):
        """Release the value (subsequent ``ship`` calls re-send)."""
        self._shipped = False
