"""Resilient distributed datasets, miniature edition.

An RDD is a lineage of per-partition transformations over materialized base
data.  Transformations (``map``, ``filter``, ``map_partitions``, ``sample``,
...) are lazy; actions (``collect``, ``reduce``, ``aggregate``, ``foreach``,
...) submit a stage to the scheduler, which runs one task per partition on
the simulated executors and ships results back to the driver with full
network-cost accounting.

The subset implemented is exactly what the paper's workloads exercise: data
parallel map/aggregate pipelines with driver-side combination — there is no
shuffle, because none of the four workloads needs one.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import SparkliteError
from repro.common.rng import RngRegistry
from repro.common.sizeof import sizeof
from repro.sparklite.task import call_partition_function, with_context

#: Default compute charge for scanning one record off a base partition.
RECORD_FLOPS = 100.0


class RDD:
    """Base class: a partitioned, lazily transformed dataset."""

    def __init__(self, context, n_partitions):
        self.context = context
        self.n_partitions = int(n_partitions)

    # -- lineage ----------------------------------------------------------

    def compute(self, ctx, partition_id):
        """Yield the elements of *partition_id* (subclasses implement)."""
        raise NotImplementedError

    def get_num_partitions(self):
        return self.n_partitions

    def base_partition_nbytes(self, partition_id):
        """Bytes of the base data behind *partition_id* (None if unknown).

        Used by the scheduler to charge the input reload when a partition
        moves to a replacement executor after an executor failure.
        """
        parent = getattr(self, "parent", None)
        if parent is not None:
            return parent.base_partition_nbytes(partition_id)
        return None

    # -- transformations --------------------------------------------------

    def map_partitions(self, func):
        """Apply ``func(iterator)`` (or ``func(ctx, iterator)`` if marked
        via :func:`repro.sparklite.task.with_context`) to each partition."""
        return MapPartitionsRDD(self, func)

    def map_partitions_with_context(self, func):
        """Like :meth:`map_partitions` but ``func`` takes ``(ctx, iterator)``."""
        return MapPartitionsRDD(self, with_context(func))

    def map(self, func):
        """Element-wise transformation."""
        return self.map_partitions(lambda it: (func(x) for x in it))

    def flat_map(self, func):
        """Element-wise one-to-many transformation."""
        return self.map_partitions(
            lambda it: (y for x in it for y in func(x))
        )

    def filter(self, predicate):
        """Keep elements where *predicate* holds."""
        return self.map_partitions(lambda it: (x for x in it if predicate(x)))

    def sample(self, fraction, seed=0):
        """Bernoulli sample of roughly *fraction* of each partition.

        A new *seed* gives a new sample; the same seed always gives the same
        sample, which is how minibatch SGD draws a fresh batch per iteration.
        """
        if not 0.0 <= fraction <= 1.0:
            raise SparkliteError("sample fraction must be in [0, 1]")
        return SampledRDD(self, fraction, seed)

    def cache(self):
        """Materialize each partition on first computation and reuse it."""
        return CachedRDD(self)

    # -- actions ----------------------------------------------------------

    def collect(self):
        """All elements, gathered at the driver."""

        def action(ctx, iterator):
            return list(iterator)

        parts = self.context.scheduler.run_stage(self, action, tag="collect")
        return [x for part in parts for x in part]

    def count(self):
        """Number of elements."""

        def action(ctx, iterator):
            return sum(1 for _ in iterator)

        parts = self.context.scheduler.run_stage(self, action, tag="count")
        return int(sum(parts))

    def reduce(self, func):
        """Fold all elements with a commutative, associative *func*."""

        def action(ctx, iterator):
            acc = None
            empty = True
            for x in iterator:
                acc = x if empty else func(acc, x)
                empty = False
            return (empty, acc)

        parts = self.context.scheduler.run_stage(self, action, tag="reduce")
        values = [acc for empty, acc in parts if not empty]
        if not values:
            raise SparkliteError("reduce on an empty RDD")
        result = values[0]
        for value in values[1:]:
            result = func(result, value)
        return result

    def aggregate(self, zero_value, seq_op, comb_op):
        """Per-partition fold (``seq_op``) then driver-side merge (``comb_op``).

        This is the operation Spark MLlib's gradient aggregation uses; all
        per-partition results travel to the single driver (Figure 1's
        bottleneck).
        """

        def action(ctx, iterator):
            acc = _copy_zero(zero_value)
            for x in iterator:
                acc = seq_op(acc, x)
            return acc

        parts = self.context.scheduler.run_stage(self, action, tag="aggregate")
        result = _copy_zero(zero_value)
        for part in parts:
            result = comb_op(result, part)
        return result

    def tree_aggregate(self, zero_value, seq_op, comb_op, depth=2):
        """Aggregate with intermediate combining on executors.

        Extension beyond the paper's MLlib profile: partial results are
        merged pairwise among executors before the (smaller number of)
        survivors reach the driver, reducing driver incast by ~2^depth.
        """

        def action(ctx, iterator):
            acc = _copy_zero(zero_value)
            for x in iterator:
                acc = seq_op(acc, x)
            return acc

        scheduler = self.context.scheduler
        parts = scheduler.run_stage(
            self, action, tag="tree-aggregate", gather_results=False
        )
        return scheduler.tree_combine(parts, zero_value, comb_op, depth=depth)

    def sum(self):
        """Sum of (numeric) elements; 0.0 when empty."""

        def action(ctx, iterator):
            return float(sum(iterator))

        parts = self.context.scheduler.run_stage(self, action, tag="sum")
        return float(sum(parts))

    def max(self):
        """Largest element."""
        return self.reduce(lambda a, b: a if a >= b else b)

    def min(self):
        """Smallest element."""
        return self.reduce(lambda a, b: a if a <= b else b)

    def foreach(self, func=None):
        """Run every partition for its side effects (a global barrier).

        PS2 uses this exactly as the paper's Figure 3 does: after workers
        ``add`` gradients to a DCV inside ``map_partitions``, ``foreach()``
        forces the stage, guaranteeing all pushes have been applied.
        """
        rdd = self if func is None else self.map(func)

        def action(ctx, iterator):
            for _ in iterator:
                pass
            return None

        rdd.context.scheduler.run_stage(rdd, action, tag="foreach")

    def foreach_partition(self, func):
        """Run ``func(iterator)`` on each partition for side effects."""

        def action(ctx, iterator):
            call_partition_function(func, ctx, iterator)
            return None

        self.context.scheduler.run_stage(self, action, tag="foreach")

    def take(self, n):
        """First *n* elements (computes everything; fine at this scale)."""
        return self.collect()[:n]


def _copy_zero(zero_value):
    """Fresh copy of an aggregation zero (mutable zeros must not be shared)."""
    if isinstance(zero_value, np.ndarray):
        return zero_value.copy()
    if isinstance(zero_value, (list, dict, set)):
        return type(zero_value)(zero_value)
    return zero_value


class ParallelizedRDD(RDD):
    """Base data distributed from the driver, one list per partition."""

    def __init__(self, context, partitions, record_flops=RECORD_FLOPS):
        super().__init__(context, len(partitions))
        self._partitions = [list(p) for p in partitions]
        self.record_flops = float(record_flops)

    def compute(self, ctx, partition_id):
        data = self._partitions[partition_id]
        if self.record_flops and data:
            ctx.charge_flops(self.record_flops * len(data), tag="scan")
        return iter(data)

    def partition_sizes(self):
        return [len(p) for p in self._partitions]

    def base_partition_nbytes(self, partition_id):
        return sizeof(self._partitions[partition_id])


class MapPartitionsRDD(RDD):
    """Lazy per-partition transformation of a parent RDD."""

    def __init__(self, parent, func):
        super().__init__(parent.context, parent.n_partitions)
        self.parent = parent
        self.func = func

    def compute(self, ctx, partition_id):
        upstream = self.parent.compute(ctx, partition_id)
        return iter(call_partition_function(self.func, ctx, upstream))


class SampledRDD(RDD):
    """Seeded Bernoulli sample of the parent."""

    def __init__(self, parent, fraction, seed):
        super().__init__(parent.context, parent.n_partitions)
        self.parent = parent
        self.fraction = float(fraction)
        self.seed = int(seed)

    def compute(self, ctx, partition_id):
        rng = RngRegistry(self.seed).get("sample-%d" % partition_id)
        fraction = self.fraction
        upstream = self.parent.compute(ctx, partition_id)
        return (x for x in upstream if rng.random() < fraction)


class CachedRDD(RDD):
    """Materializes each partition once, then serves it from memory."""

    def __init__(self, parent):
        super().__init__(parent.context, parent.n_partitions)
        self.parent = parent
        self._storage = {}

    def compute(self, ctx, partition_id):
        if partition_id not in self._storage:
            self._storage[partition_id] = list(
                self.parent.compute(ctx, partition_id)
            )
        return iter(self._storage[partition_id])

    def unpersist(self):
        """Drop the cached partitions; the lineage recomputes on next use."""
        self._storage.clear()

    def is_cached(self, partition_id):
        return partition_id in self._storage


def estimate_result_bytes(result):
    """Wire size of a task result shipped back to the driver."""
    return sizeof(result)
