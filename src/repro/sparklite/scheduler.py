"""Stage/task scheduler over the simulated cluster.

One action = one stage = one task per partition.  Tasks are assigned to
executors round-robin, launched with a small driver->executor control
message, retried on injected failures (discarding any deferred PS effects,
which is the exactly-once push guarantee), and their results are shipped to
the driver through the shared network model — so driver incast is charged
exactly as the paper measures it.
"""

from __future__ import annotations

from repro.cluster.cluster import DRIVER
from repro.common.errors import JobAbortedError, TaskError
from repro.common.sizeof import sizeof
from repro.sparklite.task import TaskContext

#: Control-plane message carrying a serialized task closure.
TASK_DESCRIPTION_BYTES = 512

#: Fixed per-task launch overhead on the executor (deserialization, setup).
TASK_OVERHEAD_SECONDS = 1e-3


class Scheduler:
    """Runs stages of tasks over the cluster's executors."""

    def __init__(self, cluster):
        self.cluster = cluster
        self._next_stage_id = 0
        self.tasks_launched = 0
        self.tasks_failed = 0
        self._placements = {}

    def executor_for(self, partition_id):
        """Deterministic partition -> executor placement over live executors.

        When an executor dies its partitions redistribute over the
        survivors; the first task touching a moved partition is charged the
        input reload (Section 5.3's executor-failure recovery).
        """
        executors = self.cluster.alive_executors
        if not executors:
            raise JobAbortedError("no live executors remain")
        return executors[partition_id % len(executors)]

    def run_stage(self, rdd, action, tag="stage", gather_results=True):
        """Execute ``action(ctx, iterator)`` once per partition.

        Returns the per-partition results (gathered at the driver) or, with
        ``gather_results=False``, a list of ``(executor_id, result)`` pairs
        left in place on the executors.
        """
        stage_id = self._next_stage_id
        self._next_stage_id += 1
        results = []
        arrivals = []
        committed = []
        network = self.cluster.network
        failures = self.cluster.failures
        tracer = self.cluster.tracer
        clock = self.cluster.clock
        # The stage barrier is a consistency-policy decision: under BSP
        # (model.barrier) executors start stages from the driver's clock and
        # the driver blocks on every result; under SSP/ASP the driver
        # pre-dispatches work (task descriptions still pay their bytes, but
        # deliver=False: they do not gate the executor) and each worker is
        # gated only by the model's own sync rule (TaskContext.sync_clock).
        model = self.cluster.consistency
        metrics = self.cluster.metrics
        stage_start = clock.now(DRIVER)
        # Hoisted off the per-task loop: these names are rebuilt for every
        # task otherwise (thousands of times per training run).
        task_span_name = "task:" + tag
        result_tag = tag + ":result"
        n_partitions = rdd.get_num_partitions()

        # The stage span stays open for the whole stage so everything it
        # causes hangs off it in the trace DAG: task spans (explicit
        # parent_id — they live on *executor* clocks), driver-side control
        # transfers (task-launch, recovery reloads, result gathering; via
        # trace_parent), and whatever PS traffic the tasks issue (via the
        # transport's trace_ctx).  The critical-path walk starts here.
        with tracer.span(DRIVER, "stage:%d:%s" % (stage_id, tag),
                         cat="stage",
                         n_tasks=n_partitions) as stage_span:
            stage_parent = None if stage_span is None else stage_span.span_id
            for partition_id in range(n_partitions):
                executor = self.executor_for(partition_id)
                # Executors run their queued tasks after the driver
                # submitted the stage, but in parallel with each other.
                if model.barrier:
                    self.cluster.clock.set_at_least(executor, stage_start)
                # Apply scheduled executor crashes that are due by now: the
                # dead executor's partitions redistribute over the survivors
                # (Section 5.3 — "launches a new executor and reloads that
                # partition of training data from the input").
                while failures.due_executor_failures(executor,
                                                     clock.now(executor)):
                    self.cluster.fail_executor(executor)
                    executor = self.executor_for(partition_id)
                    if model.barrier:
                        self.cluster.clock.set_at_least(executor, stage_start)
                previous = self._placements.get(partition_id)
                if previous is not None and previous != executor:
                    # The partition moved (executor failure): reload input.
                    nbytes = rdd.base_partition_nbytes(partition_id) or 0
                    network.transfer(
                        DRIVER, executor, nbytes, tag="executor-recovery",
                        trace_parent=stage_parent,
                    )
                    metrics.increment("partition-reloads")
                self._placements[partition_id] = executor
                attempt = 0
                while True:
                    self.tasks_launched += 1
                    network.transfer(
                        DRIVER, executor, TASK_DESCRIPTION_BYTES,
                        tag="task-launch", deliver=model.barrier,
                        trace_parent=stage_parent,
                    )
                    self.cluster.charge_seconds(
                        executor, TASK_OVERHEAD_SECONDS, tag="task-overhead"
                    )
                    ctx = TaskContext(
                        self.cluster, executor, stage_id, partition_id, attempt
                    )
                    task_start = clock.now(executor)
                    try:
                        with tracer.span(executor, task_span_name, cat="task",
                                         parent_id=stage_parent,
                                         stage=stage_id,
                                         partition=partition_id,
                                         attempt=attempt):
                            result = action(
                                ctx, rdd.compute(ctx, partition_id)
                            )
                    except TaskError:
                        raise
                    except Exception as exc:
                        ctx.abandon()
                        raise TaskError(
                            "task failed on %s: %r" % (executor, exc),
                            stage_id=stage_id,
                            partition_id=partition_id,
                            attempt=attempt,
                        ) from exc
                    metrics.observe("task", clock.now(executor) - task_start)
                    if failures.should_fail_task():
                        # The attempt's compute and pull traffic was already
                        # charged (it really happened); its deferred pushes
                        # are dropped so a retry can never double-apply them.
                        ctx.abandon()
                        self.tasks_failed += 1
                        metrics.increment("task-retries")
                        attempt += 1
                        if attempt > failures.max_task_retries:
                            raise JobAbortedError(
                                "partition %d of stage %d exhausted %d retries"
                                % (partition_id, stage_id,
                                   failures.max_task_retries)
                            )
                        continue
                    if model.commit_at_barrier:
                        committed.append(ctx)
                    else:
                        # Async pipelining: the task's deferred pushes apply
                        # as soon as it succeeds (still after the retry
                        # decision, so still exactly-once under task retry).
                        ctx.commit()
                    break
                if gather_results:
                    arrivals.append(
                        network.transfer(
                            executor, DRIVER, sizeof(result),
                            tag=result_tag, deliver=False,
                            trace_parent=stage_parent,
                        )
                    )
                    results.append(result)
                else:
                    results.append((executor, result))

            # Apply deferred side effects (PS pushes) only now, after every
            # task of the stage has computed.  Tasks of one stage must never
            # observe each other's pushes — that is exactly what Spark's
            # stage barrier guarantees, and what keeps the sequentially-
            # simulated tasks statistically identical to truly concurrent
            # ones.
            for ctx in committed:
                ctx.commit()

            # Stage barrier: the driver proceeds only once every result
            # landed.  (Results are gathered with deliver=False so that
            # tasks run in parallel; syncing per-result would serialize the
            # stage.)  Under SSP/ASP the driver's per-stage aggregation is
            # pipelined control work off the workers' critical path: result
            # bytes are still charged, but the driver clock does not chase
            # the slowest worker.
            if arrivals and model.barrier:
                clock.set_at_least(DRIVER, max(arrivals))
        stage_end = clock.now(DRIVER)
        metrics.observe("stage", stage_end - stage_start)
        # Post-barrier hooks (periodic checkpoint sweeps, time-series
        # window flushes): run once per stage, after every result landed,
        # on the driver's clock.
        for hook in self.cluster.stage_end_hooks:
            hook()
        return results

    def tree_combine(self, placed_results, zero_value, comb_op, depth=2):
        """Pairwise executor-side combining before the driver merge.

        ``placed_results`` is the ``(executor, result)`` list produced by
        ``run_stage(..., gather_results=False)``.  Each round halves the
        number of live partials by shipping odd-indexed partials to their
        even-indexed neighbor, charging the transfer and a combine cost on
        the receiving executor.
        """
        survivors = list(placed_results)
        network = self.cluster.network
        for _ in range(max(0, depth)):
            if len(survivors) <= 1:
                break
            merged = []
            for i in range(0, len(survivors), 2):
                if i + 1 >= len(survivors):
                    merged.append(survivors[i])
                    continue
                dst_exec, dst_val = survivors[i]
                src_exec, src_val = survivors[i + 1]
                network.transfer(
                    src_exec, dst_exec, sizeof(src_val), tag="tree-combine"
                )
                combined = comb_op(dst_val, src_val)
                self.cluster.charge_flops(
                    dst_exec, max(1.0, sizeof(src_val) / 8.0), tag="tree-combine"
                )
                merged.append((dst_exec, combined))
            survivors = merged

        from repro.sparklite.rdd import _copy_zero

        result = _copy_zero(zero_value)
        for executor, value in survivors:
            network.transfer(executor, DRIVER, sizeof(value), tag="tree-combine")
            result = comb_op(result, value)
        return result
