"""Task-side context handed to every partition function.

The context lets user code charge compute cost to the executor's virtual
clock and defer side effects (parameter-server pushes) until the task
commits.  Deferral is what gives PS2 its exactly-once push semantics under
task retry (Section 5.3 of the paper): the push is the last action of a
task, so a retried task never double-pushes.
"""

from __future__ import annotations


class TaskContext:
    """Per-attempt state visible to partition functions."""

    def __init__(self, cluster, executor, stage_id, partition_id, attempt):
        self.cluster = cluster
        self.executor = executor
        self.stage_id = stage_id
        self.partition_id = partition_id
        self.attempt = attempt
        self._deferred = []

    def charge_flops(self, flops, tag="task"):
        """Charge *flops* of compute to this task's executor."""
        self.cluster.charge_flops(self.executor, flops, tag=tag)

    def charge_seconds(self, seconds, tag="task"):
        """Charge an explicit duration to this task's executor."""
        self.cluster.charge_seconds(self.executor, seconds, tag=tag)

    def sync_clock(self):
        """Gate this task under the cluster's consistency model.

        Call at task start.  Under BSP this is an exact no-op (the stage
        barrier already synchronized); under SSP it blocks the executor —
        charging the wait to its virtual clock — until the staleness bound
        permits this worker's next logical clock to begin.
        """
        self.cluster.consistency.sync(self.cluster, self.executor)

    def advance_clock(self):
        """Tick this worker's logical clock (call at task end).

        Under BSP an exact no-op.  Under SSP/ASP it records the clock's
        completion time for other workers' gates and fires the cluster's
        clock-advance hooks (worker-cache version renewal).
        """
        self.cluster.consistency.advance(self.cluster, self.executor)

    def defer(self, effect):
        """Register a zero-argument callable to run iff the task commits."""
        self._deferred.append(effect)

    def commit(self):
        """Run the deferred effects (called by the scheduler on success)."""
        for effect in self._deferred:
            effect()
        self._deferred = []

    def abandon(self):
        """Drop the deferred effects (called by the scheduler on failure)."""
        self._deferred = []


def call_partition_function(func, ctx, iterator):
    """Invoke *func* with or without the TaskContext, by arity convention.

    Partition functions may be written as ``f(iterator)`` (Spark style) or
    ``f(ctx, iterator)`` when they need cost charging / deferred effects.
    The two-argument form is detected via a function attribute set by
    :func:`with_context`, avoiding fragile signature inspection of lambdas.
    """
    if getattr(func, "_wants_task_context", False):
        return func(ctx, iterator)
    return func(iterator)


def with_context(func):
    """Mark *func* as taking ``(ctx, iterator)`` instead of ``(iterator)``."""
    func._wants_task_context = True
    return func
