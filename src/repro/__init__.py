"""repro — a full reproduction of *PS2: Parameter Server on Spark* (SIGMOD'19).

Public entry points:

- :class:`repro.PS2Context` — create DCVs, parallelize data, train models;
- :class:`repro.DCV` — the Dimension Co-located Vector abstraction;
- :class:`repro.ClusterConfig` — size/shape of the simulated deployment;
- ``repro.ml`` — LR, SVM, DeepWalk, GBDT, LDA on top of PS2;
- ``repro.baselines`` — MLlib-, Petuum-, XGBoost-, Glint- and DistML-style
  comparators running on the same simulated substrate;
- ``repro.data`` — seeded synthetic analogues of the paper's datasets.
"""

from repro.config import ClusterConfig, FailureConfig, NetworkSpec, NodeSpec
from repro.cluster.cluster import Cluster
from repro.core.context import PS2Context
from repro.core.dcv import DCV

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "FailureConfig",
    "NetworkSpec",
    "NodeSpec",
    "Cluster",
    "PS2Context",
    "DCV",
    "__version__",
]
