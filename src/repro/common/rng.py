"""Deterministic random-number management.

Every stochastic component in the simulator (data generators, minibatch
sampling, failure injection, LDA Gibbs chains, ...) draws from a
:class:`numpy.random.Generator` obtained through :class:`RngRegistry`, so a
single top-level seed reproduces an entire experiment bit-for-bit.
"""

from __future__ import annotations

import zlib

import numpy as np


def _stable_hash(name):
    """Return a stable 32-bit hash of *name* (Python's ``hash`` is salted)."""
    return zlib.crc32(name.encode("utf-8"))


class RngRegistry:
    """Hands out independent, named random generators from one root seed.

    The generator for a given ``(root_seed, name)`` pair is always the same
    stream, regardless of the order in which names are requested.  This keeps
    e.g. failure injection independent from minibatch sampling: adding one
    does not perturb the other.
    """

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._generators = {}

    def get(self, name):
        """Return the generator dedicated to *name*, creating it on first use."""
        if name not in self._generators:
            stream_seed = (self.seed * 0x9E3779B1 + _stable_hash(name)) % (2**63)
            self._generators[name] = np.random.default_rng(stream_seed)
        return self._generators[name]

    def spawn(self, name):
        """Return a child registry whose streams are independent of this one."""
        return RngRegistry((self.seed * 31 + _stable_hash(name)) % (2**63))


def generator(seed, name="default"):
    """One-shot helper: a named generator without keeping a registry around."""
    return RngRegistry(seed).get(name)
