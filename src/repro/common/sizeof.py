"""Wire-size estimation for simulated network transfers.

The network cost model charges time proportional to the number of bytes a
message would occupy on the wire.  These helpers estimate that size for the
payload types the system actually ships: numpy arrays, sparse index/value
pairs, scalars and small containers.  Sizes are estimates of a compact binary
encoding (as PS2's Netty/Protobuf transport would produce), not of Python's
in-memory representation.
"""

from __future__ import annotations

import numpy as np

#: Fixed per-message envelope: headers, routing metadata, protobuf framing.
MESSAGE_OVERHEAD_BYTES = 64

#: Bytes per dense float64 element.
FLOAT_BYTES = 8

#: Bytes per transmitted integer index (64-bit keys, as in production PS2).
INDEX_BYTES = 8


def sizeof(payload):
    """Return the estimated wire size in bytes of *payload* (sans envelope).

    Supports ``None``, numbers, strings/bytes, numpy arrays and (nested)
    lists/tuples/dicts of those.  Unknown objects fall back to a conservative
    fixed cost so that forgetting a case never makes traffic free.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bool, int, float, np.integer, np.floating)):
        return FLOAT_BYTES
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, dict):
        return sum(sizeof(key) + sizeof(value) for key, value in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(sizeof(item) for item in payload)
    return 256


def dense_row_bytes(length):
    """Wire size of a dense float64 row of *length* elements."""
    return int(length) * FLOAT_BYTES


def sparse_row_bytes(nnz):
    """Wire size of a sparse row: index/value pairs for *nnz* entries."""
    return int(nnz) * (INDEX_BYTES + FLOAT_BYTES)


def message_bytes(payload):
    """Total message size: payload plus the fixed envelope."""
    return sizeof(payload) + MESSAGE_OVERHEAD_BYTES
