"""Exception hierarchy shared by every repro subsystem.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  Subsystem-specific bases (:class:`ClusterError`,
:class:`SparkliteError`, :class:`PSError`, :class:`DCVError`) exist so tests can
assert on the failing layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class ClusterError(ReproError):
    """Base class for errors raised by the simulated cluster substrate."""


class UnknownNodeError(ClusterError):
    """A node id was used that is not registered in the cluster."""


class NetworkPartitionedError(ClusterError):
    """A transfer was attempted into (or out of) a partitioned node.

    Raised by the network model while a scheduled partition window covers
    either endpoint; the PS client retries the op under its retry policy,
    so transient partitions cost time, not correctness.
    """


class SparkliteError(ReproError):
    """Base class for errors raised by the sparklite dataflow engine."""


class TaskError(SparkliteError):
    """A task raised an exception on an executor.

    Carries the task coordinates so the scheduler can decide on a retry.
    """

    def __init__(self, message, stage_id=None, partition_id=None, attempt=None):
        super().__init__(message)
        self.stage_id = stage_id
        self.partition_id = partition_id
        self.attempt = attempt


class InjectedTaskFailure(TaskError):
    """A failure raised on purpose by the failure injector (fault-tolerance tests)."""


class JobAbortedError(SparkliteError):
    """A job was abandoned after a task exhausted its retry budget."""


class PSError(ReproError):
    """Base class for errors raised by the parameter-server substrate."""


class MatrixNotFoundError(PSError):
    """A matrix id was referenced that the PS master does not know about."""


class ServerDownError(PSError):
    """A request was routed to a server that is currently failed."""


class DCVError(ReproError):
    """Base class for errors raised by the DCV layer."""


class NotColocatedError(DCVError):
    """A column-access operator was applied to DCVs with different partitioners.

    Raised only in ``strict`` co-location mode; the default mode executes the
    operation anyway and charges the cross-server realignment cost, matching
    the "inefficient writing" example in Figure 4 of the paper.
    """


class PoolExhaustedError(DCVError):
    """``derive`` was called on a pool with no free rows and growth disabled."""


class DimensionMismatchError(DCVError):
    """Two DCVs with different dimensions were combined."""
