"""Command-line interface: quick demos and dataset/experiment utilities.

Usage (``python -m repro <command>``):

- ``quickcheck`` — a 10-second end-to-end sanity run (DCV ops + LR training)
  that prints PASS/FAIL per check;
- ``dataset <name>`` — generate a Table-2 analogue and print its statistics;
- ``train <workload>`` — train one of the paper's workloads on its default
  analogue and print the loss curve;
- ``trace <workload>`` — same run with tracing enabled: writes a
  ``chrome://tracing``-compatible JSON and prints the observability report
  (latency percentiles, server utilization, hot shards);
- ``critical-path <workload>`` — traced run that prints the whole-run and
  per-stage critical-path attribution (compute / network / queueing /
  staleness-wait / retry-backoff over virtual time);
- ``profile <workload>`` — train one workload under ``cProfile`` and print
  the hottest *host* frames (where the simulator itself burns CPU, as
  opposed to where virtual time goes — that is ``critical-path``);
- ``serve <scenario>`` — replay a named online-serving scenario (Zipf
  traffic over a lazy embedding table) and print the serving report;
  ``--elastic`` turns the autoscaler on (live shard migration included);
- ``bench-gate`` — compare ``BENCH_*.json`` benchmark records against
  checked-in baselines and fail on makespan/byte regressions;
- ``experiments`` — list every table/figure benchmark and how to run it.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_quickcheck(_args):
    from repro.config import ClusterConfig
    from repro.core.context import PS2Context
    from repro.data import sparse_classification
    from repro.ml import train_logistic_regression
    from repro.ml.optim import Adam

    checks = []
    ctx = PS2Context(config=ClusterConfig(n_executors=4, n_servers=4, seed=1))
    w = ctx.dense(1000, rows=4)
    g = w.derive().fill(2.0)
    w.push(np.arange(1000.0))
    checks.append(("pull round trip", bool(np.allclose(w.pull(),
                                                       np.arange(1000.0)))))
    checks.append(("server-side dot",
                   abs(w.dot(g) - 2 * np.arange(1000.0).sum()) < 1e-6))
    checks.append(("co-location", w.is_colocated_with(g)))
    rows, _ = sparse_classification(400, 1000, 12, seed=1)
    result = train_logistic_regression(
        ctx, rows, 1000, optimizer=Adam(learning_rate=0.2),
        n_iterations=15, batch_fraction=0.5, seed=1,
    )
    checks.append(("LR loss decreases",
                   result.final_loss < result.history[0][1]))
    checks.append(("virtual time advanced", ctx.elapsed() > 0))

    failed = False
    for name, ok in checks:
        print("%-24s %s" % (name, "PASS" if ok else "FAIL"))
        failed = failed or not ok
    return 1 if failed else 0


def _cmd_dataset(args):
    from repro.data import CATALOG, dataset

    if args.name not in CATALOG:
        print("unknown dataset %r; have: %s"
              % (args.name, ", ".join(sorted(CATALOG))))
        return 1
    spec_obj = CATALOG[args.name]
    data = dataset(args.name, seed=args.seed)
    print("dataset:  %s (%s analogue)" % (spec_obj.name, spec_obj.model))
    print("paper:    %s" % (spec_obj.paper_stats,))
    print("params:   %s" % (spec_obj.params,))
    if spec_obj.model in ("LR", "SVM"):
        nnz = sum(r.nnz for r in data)
        print("generated: %d rows, %d non-zeros" % (len(data), nnz))
    elif spec_obj.model == "LDA":
        print("generated: %d docs, %d tokens"
              % (len(data), sum(d.size for d in data)))
    elif spec_obj.model == "GBDT":
        print("generated: %d rows x %d features" % data[0].shape)
    else:
        adjacency, walks = data
        print("generated: %d vertices, %d walks" % (len(adjacency), len(walks)))
    return 0


_WORKLOADS = ("lr", "svm", "fm", "deepwalk", "line", "gbdt", "lda")


def _run_workload(ctx, workload, iterations, seed):
    """Train *workload* on its default analogue over *ctx*; returns result."""
    from repro.data import dataset, spec

    if workload == "lr":
        from repro.ml import train_logistic_regression

        rows = dataset("kddb", seed=seed)
        return train_logistic_regression(
            ctx, rows, spec("kddb").params["dim"], optimizer="adam",
            n_iterations=iterations, batch_fraction=0.1, seed=seed)
    if workload == "svm":
        from repro.ml import train_svm

        rows = dataset("kddb", seed=seed)
        return train_svm(ctx, rows, spec("kddb").params["dim"],
                         n_iterations=iterations,
                         batch_fraction=0.1, seed=seed)
    if workload == "fm":
        from repro.data import sparse_classification
        from repro.ml import train_fm

        rows, _ = sparse_classification(600, 2000, 12, seed=seed)
        return train_fm(ctx, rows, 2000, n_factors=8,
                        n_iterations=iterations,
                        batch_fraction=0.5, seed=seed)
    if workload == "deepwalk":
        from repro.ml import train_deepwalk

        _adjacency, walks = dataset("graph1", seed=seed)
        n_vertices = max(int(w.max()) for w in walks) + 1
        return train_deepwalk(ctx, walks, n_vertices, embedding_dim=32,
                              n_iterations=iterations, seed=seed)
    if workload == "line":
        from repro.ml import train_line

        adjacency, _walks = dataset("graph1", seed=seed)
        return train_line(ctx, adjacency, embedding_dim=32,
                          learning_rate=0.05,
                          n_iterations=iterations, seed=seed)
    if workload == "gbdt":
        from repro.ml import train_gbdt

        features, labels = dataset("gender", seed=seed)
        return train_gbdt(ctx, features, labels,
                          n_trees=iterations, max_depth=4, n_bins=16,
                          seed=seed)
    from repro.ml import train_lda

    docs = dataset("pubmed", seed=seed)
    return train_lda(ctx, docs, spec("pubmed").params["vocab"],
                     n_topics=24, n_iterations=iterations, seed=seed)


def _cmd_train(args):
    from repro.experiments import make_context

    ctx = make_context(n_executors=args.executors, n_servers=args.servers,
                       seed=args.seed)
    result = _run_workload(ctx, args.workload, args.iterations, args.seed)

    print("system:   %s" % result.system)
    print("workload: %s" % result.workload)
    for t, loss in result.history:
        print("  t=%9.4fs  loss=%.6f" % (t, loss))
    print("virtual time: %.4f s   (wall time is much smaller; see DESIGN.md)"
          % result.elapsed)
    return 0


def _cmd_trace(args):
    from repro.experiments import make_context
    from repro.obs import render_report, write_chrome_trace

    ctx = make_context(n_executors=args.executors, n_servers=args.servers,
                       seed=args.seed)
    ctx.cluster.tracer.enable()
    result = _run_workload(ctx, args.workload, args.iterations, args.seed)

    path = write_chrome_trace(ctx.cluster.tracer, args.out)
    print(render_report(
        ctx.cluster,
        title="%s on %s (%d iterations)"
        % (result.system, result.workload, args.iterations),
    ))
    print()
    print("final loss:   %.6f" % result.final_loss)
    print("virtual time: %.4f s" % result.elapsed)
    print("chrome trace: %s  (open in chrome://tracing or ui.perfetto.dev)"
          % path)
    return 0


def _cmd_critical_path(args):
    from repro.experiments import make_context
    from repro.obs import critical_path as cp

    ctx = make_context(n_executors=args.executors, n_servers=args.servers,
                       seed=args.seed, consistency=args.consistency,
                       staleness=args.staleness)
    ctx.cluster.tracer.enable()
    result = _run_workload(ctx, args.workload, args.iterations, args.seed)

    tracer = ctx.cluster.tracer
    run = cp.analyze(tracer)
    print(run.render(title="%s on %s (%d iterations)"
                     % (result.system, result.workload, args.iterations)))
    stages = cp.stage_breakdowns(tracer)
    if stages and args.stages:
        print()
        for span, breakdown in stages:
            print(breakdown.render(title=span.op))
    print()
    print("virtual makespan: %.6f s   final loss: %.6f"
          % (result.elapsed, result.final_loss))
    return 0


def _cmd_profile(args):
    from cProfile import Profile
    import pstats

    from repro.experiments import make_context

    ctx = make_context(n_executors=args.executors, n_servers=args.servers,
                       seed=args.seed)
    profiler = Profile()
    profiler.enable()
    result = _run_workload(ctx, args.workload, args.iterations, args.seed)
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort)
    print("host profile: %s on %s (%d iterations, virtual makespan %.4f s)"
          % (result.system, result.workload, args.iterations, result.elapsed))
    print()
    stats.print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print("profile dump: %s  (open with snakeviz or pstats)" % args.out)
    return 0


def _cmd_serve(args):
    from repro.experiments import make_context
    from repro.obs import render_report
    from repro.serving.scenario import SCENARIOS, run_serving

    if args.scenario not in SCENARIOS:
        print("unknown scenario %r; have: %s"
              % (args.scenario, ", ".join(sorted(SCENARIOS))))
        return 1
    ctx = make_context(
        n_executors=args.workers, n_servers=args.servers, seed=args.seed,
        timeseries_window=args.window,
        elasticity="auto" if args.elastic else None,
    )
    result = run_serving(ctx, args.scenario)
    print(render_report(
        ctx.cluster,
        title="serving scenario %r (%s)"
        % (args.scenario, "elastic" if args.elastic else "static"),
    ))
    print()
    print("requests served: %d  (SLO violations: %d)"
          % (result["requests"], result["violations"]))
    print("embedding rows created lazily: %d" % result["created_rows"])
    print("final topology: %d servers / %d workers"
          % (result["n_servers"], result["n_workers"]))
    for event in result["events"]:
        print("  t=%8.4fs scale %-4s (%s) -> %d servers / %d workers"
              % (event["time"], event["direction"],
                 ",".join(event["actions"]),
                 event["n_servers"], event["n_workers"]))
    return 0


def _cmd_bench_gate(args):
    from repro.obs import bench

    tolerances = {}
    if args.makespan_tolerance is not None:
        tolerances["makespan_s"] = args.makespan_tolerance
    if args.bytes_tolerance is not None:
        tolerances["total_wire_bytes"] = args.bytes_tolerance
    failures, notes = bench.gate(args.results, args.baselines,
                                 tolerances or None)
    for note in notes:
        print("note: %s" % note)
    if failures:
        for failure in failures:
            print("REGRESSION: %s" % failure)
        print("\nbench gate FAILED (%d regression(s)).  If the drift is"
              " intentional, regenerate the baselines under %s."
              % (len(failures), args.baselines))
        return 1
    print("bench gate passed.")
    return 0


def _cmd_experiments(_args):
    entries = [
        ("Figure 1", "benchmarks/bench_fig01_mllib_analysis.py"),
        ("Figure 9(a,b)", "benchmarks/bench_fig09_dcv_lr.py"),
        ("Figure 9(c,d)", "benchmarks/bench_fig09_dcv_deepwalk.py"),
        ("Figure 10", "benchmarks/bench_fig10_lr_end2end.py"),
        ("Figure 11", "benchmarks/bench_fig11_gbdt.py"),
        ("Figure 12", "benchmarks/bench_fig12_lda.py"),
        ("Figure 13(a,b)", "benchmarks/bench_fig13_scalability.py"),
        ("Figure 13(c)", "benchmarks/bench_fig13_fault_tolerance.py"),
        ("Table 2", "benchmarks/bench_table2_datasets.py"),
        ("Table 3", "benchmarks/bench_table3_capabilities.py"),
        ("Table 4", "benchmarks/bench_table4_hyperparams.py"),
        ("Ablations", "benchmarks/bench_ablation_colocation.py, "
                      "benchmarks/bench_ablation_hist_subtraction.py"),
    ]
    print("Run any experiment with:")
    print("  pytest <file> --benchmark-only -s\n")
    for name, target in entries:
        print("  %-14s %s" % (name, target))
    print("\nAll at once: pytest benchmarks/ --benchmark-only")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PS2 (SIGMOD'19) reproduction utilities",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("quickcheck", help="10-second end-to-end sanity run")

    p_dataset = sub.add_parser("dataset", help="generate a Table-2 analogue")
    p_dataset.add_argument("name")
    p_dataset.add_argument("--seed", type=int, default=0)

    p_train = sub.add_parser("train", help="train one paper workload")
    p_train.add_argument("workload", choices=_WORKLOADS)
    p_train.add_argument("--iterations", type=int, default=10)
    p_train.add_argument("--executors", type=int, default=8)
    p_train.add_argument("--servers", type=int, default=8)
    p_train.add_argument("--seed", type=int, default=0)

    p_trace = sub.add_parser(
        "trace", help="train one workload with tracing; write a chrome trace"
    )
    p_trace.add_argument("workload", choices=_WORKLOADS)
    p_trace.add_argument("--iterations", type=int, default=5)
    p_trace.add_argument("--executors", type=int, default=8)
    p_trace.add_argument("--servers", type=int, default=8)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", default="trace.json",
                         help="chrome-trace JSON output path")

    p_cp = sub.add_parser(
        "critical-path",
        help="train one workload traced; print the critical-path breakdown",
    )
    p_cp.add_argument("workload", choices=_WORKLOADS)
    p_cp.add_argument("--iterations", type=int, default=5)
    p_cp.add_argument("--executors", type=int, default=8)
    p_cp.add_argument("--servers", type=int, default=8)
    p_cp.add_argument("--seed", type=int, default=0)
    p_cp.add_argument("--consistency", choices=("bsp", "ssp", "asp"),
                      default="bsp")
    p_cp.add_argument("--staleness", type=int, default=0)
    p_cp.add_argument("--stages", action="store_true",
                      help="also print the per-stage breakdowns")

    p_profile = sub.add_parser(
        "profile",
        help="train one workload under cProfile; print the hottest frames",
    )
    p_profile.add_argument("workload", choices=_WORKLOADS)
    p_profile.add_argument("--iterations", type=int, default=5)
    p_profile.add_argument("--executors", type=int, default=8)
    p_profile.add_argument("--servers", type=int, default=8)
    p_profile.add_argument("--seed", type=int, default=0)
    p_profile.add_argument("--top", type=int, default=25,
                           help="number of frames to print (default 25)")
    p_profile.add_argument("--sort", default="tottime",
                           choices=("tottime", "cumtime", "ncalls"),
                           help="pstats sort key (default tottime)")
    p_profile.add_argument("--out", default=None,
                           help="also dump raw pstats data to this path")

    p_serve = sub.add_parser(
        "serve", help="replay an online-serving scenario; print the report"
    )
    p_serve.add_argument("scenario",
                         help="scenario name (smoke, step, diurnal)")
    p_serve.add_argument("--workers", type=int, default=2)
    p_serve.add_argument("--servers", type=int, default=2)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--window", type=float, default=0.25,
                         help="time-series window width in virtual seconds")
    p_serve.add_argument("--elastic", action="store_true",
                         help="enable the autoscaler (elasticity mode auto)")

    p_gate = sub.add_parser(
        "bench-gate",
        help="compare BENCH_*.json records against checked-in baselines",
    )
    p_gate.add_argument("--results", default="benchmarks/results",
                        help="directory holding the fresh BENCH_*.json")
    p_gate.add_argument("--baselines", default="benchmarks/baselines",
                        help="directory holding the checked-in baselines")
    p_gate.add_argument("--makespan-tolerance", type=float, default=None,
                        help="relative makespan tolerance (default 0.05)")
    p_gate.add_argument("--bytes-tolerance", type=float, default=None,
                        help="relative wire-bytes tolerance (default 0.02)")

    sub.add_parser("experiments", help="list the table/figure benchmarks")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    handlers = {
        "quickcheck": _cmd_quickcheck,
        "dataset": _cmd_dataset,
        "train": _cmd_train,
        "trace": _cmd_trace,
        "critical-path": _cmd_critical_path,
        "profile": _cmd_profile,
        "serve": _cmd_serve,
        "bench-gate": _cmd_bench_gate,
        "experiments": _cmd_experiments,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
