"""Virtual-time-windowed time series over the metrics registry.

End-of-run aggregates answer "how much", but regime questions — is p99
degrading while the cluster rebalances, does the NIC backlog grow without
bound under a load step, when does the cache warm up — need "how much *per
window of virtual time*".  The :class:`TimeSeriesSampler` folds the
registry's cumulative counters into fixed-width windows of the simulated
clock:

- **rates** per window: bytes sent per node, requests served per server
  (deltas of the cumulative counters, divided by the window width);
- **windowed latency**: a fresh :class:`StreamingHistogram` per op tag per
  window, fed by :class:`~repro.cluster.metrics.MetricsRegistry.observe`
  through the registry's ``window_sink`` hook — so ``p99 over the last
  window`` is a real windowed percentile, not a running total;
- **gauges** sampled at the window boundary: per-node NIC backlog (how far
  the NIC reservation horizon runs past the boundary, via
  ``NetworkModel.nic_horizon``) and the worker-cache hit rate of the
  window's hits/misses.

The sampler is *passive*: it only reads clocks, counters and resource
horizons, and is polled (``maybe_flush``) from the scheduler's stage-end
hook and after every PS client op.  It never advances a clock, books a
resource or changes a counter, so a run with time series enabled is
bit-identical to one without.

Attribution note: activity lands in the window that is *open when the next
flush check runs*, not at its own virtual timestamp — with checks after
every client op the skew is bounded by one op.  When several boundaries
pass between checks, everything since the last flush lands in the first
closing window and the rest close empty, keeping the series aligned.
"""

from __future__ import annotations

from repro.obs.histogram import StreamingHistogram


class Window:
    """One closed sampling window ``[start, end)`` of virtual time."""

    __slots__ = ("start", "end", "bytes_sent", "requests", "cache_hits",
                 "cache_misses", "latency", "nic_backlog")

    def __init__(self, start, end):
        self.start = float(start)
        self.end = float(end)
        #: node -> bytes put on the wire during the window.
        self.bytes_sent = {}
        #: server node -> requests served during the window.
        self.requests = {}
        self.cache_hits = {}
        self.cache_misses = {}
        #: op tag -> :meth:`StreamingHistogram.summary` of the window.
        self.latency = {}
        #: node -> seconds of NIC reservations outstanding past ``end``.
        self.nic_backlog = {}

    @property
    def width(self):
        return self.end - self.start

    def byte_rate(self, node_id):
        """Bytes/second *node_id* sent during this window."""
        return self.bytes_sent.get(node_id, 0.0) / self.width

    def request_rate(self, node_id):
        """Requests/second served by *node_id* during this window."""
        return self.requests.get(node_id, 0) / self.width

    def cache_hit_rate(self, node_id=None):
        """Hit fraction of the window's cache lookups (None = all nodes)."""
        if node_id is None:
            hits = sum(self.cache_hits.values())
            misses = sum(self.cache_misses.values())
        else:
            hits = self.cache_hits.get(node_id, 0)
            misses = self.cache_misses.get(node_id, 0)
        total = hits + misses
        return hits / total if total else 0.0

    def to_dict(self):
        """Plain-dict form (report rendering, BENCH records)."""
        return {
            "start": self.start,
            "end": self.end,
            "bytes_sent": dict(self.bytes_sent),
            "requests": dict(self.requests),
            "cache_hits": dict(self.cache_hits),
            "cache_misses": dict(self.cache_misses),
            "latency": dict(self.latency),
            "nic_backlog": dict(self.nic_backlog),
        }


class TimeSeriesSampler:
    """Folds cumulative metrics into aligned virtual-time windows."""

    def __init__(self, cluster, window):
        if window <= 0:
            raise ValueError("window must be positive, got %r" % (window,))
        self.cluster = cluster
        self.window = float(window)
        #: Closed :class:`Window` records in time order.
        self.windows = []
        self._next_boundary = self.window
        self._open_hists = {}
        # Cumulative-counter baselines as of the last closed window.
        self._prev_bytes = {}
        self._prev_requests = {}
        self._prev_hits = {}
        self._prev_misses = {}

    # -- feeding -----------------------------------------------------------

    def observe(self, tag, seconds):
        """Mirror one latency observation into the open window's histogram.

        Called by ``MetricsRegistry.observe`` through the ``window_sink``
        hook; never called directly by instrumentation.
        """
        hist = self._open_hists.get(tag)
        if hist is None:
            hist = self._open_hists[tag] = StreamingHistogram()
        hist.record(seconds)

    # -- flushing ----------------------------------------------------------

    def maybe_flush(self):
        """Close every window whose boundary the virtual clock has passed.

        Polled from the scheduler's stage-end hook and after client ops.
        Cheap when no boundary passed (one clock read and a comparison).
        """
        now = self.cluster.elapsed()
        while now >= self._next_boundary:
            self._close(self._next_boundary)
            self._next_boundary += self.window

    def finalize(self):
        """Close the trailing partial window if it saw any activity.

        The final window keeps the aligned width (its ``end`` is the next
        boundary) so series stay rectangular; call once at end of run
        before rendering/serializing.
        """
        self.maybe_flush()
        if (self._open_hists
                or self._delta(self.cluster.metrics.bytes_sent,
                               self._prev_bytes)
                or self._delta(self.cluster.metrics.requests_by_server,
                               self._prev_requests)):
            self._close(self._next_boundary)
            self._next_boundary += self.window
        return self.windows

    @staticmethod
    def _delta(current, baseline):
        """``{key: current - baseline}`` with zero deltas dropped.

        Iterates without indexing so defaultdict counters are never
        mutated by the read.
        """
        out = {}
        for key, value in current.items():
            d = value - baseline.get(key, 0)
            if d:
                out[key] = d
        return out

    def _close(self, boundary):
        metrics = self.cluster.metrics
        network = self.cluster.network
        w = Window(boundary - self.window, boundary)
        w.bytes_sent = self._delta(metrics.bytes_sent, self._prev_bytes)
        w.requests = self._delta(metrics.requests_by_server,
                                 self._prev_requests)
        w.cache_hits = self._delta(metrics.cache_hits, self._prev_hits)
        w.cache_misses = self._delta(metrics.cache_misses, self._prev_misses)
        w.latency = {tag: hist.summary()
                     for tag, hist in self._open_hists.items()}
        for node_id in self.cluster.node_ids:
            send_h, recv_h = network.nic_horizon(node_id)
            backlog = max(send_h, recv_h) - boundary
            if backlog > 0:
                w.nic_backlog[node_id] = backlog
        self.windows.append(w)
        self._prev_bytes = dict(metrics.bytes_sent)
        self._prev_requests = dict(metrics.requests_by_server)
        self._prev_hits = dict(metrics.cache_hits)
        self._prev_misses = dict(metrics.cache_misses)
        self._open_hists = {}

    # -- queries -----------------------------------------------------------

    def series(self, metric, key=None, q=None):
        """One aligned series over all closed windows.

        ``metric`` selects the per-window quantity:

        - ``"byte_rate"`` / ``"request_rate"``: per-*key* (node id) rates;
        - ``"cache_hit_rate"``: hit fraction (*key* optional);
        - ``"nic_backlog"``: per-*key* gauge seconds;
        - ``"latency"``: the *q* summary field (``"p99"`` etc.) of op tag
          *key*, 0.0 in windows where the tag was silent.

        Returns ``[(window_end, value)]`` — one point per window, silent
        windows included, so several series align by construction.
        """
        points = []
        for w in self.windows:
            if metric == "byte_rate":
                value = w.byte_rate(key)
            elif metric == "request_rate":
                value = w.request_rate(key)
            elif metric == "cache_hit_rate":
                value = w.cache_hit_rate(key)
            elif metric == "nic_backlog":
                value = w.nic_backlog.get(key, 0.0)
            elif metric == "latency":
                value = w.latency.get(key, {}).get(q or "p99", 0.0)
            else:
                raise ValueError("unknown series metric %r" % (metric,))
            points.append((w.end, value))
        return points
