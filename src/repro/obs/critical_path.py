"""Critical-path attribution over the causal span DAG.

Given a traced run, "where did the time go?" means: walk backward from the
makespan-defining span and, at every instant, attribute the elapsed virtual
time to whatever was *last* on the causal chain — the gradient kernel that
was computing, the NIC transfer in flight, the SSP gate the worker sat in,
the retry backoff it burned.  This is the compute/communication/waiting
breakdown Dünner et al. use to explain distributed ML on Spark, computed
here from the span DAG the transport's ``trace_ctx`` threading connects.

Attribution categories
----------------------

- ``compute`` — server CPU service slots (``cat="cpu"``) and task-span
  residual (executor-local math is charged to clocks, not sub-spanned);
- ``network`` — NIC send/receive reservations;
- ``queueing`` — client-op and stage residual: time the causal chain was
  blocked on responses, scheduling, or CPU-queue waits not covered by a
  child span;
- ``staleness-wait`` — SSP gate waits;
- ``retry-backoff`` — failure-detection timeouts and retry penalties;
- ``idle`` — gaps between root spans (only in whole-run walks);
- ``other`` — anything uncategorized (should stay ~0).

The walk partitions the analyzed interval *exactly*: within one span, time
covered by a child belongs to the child's walk and the rest to the span's
own category, recursively — so the categories sum to the root span's
duration by construction (the acceptance bar for the stage-makespan
criterion).  Overlapping children are resolved latest-end-first: a child
whose interval is covered by later critical work is skipped, which is
precisely the "last thing blocking completion" rule.
"""

from __future__ import annotations

from collections import defaultdict

#: Category display order for reports.
CATEGORIES = ("compute", "network", "queueing", "staleness-wait",
              "retry-backoff", "idle", "other")


def categorize(span):
    """The attribution category of *span*'s own (residual) time."""
    if span.op == "retry-backoff":
        return "retry-backoff"
    if span.op == "staleness-wait":
        return "staleness-wait"
    if span.cat in ("nic-send", "nic-recv"):
        return "network"
    if span.cat in ("cpu", "task"):
        return "compute"
    if span.cat in ("op", "stage"):
        return "queueing"
    return "other"


class CriticalPathResult:
    """Per-category virtual seconds attributed along one walk."""

    def __init__(self, categories, total, terminal=None):
        #: ``{category: seconds}`` (every key of :data:`CATEGORIES` present).
        self.categories = {cat: categories.get(cat, 0.0)
                           for cat in CATEGORIES}
        #: The analyzed interval's length; the categories sum to it.
        self.total = float(total)
        #: The makespan-defining span the walk started from (run walks).
        self.terminal = terminal

    def fraction(self, category):
        return (self.categories.get(category, 0.0) / self.total
                if self.total else 0.0)

    def to_dict(self):
        return {"total": self.total, "categories": dict(self.categories)}

    def render(self, title="critical path"):
        lines = ["== %s ==" % title,
                 "total attributed: %.6f virtual seconds" % self.total]
        for cat in CATEGORIES:
            seconds = self.categories[cat]
            if seconds <= 0 and cat in ("idle", "other"):
                continue
            lines.append("  %-15s %12.6f s  %5.1f%%"
                         % (cat, seconds, 100.0 * self.fraction(cat)))
        return "\n".join(lines)


def _index_children(tracer):
    """``{parent_id: [closed children, latest end first]}`` (None = roots)."""
    children = defaultdict(list)
    for span in tracer.spans:
        if span.end is None:
            continue
        children[span.parent_id].append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.end, s.start), reverse=True)
    return children


def _walk(span, hi, children, acc):
    """Attribute ``[span.start, min(hi, span.end)]`` between *span* and its
    children; within-span gaps go to *span*'s own category."""
    t = min(hi, span.end)
    own = categorize(span)
    for child in children.get(span.span_id, ()):
        if child.end > t:
            # Covered by later critical work we already walked through.
            continue
        if child.end <= span.start:
            break
        if t > child.end:
            acc[own] += t - child.end
        _walk(child, child.end, children, acc)
        t = max(child.start, span.start)
        if t <= span.start:
            break
    if t > span.start:
        acc[own] += t - span.start


def from_span(tracer, span, children=None):
    """Critical-path breakdown of one (closed) span's interval.

    The categories sum to ``span.duration`` exactly — the walk partitions
    the interval.
    """
    if children is None:
        children = _index_children(tracer)
    acc = defaultdict(float)
    _walk(span, span.end, children, acc)
    return CriticalPathResult(acc, span.duration, terminal=span)


def analyze(tracer):
    """Whole-run breakdown: walk backward from the latest-ending root.

    Root spans (no causal parent) partition the run; gaps between them —
    times when nothing traced was on the chain — are ``idle``.  The
    categories sum to the latest root's end time (the traced makespan).
    """
    children = _index_children(tracer)
    roots = children.get(None, [])
    acc = defaultdict(float)
    if not roots:
        return CriticalPathResult(acc, 0.0)
    terminal = roots[0]
    t = terminal.end
    for root in roots:
        if root.end > t:
            continue
        if t > root.end:
            acc["idle"] += t - root.end
        _walk(root, root.end, children, acc)
        t = root.start
        if t <= 0.0:
            break
    if t > 0.0:
        acc["idle"] += t
    return CriticalPathResult(acc, terminal.end, terminal=terminal)


def stage_breakdowns(tracer):
    """``[(stage span, CriticalPathResult)]`` for every closed stage span.

    Each result's categories sum to that stage's makespan exactly — the
    per-stage form of the whole-run walk, used by the BENCH artifact's
    consistency check.
    """
    children = _index_children(tracer)
    out = []
    for span in tracer.spans:
        if span.cat == "stage" and span.end is not None:
            out.append((span, from_span(tracer, span, children=children)))
    return out
