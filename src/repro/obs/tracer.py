"""Structured tracing over the simulated cluster's virtual clocks.

A :class:`Span` is one operation on one node with a virtual start/end time:
a client-side PS op (pull/push/kernel), a server CPU service slot, a NIC
send/receive, a sparklite task or stage.  Spans nest: the tracer keeps a
per-node stack, so a pull issued inside a task becomes the task span's
child, exactly as a thread-local would do in a real system.

Cross-node causality: instrumentation that knows its causal parent lives on
*another* node passes ``parent_id`` explicitly (the scheduler parents task
spans to the stage span on the driver; the PS transport threads a
``trace_ctx`` through typed messages so server CPU slots and NIC bookings
parent to the client op that caused them).  Every span also carries a
``trace_id`` — the span id of its root ancestor — so all work caused by one
logical operation shares one id regardless of which nodes served it.

Timestamps come from the :class:`~repro.cluster.simclock.SimClock` (or are
passed explicitly by instrumentation that already knows its reserved
interval, e.g. a NIC booking).  The tracer only ever *reads* clocks — it
never advances them — so enabling tracing cannot perturb the cost model:
a traced run and an untraced run of the same workload are byte-identical.

When disabled (the default), every entry point returns immediately: no
span objects are allocated and ``span()`` hands back a shared no-op
context manager, so instrumented hot paths cost one attribute check.
"""

from __future__ import annotations

import itertools


class Span:
    """One traced operation: a named interval on one node's timeline."""

    __slots__ = ("span_id", "parent_id", "trace_id", "node", "op", "cat",
                 "start", "end", "args")

    def __init__(self, span_id, parent_id, node, op, cat, start, end=None,
                 args=None, trace_id=None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = span_id if trace_id is None else trace_id
        self.node = node
        self.op = op
        self.cat = cat
        self.start = float(start)
        self.end = None if end is None else float(end)
        self.args = args or {}

    @property
    def duration(self):
        """Virtual seconds covered (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def __repr__(self):
        return "Span(%s %r on %s [%.6f, %s))" % (
            self.cat, self.op, self.node, self.start,
            "..." if self.end is None else "%.6f" % self.end,
        )


class _NullSpan:
    """Shared do-nothing context manager returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager that closes *span* at the node's clock on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self._span = span

    def __enter__(self):
        return self._span

    def __exit__(self, *exc):
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Collects spans against a set of virtual clocks."""

    def __init__(self, clock, enabled=False):
        self.clock = clock
        self.enabled = bool(enabled)
        self.spans = []
        self._ids = itertools.count()
        self._stacks = {}
        #: span_id -> trace_id of every span seen (open or recorded), so an
        #: explicit cross-node ``parent_id`` can inherit its trace.
        self._trace_ids = {}

    # -- lifecycle ---------------------------------------------------------

    def enable(self):
        self.enabled = True

    def disable(self):
        self.enabled = False

    def clear(self):
        """Drop every recorded span (open stacks included)."""
        self.spans = []
        self._stacks.clear()
        self._trace_ids.clear()

    def __len__(self):
        return len(self.spans)

    # -- recording ---------------------------------------------------------

    def _lineage(self, node, parent_id):
        """Resolve ``(parent_id, trace_id)`` for a new span on *node*.

        An explicit *parent_id* (cross-node causality) wins; otherwise the
        parent is the innermost open span on *node*'s stack.  The trace id
        is inherited from the parent (a root span starts its own trace).
        """
        if parent_id is None:
            stack = self._stacks.get(node)
            if stack:
                parent = stack[-1]
                return parent.span_id, parent.trace_id
            return None, None
        return parent_id, self._trace_ids.get(parent_id)

    def span(self, node, op, cat="op", parent_id=None, **args):
        """Open a span on *node*; closes at the node's clock on ``__exit__``.

        Usage: ``with tracer.span("executor-0", "pull", matrix_id=3): ...``.
        Nested ``span()`` calls on the same node become children; an
        explicit *parent_id* parents across nodes (e.g. executor task spans
        under the driver's stage span).
        """
        if not self.enabled:
            return _NULL_SPAN
        resolved_parent, trace_id = self._lineage(node, parent_id)
        sp = Span(next(self._ids), resolved_parent, node, op, cat,
                  self.clock.now(node), args=args, trace_id=trace_id)
        self._trace_ids[sp.span_id] = sp.trace_id
        self._stacks.setdefault(node, []).append(sp)
        return _OpenSpan(self, sp)

    def _finish(self, span):
        span.end = self.clock.now(span.node)
        stack = self._stacks.get(span.node)
        if stack and stack[-1] is span:
            stack.pop()
        self.spans.append(span)

    def record(self, node, op, start, end, cat="op", parent_id=None, **args):
        """Record a completed span with explicit virtual times.

        Used by instrumentation that already knows its reserved interval
        (NIC bookings, server CPU service slots) — those intervals live on
        shared-resource timelines, not on the caller's clock.  Without an
        explicit *parent_id* the span is parented to whatever span is
        currently open on *node*; with one (the transport's ``trace_ctx``)
        it attaches to the causing span wherever that lives.
        """
        if not self.enabled:
            return None
        resolved_parent, trace_id = self._lineage(node, parent_id)
        sp = Span(next(self._ids), resolved_parent, node, op, cat, start,
                  end, args=args, trace_id=trace_id)
        self._trace_ids[sp.span_id] = sp.trace_id
        self.spans.append(sp)
        return sp

    def current(self, node):
        """The innermost open span on *node* (None when nothing is open).

        Instrumentation deeper in the stack uses this to enrich the
        enclosing op span (accumulated bytes, server fan-out) without
        threading span handles through every call.
        """
        stack = self._stacks.get(node)
        return stack[-1] if stack else None

    # -- queries -----------------------------------------------------------

    def spans_for(self, node=None, cat=None, op=None, trace_id=None):
        """Recorded spans filtered by node / category / op name / trace."""
        out = self.spans
        if node is not None:
            out = [s for s in out if s.node == node]
        if cat is not None:
            out = [s for s in out if s.cat == cat]
        if op is not None:
            out = [s for s in out if s.op == op]
        if trace_id is not None:
            out = [s for s in out if s.trace_id == trace_id]
        return list(out)

    def children_of(self, span):
        """Direct children of *span*, in recording order."""
        return [s for s in self.spans if s.parent_id == span.span_id]
