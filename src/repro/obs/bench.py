"""Structured benchmark records (``BENCH_<name>.json``) and regression gating.

Every benchmark run produces one machine-readable record: the virtual
makespan, wire/logical traffic, latency summaries, load imbalance, cache
hit rates and (when traced) the critical-path breakdown of every simulated
context it built, plus host wall-clock and simulated-events-per-host-second
so the simulator-speedup work has a baseline.  Records accumulate into a
trajectory file (one JSON line per run) and are compared against
checked-in baselines by the CI ``bench-gate``: a run whose makespan or
byte volume regresses beyond per-metric tolerances fails the build.

Schema ``repro-bench/v1``
-------------------------

Top level::

    schema            "repro-bench/v1"
    name              benchmark name (the BENCH_<name>.json stem)
    params            knobs that must match for two records to be
                      comparable (e.g. {"iterations": 4})
    makespan_s        sum of the contexts' virtual makespans
    total_wire_bytes  sum of the contexts' wire bytes
    events            total simulated events (wire messages + compute ops)
    contexts          per-context sub-records (below)
    host              {"wall_seconds", "events_per_second"} — informational
                      only; the gate never compares host timings

Per context::

    label             "ctx0", "ctx1", ... in construction order
    makespan_s        virtual makespan of that context
    total_wire_bytes  bytes that crossed its network
    wire_messages / logical_messages
    imbalance_ratio   max/mean of per-server request counts
    cache             {"hits", "misses", "hit_rate"}
    latency           MetricsRegistry.latency_summary()
    events            wire messages + compute ops
    critical_path     (traced runs only) CriticalPathResult.to_dict()

Virtual metrics are deterministic, so the gate's tolerances exist for
*intentional drift review*, not noise: a tolerance trip means the change
really moved the modeled cost.
"""

from __future__ import annotations

import json
import os

SCHEMA = "repro-bench/v1"

#: Relative regression tolerance per gated metric (fraction of baseline).
DEFAULT_TOLERANCES = {
    "makespan_s": 0.05,
    "total_wire_bytes": 0.02,
}

#: Keys every ``repro-bench/v1`` context must carry.  Fields added after
#: the schema froze (``compressed_bytes``, PR 8) are deliberately NOT in
#: this tuple: ``validate_record`` and the gate must keep accepting
#: checked-in baselines written before the field existed (forward
#: compatibility within the v1 schema).
_CONTEXT_KEYS = ("label", "makespan_s", "total_wire_bytes", "wire_messages",
                 "logical_messages", "imbalance_ratio", "cache", "latency",
                 "events")


def context_record(label, cluster, critical_path=None):
    """The per-context sub-record for one simulated cluster."""
    metrics = cluster.metrics
    _peak, _mean, ratio = metrics.load_imbalance()
    hits = sum(metrics.cache_hits.values())
    misses = sum(metrics.cache_misses.values())
    lookups = hits + misses
    events = metrics.total_messages() + sum(metrics.compute_counts.values())
    record = {
        "label": label,
        "makespan_s": cluster.elapsed(),
        "total_wire_bytes": metrics.total_bytes(),
        "wire_messages": metrics.total_messages(),
        "logical_messages": sum(metrics.logical_messages_by_tag.values()),
        "imbalance_ratio": ratio,
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else 0.0,
        },
        "latency": metrics.latency_summary(),
        "events": events,
        # Wire bytes the codec layer saved vs identity encoding (0 when no
        # cost model ran).  v1 baselines written before this field existed
        # simply lack it; readers must .get() it.
        "compressed_bytes": sum(
            getattr(metrics, "codec_bytes_saved", {}).values()
        ),
    }
    if critical_path is not None:
        record["critical_path"] = critical_path.to_dict()
    return record


def bench_record(name, clusters, params=None, wall_seconds=None):
    """Build the full ``repro-bench/v1`` record for one benchmark run.

    *clusters* is every simulated cluster the benchmark constructed, in
    order.  Contexts whose tracer recorded spans get a whole-run
    critical-path breakdown attached.  *wall_seconds* is the host time the
    benchmark took (informational; feeds events-per-host-second).
    """
    from repro.obs import critical_path as cp

    contexts = []
    for index, cluster in enumerate(clusters):
        breakdown = None
        if cluster.tracer.enabled and cluster.tracer.spans:
            breakdown = cp.analyze(cluster.tracer)
        contexts.append(
            context_record("ctx%d" % index, cluster,
                           critical_path=breakdown)
        )
    events = sum(c["events"] for c in contexts)
    record = {
        "schema": SCHEMA,
        "name": name,
        "params": dict(params or {}),
        "makespan_s": sum(c["makespan_s"] for c in contexts),
        "total_wire_bytes": sum(c["total_wire_bytes"] for c in contexts),
        "events": events,
        "contexts": contexts,
    }
    if wall_seconds is not None:
        record["host"] = {
            "wall_seconds": float(wall_seconds),
            "events_per_second": (events / wall_seconds
                                  if wall_seconds > 0 else 0.0),
        }
    return record


def validate_record(record):
    """Schema-check one record; raises ``ValueError`` on any violation."""
    if not isinstance(record, dict):
        raise ValueError("bench record must be a dict, got %r"
                         % (type(record).__name__,))
    if record.get("schema") != SCHEMA:
        raise ValueError("bench record schema is %r, expected %r"
                         % (record.get("schema"), SCHEMA))
    if not record.get("name"):
        raise ValueError("bench record has no name")
    if not isinstance(record.get("params"), dict):
        raise ValueError("bench record params must be a dict")
    for key in ("makespan_s", "total_wire_bytes", "events"):
        value = record.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError("bench record %s must be a non-negative "
                             "number, got %r" % (key, value))
    contexts = record.get("contexts")
    if not isinstance(contexts, list) or not contexts:
        raise ValueError("bench record needs a non-empty contexts list")
    for context in contexts:
        for key in _CONTEXT_KEYS:
            if key not in context:
                raise ValueError("bench context %r is missing %r"
                                 % (context.get("label"), key))
        breakdown = context.get("critical_path")
        if breakdown is not None:
            if not isinstance(breakdown.get("categories"), dict):
                raise ValueError(
                    "bench context %r critical_path has no categories"
                    % (context.get("label"),)
                )
    host = record.get("host")
    if host is not None and "wall_seconds" not in host:
        raise ValueError("bench record host section lacks wall_seconds")
    return record


def write_record(record, directory):
    """Validate and write ``BENCH_<name>.json`` under *directory*."""
    validate_record(record)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "BENCH_%s.json" % record["name"])
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_record(path):
    """Read and validate one ``BENCH_*.json`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_record(json.load(handle))


def append_trajectory(record, path):
    """Append a one-line summary of *record* to the trajectory file.

    The trajectory is a JSON-lines file: one compact line per benchmark
    run (virtual metrics + host throughput), the repo-level perf history
    the speedup work will diff against.
    """
    summary = {
        "name": record["name"],
        "params": record.get("params", {}),
        "makespan_s": record["makespan_s"],
        "total_wire_bytes": record["total_wire_bytes"],
        "events": record["events"],
    }
    host = record.get("host")
    if host is not None:
        summary["events_per_second"] = host.get("events_per_second", 0.0)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(summary, sort_keys=True) + "\n")
    return path


def _check(regressions, scope, metric, current, baseline, tolerance):
    if baseline <= 0:
        return
    drift = (current - baseline) / baseline
    if drift > tolerance:
        regressions.append(
            "%s: %s regressed %.2f%% (%.6g -> %.6g, tolerance %.1f%%)"
            % (scope, metric, 100.0 * drift, baseline, current,
               100.0 * tolerance)
        )


def compare_records(current, baseline, tolerances=None):
    """Regression strings for *current* vs *baseline*, or ``None``.

    ``None`` means the records are not comparable (different params — e.g.
    the baseline was generated at a different iteration count); an empty
    list means comparable and clean.  Only *virtual* metrics are gated;
    host wall-clock is machine-dependent and informational.
    """
    if current.get("params") != baseline.get("params"):
        return None
    tolerances = dict(DEFAULT_TOLERANCES, **(tolerances or {}))
    regressions = []
    for metric, tolerance in tolerances.items():
        _check(regressions, current["name"], metric,
               current.get(metric, 0.0), baseline.get(metric, 0.0),
               tolerance)
    baseline_contexts = {c["label"]: c for c in baseline["contexts"]}
    for context in current["contexts"]:
        base = baseline_contexts.get(context["label"])
        if base is None:
            continue
        for metric, tolerance in tolerances.items():
            _check(regressions,
                   "%s/%s" % (current["name"], context["label"]), metric,
                   context.get(metric, 0.0), base.get(metric, 0.0),
                   tolerance)
    return regressions


def gate(results_dir, baselines_dir, tolerances=None):
    """Compare every ``BENCH_*.json`` in *results_dir* to its baseline.

    Returns ``(failures, notes)``: *failures* are regression strings (the
    gate fails when any exist), *notes* describe skipped comparisons
    (missing baselines — a new benchmark passes until its baseline is
    checked in — or parameter mismatches).
    """
    failures, notes = [], []
    names = sorted(
        entry for entry in os.listdir(results_dir)
        if entry.startswith("BENCH_") and entry.endswith(".json")
    )
    if not names:
        failures.append("no BENCH_*.json records found in %s" % results_dir)
        return failures, notes
    for entry in names:
        current = load_record(os.path.join(results_dir, entry))
        baseline_path = os.path.join(baselines_dir, entry)
        if not os.path.exists(baseline_path):
            notes.append("%s: no checked-in baseline, skipping" % entry)
            continue
        regressions = compare_records(
            current, load_record(baseline_path), tolerances
        )
        if regressions is None:
            notes.append(
                "%s: params differ from baseline, skipping" % entry
            )
            continue
        failures.extend(regressions)
    return failures, notes
