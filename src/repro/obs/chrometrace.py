"""Chrome-trace (``chrome://tracing`` / Perfetto) export of recorded spans.

The exporter maps the simulation onto the trace-event JSON format:

- every simulated **node** becomes a *process* (``pid``), named via ``M``
  metadata events;
- every span **category** on that node becomes a *thread* (``tid``): client
  ops, server CPU, NIC send, NIC receive, tasks, stages — so a node's
  timeline shows its resources as parallel tracks;
- every :class:`~repro.obs.tracer.Span` becomes a complete (``"ph": "X"``)
  event with ``ts``/``dur`` in microseconds of **virtual** time (the trace
  viewer's clock *is* the simulated clock; wall time never appears).
"""

from __future__ import annotations

import json

#: Trace-viewer thread ordering: one track per span category.
_CATEGORY_TIDS = {
    "stage": 0,
    "task": 1,
    "op": 2,
    "cpu": 3,
    "nic-send": 4,
    "nic-recv": 5,
}


def _tid(cat):
    return _CATEGORY_TIDS.get(cat, len(_CATEGORY_TIDS))


def trace_events(tracer, pid_offset=0, process_prefix=""):
    """The ``traceEvents`` list for one tracer's spans.

    ``pid_offset`` / ``process_prefix`` let several tracers (one per
    simulated cluster) coexist in a single trace file without pid clashes.
    """
    events = []
    pids = {}
    for span in tracer.spans:
        if span.node not in pids:
            pid = pid_offset + len(pids)
            pids[span.node] = pid
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_prefix + str(span.node)},
            })
        args = {"node": span.node, "span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.args)
        events.append({
            "name": span.op,
            "cat": span.cat,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": pids[span.node],
            "tid": _tid(span.cat),
            "args": args,
        })
    for cat, tid in _CATEGORY_TIDS.items():
        for pid in pids.values():
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": cat},
            })
    return events


def timeseries_counter_events(sampler, pid, process_name="timeseries"):
    """Chrome counter (``"ph": "C"``) tracks for one time-series sampler.

    Each closed window contributes one sample per counter at the window's
    start (the viewer holds the value across the window): per-node byte
    rates, per-server request rates, the cache hit rate, per-node NIC
    backlog, and per-tag windowed p99 latency.  Give the counters their own
    *pid* (distinct from every span process) so they render as a separate
    process block of stacked counter tracks.
    """
    events = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": process_name},
    }]

    def counter(name, ts, values):
        if values:
            events.append({
                "name": name,
                "ph": "C",
                "pid": pid,
                "ts": ts * 1e6,
                "args": values,
            })

    for window in sampler.windows:
        ts = window.start
        counter("bytes/s", ts, {node: window.byte_rate(node)
                                for node in window.bytes_sent})
        counter("requests/s", ts, {node: window.request_rate(node)
                                   for node in window.requests})
        if window.cache_hits or window.cache_misses:
            counter("cache hit rate", ts,
                    {"rate": window.cache_hit_rate()})
        counter("nic backlog (s)", ts, dict(window.nic_backlog))
        for tag, summary in window.latency.items():
            counter("p99 %s (s)" % tag, ts, {"p99": summary["p99"]})
    return events


def to_chrome_trace(tracers):
    """A chrome-trace document for one tracer or several ``(name, tracer)``.

    Accepts either a single tracer or an iterable of ``(name, tracer)``
    pairs (e.g. one per system under comparison); each pair gets its own
    pid block with the name as a process prefix.
    """
    if hasattr(tracers, "spans"):
        events = trace_events(tracers)
    else:
        events = []
        offset = 0
        for name, tracer in tracers:
            prefix = "%s/" % name if name else ""
            block = trace_events(tracer, pid_offset=offset,
                                 process_prefix=prefix)
            events.extend(block)
            offset += len({e["pid"] for e in block})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual", "source": "repro.obs"},
    }


def write_chrome_trace(tracers, path):
    """Serialize :func:`to_chrome_trace` to *path*; returns the path."""
    document = to_chrome_trace(tracers)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
    return path
