"""Streaming latency histograms with bounded relative error.

An HDR-style log-bucketed histogram: bucket boundaries grow geometrically
(2% per bucket by default), so any quantile estimate is within one bucket —
about 1% after midpoint interpolation — of the exact value, while recording
stays O(1) with a small dict of non-empty buckets.  Exact count / sum /
min / max are kept on the side.

Values at or below zero land in a dedicated underflow bucket (virtual
durations can legitimately be 0.0, e.g. a local hand-off).
"""

from __future__ import annotations

import math

#: Default per-bucket geometric growth (2% relative resolution).
DEFAULT_GROWTH = 1.02

#: Smallest value resolved by its own bucket; below this all values share one.
DEFAULT_MIN_VALUE = 1e-9


class StreamingHistogram:
    """Log-bucketed histogram of non-negative values (virtual seconds)."""

    __slots__ = ("growth", "min_value", "_log_growth", "_buckets", "count",
                 "total", "min", "max")

    def __init__(self, growth=DEFAULT_GROWTH, min_value=DEFAULT_MIN_VALUE):
        if growth <= 1.0:
            raise ValueError("growth must be > 1, got %r" % (growth,))
        self.growth = float(growth)
        self.min_value = float(min_value)
        self._log_growth = math.log(self.growth)
        self._buckets = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _index(self, value):
        if value <= self.min_value:
            return -1
        return int(math.log(value / self.min_value) / self._log_growth)

    def _bounds(self, index):
        """The value range ``[lo, hi)`` covered by bucket *index*."""
        if index < 0:
            return 0.0, self.min_value
        lo = self.min_value * self.growth ** index
        return lo, lo * self.growth

    def record(self, value, n=1):
        """Add *n* observations of *value*."""
        value = float(value)
        n = int(n)
        index = self._index(value)
        self._buckets[index] = self._buckets.get(index, 0) + n
        self.count += n
        self.total += value * n
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def record_many(self, values):
        """Add one observation per entry of *values* (bulk :meth:`record`).

        Identical accumulation order to calling :meth:`record` in a loop —
        count, total, min/max and bucket contents all match bit-for-bit —
        with the bucket-index math and dict access done with cached locals.
        """
        buckets = self._buckets
        min_value = self.min_value
        log_growth = self._log_growth
        log = math.log
        count = self.count
        total = self.total
        lo = self.min
        hi = self.max
        # Service chains repeat the same duration heavily (uniform-sized
        # rows); memoizing the last value -> bucket skips the log() call on
        # repeats without changing any result.
        memo_value = None
        memo_index = -1
        for value in values:
            value = float(value)
            if value == memo_value:
                index = memo_index
            else:
                if value <= min_value:
                    index = -1
                else:
                    index = int(log(value / min_value) / log_growth)
                memo_value = value
                memo_index = index
            buckets[index] = buckets.get(index, 0) + 1
            count += 1
            total += value
            if value < lo:
                lo = value
            if value > hi:
                hi = value
        self.count = count
        self.total = total
        self.min = lo
        self.max = hi

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, q):
        """Approximate the *q*-th percentile (``0 <= q <= 100``).

        Returns the midpoint of the bucket holding the rank, clamped to the
        exact observed min/max so tail percentiles never overshoot.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100], got %r" % (q,))
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * (self.count - 1)
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen > rank:
                lo, hi = self._bounds(index)
                mid = (lo + hi) / 2.0
                return min(max(mid, self.min), self.max)
        return self.max

    def percentiles(self, qs=(50, 95, 99)):
        """A ``{q: value}`` dict for several percentiles at once."""
        return {q: self.percentile(q) for q in qs}

    def summary(self):
        """Plain-dict summary used by reports and snapshots."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def merge(self, other):
        """Fold *other* (same growth/min_value) into this histogram."""
        if (other.growth != self.growth
                or other.min_value != self.min_value):
            raise ValueError("cannot merge histograms with different buckets")
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
