"""Observability for the PS2 simulator: tracing, time series, reports.

The subsystem has these layers:

- :mod:`repro.obs.tracer` — structured spans over the virtual clocks,
  recorded by instrumentation in the PS client/server, the network model
  and the sparklite scheduler, connected across nodes by the transport's
  ``trace_ctx`` threading.  Disabled by default; enabling it never changes
  simulation results (spans only *read* clocks).
- :mod:`repro.obs.histogram` — streaming log-bucketed latency histograms,
  always on inside :class:`~repro.cluster.metrics.MetricsRegistry`.
- :mod:`repro.obs.timeseries` — a passive virtual-time-windowed sampler
  (per-window rates, windowed percentiles, NIC-backlog gauges), enabled by
  ``ClusterConfig.timeseries_window``.
- :mod:`repro.obs.critical_path` — walks the causal span DAG backward from
  the makespan-defining span and attributes virtual time to compute /
  network / queueing / staleness-wait / retry-backoff.
- :mod:`repro.obs.bench` — structured ``BENCH_<name>.json`` perf records,
  the trajectory file and the CI regression gate.
- :mod:`repro.obs.chrometrace` / :mod:`repro.obs.report` — exporters: a
  ``chrome://tracing``-compatible JSON document (spans + time-series
  counter tracks) and a plain-text breakdown.

``set_default_tracing(True)`` makes every *subsequently built* cluster
start with its tracer enabled — the hook the benchmark runner's
``--trace`` flag uses, since benchmarks construct their own contexts.
``set_bench_capture(True)`` similarly registers every subsequently built
cluster for the benchmark harness's BENCH-record capture (tracing not
required).
"""

from __future__ import annotations

from repro.obs.bench import append_trajectory, bench_record, compare_records, \
    load_record, validate_record, write_record
from repro.obs.chrometrace import timeseries_counter_events, to_chrome_trace, \
    trace_events, write_chrome_trace
from repro.obs.critical_path import CriticalPathResult, analyze, \
    stage_breakdowns
from repro.obs.histogram import StreamingHistogram
from repro.obs.report import hot_shard_table, latency_table, render_report, \
    server_table
from repro.obs.timeseries import TimeSeriesSampler
from repro.obs.tracer import Span, Tracer

#: Whether clusters built from now on start with tracing enabled.
_DEFAULT_TRACING = False

#: Clusters constructed with tracing on while the default was enabled —
#: drained by the benchmark runner to export every traced context at once.
_TRACED_CLUSTERS = []

#: Whether clusters built from now on are captured for BENCH records.
_BENCH_CAPTURE = False

#: Every cluster constructed while bench capture was on — drained by the
#: benchmark harness to build one BENCH_<name>.json per benchmark.
_BENCH_CLUSTERS = []


def set_default_tracing(enabled):
    """Enable/disable tracing for clusters constructed after this call."""
    global _DEFAULT_TRACING
    _DEFAULT_TRACING = bool(enabled)


def default_tracing():
    """The current construction-time default for cluster tracers."""
    return _DEFAULT_TRACING


def register_traced_cluster(cluster):
    """Track *cluster* for batch export (called by ``Cluster.__init__``).

    Only clusters born with tracing enabled are registered, so normal runs
    never accumulate references here.
    """
    _TRACED_CLUSTERS.append(cluster)


def drain_traced_clusters():
    """Return and clear the traced-cluster registry."""
    global _TRACED_CLUSTERS
    drained, _TRACED_CLUSTERS = _TRACED_CLUSTERS, []
    return drained


def set_bench_capture(enabled):
    """Register every subsequently built cluster for BENCH capture."""
    global _BENCH_CAPTURE
    _BENCH_CAPTURE = bool(enabled)


def bench_capture():
    """Whether clusters built now are registered for BENCH capture."""
    return _BENCH_CAPTURE


def register_bench_cluster(cluster):
    """Track *cluster* for BENCH-record building (``Cluster.__init__``)."""
    _BENCH_CLUSTERS.append(cluster)


def drain_bench_clusters():
    """Return and clear the bench-capture registry."""
    global _BENCH_CLUSTERS
    drained, _BENCH_CLUSTERS = _BENCH_CLUSTERS, []
    return drained


__all__ = [
    "Span",
    "Tracer",
    "StreamingHistogram",
    "TimeSeriesSampler",
    "CriticalPathResult",
    "analyze",
    "stage_breakdowns",
    "bench_record",
    "validate_record",
    "write_record",
    "load_record",
    "append_trajectory",
    "compare_records",
    "trace_events",
    "timeseries_counter_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "latency_table",
    "server_table",
    "hot_shard_table",
    "render_report",
    "set_default_tracing",
    "default_tracing",
    "register_traced_cluster",
    "drain_traced_clusters",
    "set_bench_capture",
    "bench_capture",
    "register_bench_cluster",
    "drain_bench_clusters",
]
