"""Observability for the PS2 simulator: tracing, histograms, reports.

The subsystem has three layers:

- :mod:`repro.obs.tracer` — structured spans over the virtual clocks,
  recorded by instrumentation in the PS client/server, the network model
  and the sparklite scheduler.  Disabled by default; enabling it never
  changes simulation results (spans only *read* clocks).
- :mod:`repro.obs.histogram` — streaming log-bucketed latency histograms,
  always on inside :class:`~repro.cluster.metrics.MetricsRegistry`.
- :mod:`repro.obs.chrometrace` / :mod:`repro.obs.report` — exporters: a
  ``chrome://tracing``-compatible JSON document and a plain-text breakdown
  (latency percentiles, server utilization, hot shards).

``set_default_tracing(True)`` makes every *subsequently built* cluster
start with its tracer enabled — the hook the benchmark runner's
``--trace`` flag uses, since benchmarks construct their own contexts.
"""

from __future__ import annotations

from repro.obs.chrometrace import to_chrome_trace, trace_events, \
    write_chrome_trace
from repro.obs.histogram import StreamingHistogram
from repro.obs.report import hot_shard_table, latency_table, render_report, \
    server_table
from repro.obs.tracer import Span, Tracer

#: Whether clusters built from now on start with tracing enabled.
_DEFAULT_TRACING = False

#: Clusters constructed with tracing on while the default was enabled —
#: drained by the benchmark runner to export every traced context at once.
_TRACED_CLUSTERS = []


def set_default_tracing(enabled):
    """Enable/disable tracing for clusters constructed after this call."""
    global _DEFAULT_TRACING
    _DEFAULT_TRACING = bool(enabled)


def default_tracing():
    """The current construction-time default for cluster tracers."""
    return _DEFAULT_TRACING


def register_traced_cluster(cluster):
    """Track *cluster* for batch export (called by ``Cluster.__init__``).

    Only clusters born with tracing enabled are registered, so normal runs
    never accumulate references here.
    """
    _TRACED_CLUSTERS.append(cluster)


def drain_traced_clusters():
    """Return and clear the traced-cluster registry."""
    global _TRACED_CLUSTERS
    drained, _TRACED_CLUSTERS = _TRACED_CLUSTERS, []
    return drained


__all__ = [
    "Span",
    "Tracer",
    "StreamingHistogram",
    "trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "latency_table",
    "server_table",
    "hot_shard_table",
    "render_report",
    "set_default_tracing",
    "default_tracing",
    "register_traced_cluster",
    "drain_traced_clusters",
]
