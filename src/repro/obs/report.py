"""Plain-text observability report: where did the virtual time go?

Renders, for one simulated cluster, the three tables the paper's analysis
sections revolve around: per-op latency percentiles (Figure 10-style "why
is one system slower"), per-server utilization (Figure 4's single-point
bottleneck), and hot-shard / load-imbalance telemetry (NuPS-style skew
detection).
"""

from __future__ import annotations


def _format_rows(headers, rows):
    """A fixed-width table (no external deps, stable under tests)."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _seconds(value):
    return "%.6f" % value


def latency_table(metrics):
    """Per-op latency percentiles observed by clients (virtual seconds)."""
    summary = metrics.latency_summary()
    if not summary:
        return "(no latency observations)"
    rows = [
        (tag, s["count"], _seconds(s["p50"]), _seconds(s["p95"]),
         _seconds(s["p99"]), _seconds(s["max"]))
        for tag, s in sorted(summary.items())
    ]
    return _format_rows(
        ["op", "count", "p50_s", "p95_s", "p99_s", "max_s"], rows
    )


def server_table(cluster):
    """Per-server request counts and busy-time utilization."""
    metrics = cluster.metrics
    makespan = cluster.elapsed()
    rows = []
    for node_id in cluster.servers:
        busy = metrics.compute_seconds.get(node_id, 0.0)
        send_busy, recv_busy = cluster.network.nic_utilization(node_id)
        utilization = busy / makespan if makespan > 0 else 0.0
        rows.append((
            node_id,
            metrics.requests_by_server.get(node_id, 0),
            _seconds(busy),
            "%.1f%%" % (100.0 * utilization),
            _seconds(send_busy),
            _seconds(recv_busy),
        ))
    if not rows:
        return "(no servers)"
    return _format_rows(
        ["server", "requests", "cpu_busy_s", "cpu_util", "nic_send_s",
         "nic_recv_s"],
        rows,
    )


def hot_shard_table(metrics, factor=1.5):
    """Shards whose traffic exceeds *factor* x their matrix's mean.

    The ``bytes`` column is the shard's wire volume (request + response,
    from the message formulas) — the number that says whether a hot shard
    is worth caching, since a shard can be hot by request count while
    moving few bytes (and vice versa).
    """
    hot = metrics.hot_shards(factor=factor)
    peak, mean, ratio = metrics.load_imbalance()
    if hot:
        table = _format_rows(
            ["matrix", "server", "requests", "values", "bytes", "x_mean"],
            [
                (matrix_id, server_index, requests, "%.0f" % values,
                 "%.0f" % metrics.shard_bytes.get(
                     (matrix_id, server_index), 0.0
                 ),
                 "%.2f" % shard_ratio)
                for matrix_id, server_index, requests, values, shard_ratio
                in hot
            ],
        )
    else:
        table = "(no shard exceeds %.2fx its matrix mean)" % factor
    footer = (
        "server load imbalance: max=%d mean=%.1f max/mean=%.2f"
        % (peak, mean, ratio)
    )
    return table + "\n" + footer


def transport_table(metrics):
    """Wire vs. logical message counts per tag (coalescing efficiency).

    A coalesced batch is one wire message carrying several logical
    requests; tags where the two counts diverge show where the transport's
    per-server batching saved headers and NIC bookings.
    """
    rows = []
    for tag in sorted(metrics.messages_by_tag):
        wire = metrics.messages_by_tag[tag]
        logical = metrics.logical_messages_by_tag.get(tag, wire)
        if logical == wire:
            continue
        rows.append((tag, wire, logical, "%.2f" % (logical / wire)))
    lines = []
    if rows:
        lines.append(_format_rows(
            ["tag", "wire_msgs", "logical_reqs", "reqs_per_msg"], rows
        ))
    else:
        lines.append("(no coalesced traffic)")
    batches = metrics.counters.get("coalesced-batches", 0)
    if batches:
        lines.append(
            "coalesced %d requests into %d batch envelopes"
            % (metrics.counters.get("coalesced-requests", 0), batches)
        )
    decisions = getattr(metrics, "codec_decisions", None)
    if decisions:
        saved = metrics.codec_bytes_saved
        lines.append(_format_rows(
            ["tag", "codec", "decisions", "bytes_saved"],
            [
                (tag, codec, decisions[(tag, codec)],
                 "%.0f" % saved.get((tag, codec), 0.0))
                for tag, codec in sorted(decisions)
            ],
        ))
        total = sum(saved.values())
        lines.append("codec wire bytes saved: %.0f" % total)
    return "\n".join(lines)


def consistency_table(cluster):
    """Staleness histogram and worker-cache hit rates (SSP/ASP runs).

    Under BSP both are structurally empty (no logical clocks, no cache);
    the placeholder lines keep the report shape stable across models.
    """
    metrics = cluster.metrics
    model = cluster.consistency
    lines = ["model: %s" % model.name]
    staleness = getattr(model, "staleness", None)
    if staleness is not None:
        lines[0] += " (staleness=%d)" % staleness

    rows = []
    for tag in ("staleness-wait", "staleness-clocks"):
        hist = metrics.latency.get(tag)
        if hist is None:
            continue
        s = hist.summary()
        rows.append((
            tag, s["count"], "%.6f" % s["p50"], "%.6f" % s["p95"],
            "%.6f" % s["max"],
        ))
    if rows:
        lines.append(_format_rows(
            ["observation", "count", "p50", "p95", "max"], rows
        ))
    else:
        lines.append("(no staleness observations)")
    waits = metrics.counters.get("staleness-waits", 0)
    if waits:
        lines.append("ssp gate blocked a worker %d time(s)" % waits)

    nodes = sorted(set(metrics.cache_hits) | set(metrics.cache_misses))
    if nodes:
        cache_rows = []
        for node_id in nodes:
            hits = metrics.cache_hits.get(node_id, 0)
            misses = metrics.cache_misses.get(node_id, 0)
            total = hits + misses
            cache_rows.append((
                node_id, hits, misses,
                "%.1f%%" % (100.0 * hits / total if total else 0.0),
                "%.0f" % metrics.cache_bytes_saved.get(node_id, 0.0),
            ))
        lines.append(_format_rows(
            ["worker", "hits", "misses", "hit_rate", "bytes_saved"],
            cache_rows,
        ))
    else:
        lines.append("(worker cache inactive)")
    fences = metrics.counters.get("cache-epoch-fences", 0)
    if fences:
        lines.append("recovery epoch fences dropped cached rows %d time(s)"
                     % fences)
    return "\n".join(lines)


def replication_table(cluster):
    """Hot-key replication activity: replica map, routing and fan-out.

    With replication off the section is a stable one-line placeholder, so
    the report keeps its shape across the knob.  The replica map rows list
    the currently replicated (matrix, primary) shard keys with their valid
    replica sets; the counters below tell how the machinery behaved —
    reads rerouted to replicas, mutations fanned out, fan-outs fenced or
    skipped by the version machinery, promotions/demotions per sweep.
    """
    manager = getattr(cluster, "replication", None)
    if manager is None:
        return "(replication off)"
    metrics = cluster.metrics
    lines = [
        "mode: %s (fraction=%.2f, factor=%d, interval=%s)" % (
            manager.mode, manager.hot_key_fraction,
            manager.replication_factor, _seconds(manager.rebalance_interval),
        )
    ]
    keys = manager.replicated_keys()
    if keys:
        lines.append(_format_rows(
            ["matrix", "primary", "replicas"],
            [
                (matrix_id, primary_index,
                 ",".join(str(r) for r in
                          manager.replica_set(matrix_id, primary_index))
                 or "(stale)")
                for matrix_id, primary_index in keys
            ],
        ))
    else:
        lines.append("(no keys currently replicated)")
    counters = metrics.counters
    lines.append(
        "sweeps=%d promotions=%d demotions=%d reinstalls=%d"
        % (counters.get("rebalance-sweeps", 0),
           counters.get("replica-promotions", 0),
           counters.get("replica-demotions", 0),
           counters.get("replica-reinstalls", 0))
    )
    lines.append(
        "replica reads=%d fan-outs=%d (fenced=%d skipped=%d)"
        % (counters.get("replica-reads", 0),
           counters.get("replica-fanouts", 0),
           counters.get("replica-fanout-fenced", 0),
           counters.get("replica-fanout-skipped", 0))
    )
    lines.append(
        "migration bytes=%.0f replica state bytes=%.0f"
        % (metrics.bytes_for_tag("replica-migrate"),
           manager.replica_bytes())
    )
    return "\n".join(lines)


def chain_table(cluster):
    """Chain-replication activity: chain map, lag, promotions, fallbacks.

    With the chain off the section is a stable one-line placeholder, so
    the report keeps its shape across the knob.  The chain map rows list
    every (matrix, primary) key with its ring successors and the worst
    per-row counter lag of any valid copy (0 = fully caught up); the
    counters below tell how the machinery behaved — full and incremental
    syncs, write fan-outs (with the fence/skip splits shared with hot-key
    replication), reads served by successors of a dead primary,
    promotions and checkpoint fallbacks — followed by one row per
    promotion event.
    """
    chain = getattr(cluster, "chain", None)
    if chain is None:
        return "(chain replication off)"
    metrics = cluster.metrics
    lines = ["successors per primary: %d (ring order over live servers)"
             % chain.m]
    keys = sorted(chain.links)
    if keys:
        lines.append(_format_rows(
            ["matrix", "primary", "successors", "lag"],
            [
                (matrix_id, primary_index,
                 ",".join(str(s) for s in
                          sorted(chain.links[(matrix_id, primary_index)])),
                 chain.key_lag(matrix_id, primary_index))
                for matrix_id, primary_index in keys
            ],
        ))
    else:
        lines.append("(no chains formed)")
    counters = metrics.counters
    lines.append(
        "syncs=%d row-syncs=%d reforms=%d direct-write-resyncs=%d"
        % (counters.get("chain-syncs", 0),
           counters.get("chain-row-syncs", 0),
           counters.get("chain-reforms", 0),
           counters.get("chain-direct-write-resyncs", 0))
    )
    lines.append(
        "chain reads=%d fan-outs=%d (fenced=%d skipped=%d) "
        "promotions=%d fallbacks=%d"
        % (counters.get("chain-reads", 0),
           counters.get("chain-fanouts", 0),
           counters.get("replica-fanout-fenced", 0),
           counters.get("replica-fanout-skipped", 0),
           counters.get("chain-promotions", 0),
           counters.get("chain-fallbacks", 0))
    )
    lines.append(
        "sync bytes=%.0f promote bytes=%.0f"
        % (metrics.bytes_for_tag("chain-sync"),
           metrics.bytes_for_tag("chain-promote"))
    )
    if chain.promotions:
        lines.append(_format_rows(
            ["time_s", "primary", "sources", "matrices"],
            [
                (_seconds(time), primary_index,
                 ",".join(str(s) for s in sources),
                 ",".join(str(m) for m in matrix_ids))
                for time, primary_index, sources, matrix_ids
                in chain.promotions
            ],
        ))
    return "\n".join(lines)


def serving_table(cluster):
    """Per-request-class SLO accounting plus elasticity activity.

    Rendered only for runs that installed an
    :class:`~repro.serving.slo.SLOTracker` (``cluster.slo``).  The
    percentile columns are cumulative run-level numbers; windowed views
    live in the time-series section.  The footer lines summarize the
    lazy-table and elastic machinery: rows materialized by
    ``get_or_create``, resizes performed, shard slices migrated and the
    wire bytes the migrations cost.
    """
    tracker = getattr(cluster, "slo", None)
    if tracker is None:
        return "(serving tier inactive)"
    metrics = cluster.metrics
    summary = tracker.summary()
    lines = []
    if summary:
        lines.append(_format_rows(
            ["class", "requests", "violations", "miss_rate", "p50_s",
             "p95_s", "p99_s"],
            [
                (request_class, s["requests"], s["violations"],
                 "%.1f%%" % (100.0 * s["violation_rate"]),
                 _seconds(s["p50"]), _seconds(s["p95"]), _seconds(s["p99"]))
                for request_class, s in summary.items()
            ],
        ))
    else:
        lines.append("(no serving requests observed)")
    if tracker.slo_target > 0:
        lines.append("slo target: %s s" % _seconds(tracker.slo_target))
    counters = metrics.counters
    lines.append(
        "lazy rows created=%d elastic resizes=%d (up=%d down=%d)"
        % (counters.get("lazy-creates", 0),
           counters.get("elastic-resizes", 0),
           counters.get("autoscale-up", 0),
           counters.get("autoscale-down", 0))
    )
    migrated = counters.get("migrated-shard-slices", 0)
    if migrated:
        lines.append(
            "shard migration: %d slices, %.0f wire bytes"
            % (migrated, metrics.bytes_for_tag("shard-migrate"))
        )
    return "\n".join(lines)


def timeseries_table(sampler):
    """Per-window rates and gauges from one time-series sampler.

    One row per closed window: total byte rate, total request rate, the
    window's cache hit rate, the worst per-node NIC backlog at the window
    boundary, and the windowed p99 of the ``pull`` tag (the headline
    client op) when observed.
    """
    if not sampler.windows:
        return "(no closed windows)"
    rows = []
    for w in sampler.windows:
        backlog = max(w.nic_backlog.values()) if w.nic_backlog else 0.0
        pull_p99 = w.latency.get("pull", {}).get("p99", 0.0)
        rows.append((
            "[%s, %s)" % (_seconds(w.start), _seconds(w.end)),
            "%.0f" % sum(w.bytes_sent.values()),
            "%.0f" % (sum(w.bytes_sent.values()) / w.width),
            sum(w.requests.values()),
            "%.1f%%" % (100.0 * w.cache_hit_rate()),
            _seconds(backlog),
            _seconds(pull_p99),
        ))
    return _format_rows(
        ["window", "bytes", "bytes_per_s", "requests", "cache_hit",
         "nic_backlog_s", "pull_p99_s"],
        rows,
    )


def critical_path_table(tracer):
    """Whole-run and per-stage critical-path attribution (traced runs)."""
    from repro.obs import critical_path as cp

    if not tracer.spans:
        return "(no spans recorded)"
    lines = [cp.analyze(tracer).render(title="run")]
    stages = cp.stage_breakdowns(tracer)
    if stages:
        rows = []
        for span, result in stages:
            top = max(result.categories.items(), key=lambda kv: kv[1])
            rows.append((
                span.op,
                _seconds(result.total),
                "%.1f%%" % (100.0 * result.fraction("compute")),
                "%.1f%%" % (100.0 * result.fraction("network")),
                "%.1f%%" % (100.0 * result.fraction("queueing")),
                top[0],
            ))
        lines.append(_format_rows(
            ["stage", "makespan_s", "compute", "network", "queueing",
             "dominant"],
            rows,
        ))
    return "\n".join(lines)


def render_report(cluster, title="observability report"):
    """The full text report for one cluster."""
    tracer = getattr(cluster, "tracer", None)
    sections = [
        "== %s ==" % title,
        "virtual makespan: %s s" % _seconds(cluster.elapsed()),
        "",
        "-- per-op latency (client-observed, virtual seconds) --",
        latency_table(cluster.metrics),
        "",
        "-- per-server load --",
        server_table(cluster),
        "",
        "-- hot shards --",
        hot_shard_table(cluster.metrics),
        "",
        "-- transport coalescing --",
        transport_table(cluster.metrics),
        "",
        "-- consistency & worker cache --",
        consistency_table(cluster),
        "",
        "-- hot-key replication --",
        replication_table(cluster),
        "",
        "-- chain replication --",
        chain_table(cluster),
    ]
    if getattr(cluster, "slo", None) is not None:
        sections += [
            "",
            "-- serving tier --",
            serving_table(cluster),
        ]
    sampler = getattr(cluster, "timeseries", None)
    if sampler is not None:
        sampler.finalize()
        sections += [
            "",
            "-- time series (%.6f s windows) --" % sampler.window,
            timeseries_table(sampler),
        ]
    if tracer is not None and tracer.enabled:
        by_cat = {}
        for span in tracer.spans:
            by_cat[span.cat] = by_cat.get(span.cat, 0) + 1
        sections += [
            "",
            "-- trace --",
            "%d spans recorded (%s)" % (
                len(tracer.spans),
                ", ".join(
                    "%s=%d" % (cat, n) for cat, n in sorted(by_cat.items())
                ) or "none",
            ),
            "",
            "-- critical path --",
            critical_path_table(tracer),
        ]
    return "\n".join(sections)
