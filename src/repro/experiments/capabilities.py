"""The algorithm-support matrix of Table 3.

Each entry records whether a system (as reproduced here) implements a
workload, mirroring the paper's check marks exactly.
"""

from __future__ import annotations

WORKLOADS = ("LR", "DeepWalk", "GBDT", "LDA")

#: Paper Table 3, verbatim.
SUPPORT_MATRIX = {
    "Spark MLlib": {"LR": True, "DeepWalk": False, "GBDT": True, "LDA": True},
    "DistML": {"LR": True, "DeepWalk": False, "GBDT": False, "LDA": True},
    "Glint": {"LR": False, "DeepWalk": False, "GBDT": False, "LDA": True},
    "Petuum": {"LR": True, "DeepWalk": False, "GBDT": False, "LDA": True},
    "XGboost": {"LR": False, "DeepWalk": False, "GBDT": True, "LDA": False},
    "PS2": {"LR": True, "DeepWalk": True, "GBDT": True, "LDA": True},
}

#: Which reproduced trainer backs each supported (system, workload) cell.
TRAINER_INDEX = {
    ("Spark MLlib", "LR"): "repro.baselines.mllib.train_lr_mllib",
    ("Spark MLlib", "GBDT"): "repro.baselines.xgboost_sim.train_gbdt_mllib",
    ("Spark MLlib", "LDA"): "repro.baselines.mllib.train_lda_mllib",
    ("DistML", "LR"): "repro.baselines.distml.train_lr_distml",
    ("DistML", "LDA"): "repro.ml.lda.train_lda (comm='petuum')",
    ("Glint", "LDA"): "repro.baselines.glint.train_lda_glint",
    ("Petuum", "LR"): "repro.baselines.petuum.train_lr_petuum",
    ("Petuum", "LDA"): "repro.baselines.petuum.train_lda_petuum",
    ("XGboost", "GBDT"): "repro.baselines.xgboost_sim.train_gbdt_xgboost",
    ("PS2", "LR"): "repro.ml.lr.train_logistic_regression",
    ("PS2", "DeepWalk"): "repro.ml.deepwalk.train_deepwalk",
    ("PS2", "GBDT"): "repro.ml.gbdt.train_gbdt",
    ("PS2", "LDA"): "repro.ml.lda.train_lda",
}


def supports(system, workload):
    """Whether *system* implements *workload* (paper Table 3)."""
    return SUPPORT_MATRIX[system][workload]


def support_rows():
    """The Table-3 rows as ``(system, {workload: bool})`` pairs."""
    return list(SUPPORT_MATRIX.items())
