"""Fault-tolerance experiment: checkpoint recovery mid-training (Section 6.5).

Trains LR twice on identical data and hardware: once failure-free
(baseline), once with periodic checkpoint sweeps and a parameter-server
crash scheduled mid-training (chaos).  The chaos run recovers the crashed
server from the latest sweep transparently to the training loop, and the
experiment verifies the paper's Figure-12 shape: the loss curve regresses
by at most the updates applied since the last checkpoint — the model never
falls back behind the checkpointed state — and then re-converges.

Everything is seeded and driven by virtual time, so two invocations with
the same arguments print byte-identical summaries (the determinism gate CI
relies on).

Run:  PYTHONPATH=src python -m repro.experiments.fault_tolerance
"""

from __future__ import annotations

from repro.config import FailureConfig
from repro.data import sparse_classification
from repro.experiments.report import curve_summary, format_table
from repro.experiments.runner import make_context
from repro.ml import train_logistic_regression

#: Loss-regression slack: minibatch losses are noisy, so the post-crash
#: peak is compared against the checkpoint-time loss with this headroom.
REGRESSION_TOLERANCE = 1.10


def _train(rows, dim, failures, seed, n_iterations):
    ctx = make_context(n_executors=8, n_servers=8, seed=seed,
                       failures=failures)
    result = train_logistic_regression(
        ctx, rows, dim, optimizer="sgd", n_iterations=n_iterations,
        batch_fraction=0.3, seed=seed,
    )
    return ctx, result


def run_fault_tolerance(seed=7, n_iterations=24, n_rows=400, dim=2000):
    """Run the baseline/chaos pair; returns a summary dict (deterministic).

    The crash is scheduled at ~60% of the baseline's virtual makespan and
    the checkpoint interval at a quarter of that, so several sweeps land
    before the failure — the recovery loses only the updates of the last
    fraction of an interval.
    """
    rows, _ = sparse_classification(n_rows, dim, 20, seed=seed)

    base_ctx, base = _train(rows, dim, FailureConfig(), seed, n_iterations)
    times = [t for t, _ in base.history]
    fail_at = times[int(len(times) * 0.6)]
    interval = fail_at / 4.0

    failures = FailureConfig(
        server_failure_times=((0, fail_at),),
        checkpoint_interval=interval,
    )
    chaos_ctx, chaos = _train(rows, dim, failures, seed, n_iterations)

    # The Figure-12 bound: the post-crash loss peak must stay within the
    # loss recorded at (or before) the last sweep preceding the crash.
    sweeps_before = [
        t for t in chaos_ctx.master.checkpoint_sweep_times if t <= fail_at
    ]
    last_sweep = sweeps_before[-1] if sweeps_before else 0.0
    at_checkpoint = [loss for t, loss in chaos.history if t <= last_sweep]
    after_crash = [loss for t, loss in chaos.history if t > fail_at]
    checkpoint_loss = at_checkpoint[-1] if at_checkpoint else float("inf")
    post_crash_peak = max(after_crash) if after_crash else 0.0
    regression_bounded = post_crash_peak <= checkpoint_loss * REGRESSION_TOLERANCE

    counters = chaos_ctx.metrics.counters
    return {
        "baseline": base,
        "chaos": chaos,
        "fail_at": fail_at,
        "checkpoint_interval": interval,
        "last_sweep": last_sweep,
        "checkpoint_loss": checkpoint_loss,
        "post_crash_peak": post_crash_peak,
        "regression_bounded": regression_bounded,
        "sweeps": counters.get("checkpoint-sweeps", 0),
        "recoveries": counters.get("server-recoveries", 0),
        "op_retries": counters.get("op-retries", 0),
        "reinit_shards": counters.get("recovery-reinit-shards", 0),
    }


def main():
    summary = run_fault_tolerance()
    base = summary["baseline"]
    chaos = summary["chaos"]
    print(format_table(
        ["run", "final loss", "virtual time", "iterations"],
        [
            ("baseline", "%.6f" % base.final_loss, "%.4f s" % base.elapsed,
             base.iterations),
            ("server crash", "%.6f" % chaos.final_loss,
             "%.4f s" % chaos.elapsed, chaos.iterations),
        ],
        title="Section 6.5: LR under a mid-training server crash",
    ))
    print()
    print("crash scheduled at      : %.4f s" % summary["fail_at"])
    print("checkpoint interval     : %.4f s" % summary["checkpoint_interval"])
    print("last sweep before crash : %.4f s" % summary["last_sweep"])
    print("checkpoint sweeps       : %d" % summary["sweeps"])
    print("server recoveries       : %d" % summary["recoveries"])
    print("op retries              : %d" % summary["op_retries"])
    print("shards re-initialized   : %d" % summary["reinit_shards"])
    print("loss at last checkpoint : %.6f" % summary["checkpoint_loss"])
    print("post-crash loss peak    : %.6f" % summary["post_crash_peak"])
    print("regression bounded      : %s" % summary["regression_bounded"])
    print()
    print("baseline curve:", curve_summary(base))
    print("chaos curve   :", curve_summary(chaos))


if __name__ == "__main__":
    main()
