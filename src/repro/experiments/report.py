"""Plain-text reporting for benchmark output (tables, speedups, curves)."""

from __future__ import annotations


def format_table(headers, rows, title=None):
    """Render an aligned ASCII table (every cell stringified)."""
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    rule = "-" * len(line)
    out = []
    if title:
        out.extend([title, rule])
    out.extend([line, rule])
    for row in rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def format_speedup(value):
    """'3.42x' or 'n/a' for missing speedups."""
    if value is None:
        return "n/a"
    return "%.2fx" % value


def format_seconds(value):
    """Virtual seconds with sensible precision ('n/a' for None)."""
    if value is None:
        return "n/a"
    if value >= 100:
        return "%.0f s" % value
    if value >= 1:
        return "%.2f s" % value
    return "%.4f s" % value


def curve_summary(result, points=4):
    """A few (time, loss) samples from a TrainResult's history."""
    history = result.history
    if not history:
        return "(no history)"
    if len(history) <= points:
        samples = history
    else:
        step = max(1, len(history) // points)
        samples = history[::step][:points - 1] + [history[-1]]
    return ", ".join("(%.3fs, %.4f)" % (t, l) for t, l in samples)
