"""Shared experiment plumbing: context factories and run configs."""

from __future__ import annotations

from repro.config import ClusterConfig, ElasticitySpec, FailureConfig, \
    NodeSpec
from repro.core.context import PS2Context


def make_context(n_executors=20, n_servers=20, seed=0, task_failure_prob=0.0,
                 strict_colocation=False, node_flops=None, failures=None,
                 coalesce_requests=True, consistency="bsp", staleness=0,
                 replication="off", hot_key_fraction=0.1,
                 replication_factor=0, rebalance_interval=0.0,
                 timeseries_window=0.0, wire_codec="off",
                 codec_topk_ratio=0.1, chain_replicas=0, elasticity=None):
    """A fresh PS2 context on a fresh simulated cluster.

    ``failures`` takes a full :class:`repro.config.FailureConfig` (crash
    schedules, partition windows, checkpoint interval, retry knobs) for the
    fault-tolerance experiments; ``task_failure_prob`` stays as a shortcut
    for the common Bernoulli-task-failure case and is ignored when a full
    config is passed.

    Every system under comparison gets its own context (its own clocks and
    metrics) over identically configured hardware — the controlled-variable
    setup the paper's comparisons rely on.

    ``node_flops`` derates the simulated CPUs.  The datasets here are about
    four orders of magnitude smaller than the paper's, but per-task fixed
    overheads don't shrink with the data; experiments whose *shape* depends
    on per-worker compute being non-trivial (the Figure 13(a) scalability
    sweep) derate the CPUs to restore the paper's compute-to-overhead
    ratio.  Comparisons between systems are unaffected: all contenders run
    on identical hardware either way.

    ``coalesce_requests`` exposes the PS transport's per-server batching
    knob for A/B experiments on the header-amortization win.

    ``consistency`` / ``staleness`` select the execution model for the
    staleness-ablation experiments: ``"bsp"`` (default, the paper's
    behaviour), ``"ssp"`` with the given staleness bound, or ``"asp"``.

    ``replication`` / ``hot_key_fraction`` / ``replication_factor`` /
    ``rebalance_interval`` configure the NuPS-style hot-key replication
    manager for the skew-ablation experiments; the default ``"off"``
    constructs no manager at all (bit-identical to a pre-replication run).

    ``timeseries_window`` enables the virtual-time-windowed metrics
    sampler with windows of that many virtual seconds (0 disables it; the
    sampler is passive either way).

    ``wire_codec`` / ``codec_topk_ratio`` configure the wire-codec cost
    model for the compression-ablation experiments; the default ``"off"``
    constructs no cost model at all (bit-identical to a pre-codec run).

    ``chain_replicas`` configures chained shard replication (M successor
    replicas per primary, promoted on crash) for the fault-tolerance
    experiments; the default 0 constructs no chain replicator at all
    (bit-identical to a pre-chain run).

    ``elasticity`` configures elastic scaling for the serving-tier
    experiments: pass a full :class:`repro.config.ElasticitySpec`, or the
    mode string ``"auto"`` as a shortcut for the default-bounded spec.
    The default ``None`` keeps the topology static (bit-identical to a
    pre-elasticity run).
    """
    if elasticity is None:
        elasticity = ElasticitySpec()
    elif isinstance(elasticity, str):
        elasticity = ElasticitySpec(mode=elasticity)
    node = NodeSpec() if node_flops is None else NodeSpec(flops=node_flops)
    config = ClusterConfig(
        n_executors=n_executors,
        n_servers=n_servers,
        node=node,
        seed=seed,
        failures=failures
        if failures is not None
        else FailureConfig(task_failure_prob=task_failure_prob),
        coalesce_requests=coalesce_requests,
        consistency=consistency,
        staleness=staleness,
        replication=replication,
        hot_key_fraction=hot_key_fraction,
        replication_factor=replication_factor,
        rebalance_interval=rebalance_interval,
        timeseries_window=timeseries_window,
        wire_codec=wire_codec,
        codec_topk_ratio=codec_topk_ratio,
        chain_replicas=chain_replicas,
        elasticity=elasticity,
    )
    return PS2Context(config=config, strict_colocation=strict_colocation)
