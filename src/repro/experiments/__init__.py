"""Experiment harness: shared runners, reports and the Table-3 registry."""

from repro.experiments.capabilities import (
    SUPPORT_MATRIX,
    TRAINER_INDEX,
    WORKLOADS,
    support_rows,
    supports,
)
from repro.experiments.fault_tolerance import run_fault_tolerance
from repro.experiments.report import (
    curve_summary,
    format_seconds,
    format_speedup,
    format_table,
)
from repro.experiments.runner import make_context

__all__ = [
    "SUPPORT_MATRIX",
    "TRAINER_INDEX",
    "WORKLOADS",
    "support_rows",
    "supports",
    "curve_summary",
    "format_seconds",
    "format_speedup",
    "format_table",
    "make_context",
    "run_fault_tolerance",
]
