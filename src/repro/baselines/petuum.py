"""Petuum-style baselines: a parameter server with dense-only communication.

The paper attributes PS2's LR win over Petuum to sparse pulls ("PS2 ...
only pulls the needed model parameters.  However, Petuum has to pull all of
the model", Section 6.3.1) and its LDA win to sparse communication plus
message compression (Section 6.3.3).  These trainers therefore run the same
synchronous algorithms as PS2 but pull and push **full dense vectors**.
"""

from __future__ import annotations

from repro.ml import losses
from repro.ml.lda import train_lda
from repro.ml.results import TrainResult


def train_lr_petuum(ctx, rows, dim, learning_rate=0.618, n_iterations=20,
                    batch_fraction=0.1, seed=0, target_loss=None,
                    system="Petuum"):
    """Petuum-style LR with SGD: dense pulls, worker-applied increments.

    Workers pull the full weight vector, compute their batch gradient, and
    push ``-lr * grad / batch_size`` straight into the weights (Petuum's
    native ``inc`` application).  Statistically this matches synchronous
    minibatch SGD with the expected batch size.
    """
    data = ctx.parallelize(rows).cache()
    weight = ctx.dense(dim, rows=2, name="petuum-weight")
    expected_batch = max(1.0, batch_fraction * len(rows))

    result = TrainResult(system=system, workload="lr-sgd-petuum")
    for iteration in range(n_iterations):
        batch = data.sample(batch_fraction, seed=seed * 10000 + iteration)

        def gradient_task(task_ctx, iterator):
            batch_rows = list(iterator)
            if not batch_rows:
                return (0.0, 0)
            dense_weights = weight.pull(task_ctx=task_ctx)
            grad, loss_sum = losses.logistic_grad_dense(
                batch_rows, dense_weights
            )
            task_ctx.charge_flops(losses.grad_flops(batch_rows), tag="gradient")
            update = -learning_rate / expected_batch * grad
            weight.add(update, task_ctx=task_ctx)
            return (loss_sum, len(batch_rows))

        stats = batch.map_partitions_with_context(
            lambda c, it: [gradient_task(c, it)]
        ).collect()
        total_loss = sum(s[0] for s in stats)
        total_count = sum(s[1] for s in stats)
        loss = total_loss / max(1, total_count)
        result.record(ctx.elapsed(), loss)
        result.iterations = iteration + 1
        if target_loss is not None and total_count > 0 and loss <= target_loss:
            break

    result.elapsed = ctx.elapsed()
    result.extras["weight"] = weight
    return result


def train_lda_petuum(ctx, docs, vocab_size, **kwargs):
    """Petuum-style LDA: dense, uncompressed word-topic pulls/pushes."""
    kwargs.setdefault("system", "Petuum-LDA")
    return train_lda(ctx, docs, vocab_size, comm="petuum", **kwargs)
