"""Worker-side communication collectives used by baseline systems.

XGBoost finds splits with AllReduce over full gradient histograms — the
"vast communication cost" the paper blames for its GBDT gap (Section 6.3.2).
The ring AllReduce model charges each participant ``2 * (W-1)/W * nbytes``
through its NIC plus per-step latency, the standard cost of the
reduce-scatter + all-gather ring.
"""

from __future__ import annotations

from repro.common.sizeof import MESSAGE_OVERHEAD_BYTES


def ring_allreduce(cluster, executors, nbytes, tag="allreduce"):
    """Charge a ring AllReduce of *nbytes* across *executors*.

    All participants first synchronize (the collective is bulk-synchronous),
    then every NIC moves ``2 * (W-1)/W * nbytes`` in ``2*(W-1)`` latency-bound
    steps.  Clocks of all executors advance to the common completion time,
    which is returned.
    """
    executors = list(executors)
    n = len(executors)
    if n <= 1:
        return cluster.clock.now(executors[0]) if executors else 0.0
    start = cluster.clock.barrier(executors)
    chunk = float(nbytes) / n
    steps = 2 * (n - 1)
    per_node_bytes = steps * (chunk + MESSAGE_OVERHEAD_BYTES)
    duration = 0.0
    for position, node in enumerate(executors):
        bandwidth = cluster.network.bandwidth_of(node)
        duration = max(
            duration,
            per_node_bytes / bandwidth + steps * cluster.network.latency,
        )
        # Account traffic: each node sends `steps` chunks to its ring neighbor.
        neighbor = executors[(position + 1) % n]
        cluster.metrics.record_transfer(node, neighbor, per_node_bytes, tag=tag)
    end = start + duration
    for node in executors:
        cluster.clock.set_at_least(node, end)
    return end
