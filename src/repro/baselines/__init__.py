"""Baseline systems (Table 3's comparators), all on the shared simulator."""

from repro.baselines.collectives import ring_allreduce
from repro.baselines.distml import train_lr_distml
from repro.baselines.glint import train_lda_glint
from repro.baselines.mllib import train_lda_mllib, train_lr_mllib
from repro.baselines.petuum import train_lda_petuum, train_lr_petuum
from repro.baselines.pspushpull import (
    train_deepwalk_ps_pushpull,
    train_lr_ps_pushpull,
)
from repro.baselines.xgboost_sim import train_gbdt_mllib, train_gbdt_xgboost

__all__ = [
    "ring_allreduce",
    "train_lr_distml",
    "train_lda_glint",
    "train_lda_mllib",
    "train_lr_mllib",
    "train_lda_petuum",
    "train_lr_petuum",
    "train_deepwalk_ps_pushpull",
    "train_lr_ps_pushpull",
    "train_gbdt_mllib",
    "train_gbdt_xgboost",
]
