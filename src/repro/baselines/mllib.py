"""Spark-MLlib-style trainers: the driver is the parameter server.

These reproduce the execution process of Section 2 exactly:

1. *model broadcast* — the driver ships the full dense weight vector to all
   executors;
2. *gradient calculation* — executors compute dense gradients;
3. *gradient aggregation* — the driver collects one dense gradient **per
   executor** through its single NIC (the bottleneck of Figure 1);
4. *model update* — the driver applies the optimizer locally.

``TrainResult.extras["breakdown"]`` accumulates virtual seconds per step,
which is how the Figure 1(b) benchmark regenerates the paper's stacked bars.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import DRIVER
from repro.common.errors import ConfigError
from repro.common.sizeof import FLOAT_BYTES
from repro.ml import losses
from repro.ml.results import TrainResult


class _DriverOptimizer:
    """Driver-local optimizer state (the single-node model of MLlib)."""

    def __init__(self, kind, dim, learning_rate, beta1=0.9, beta2=0.999,
                 eps=1e-8):
        if kind not in ("sgd", "adam"):
            raise ConfigError("driver optimizer must be 'sgd' or 'adam'")
        self.kind = kind
        self.learning_rate = learning_rate
        self.weights = np.zeros(dim)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.square = np.zeros(dim)
        self.velocity = np.zeros(dim)
        self.step_count = 0

    def apply(self, gradient):
        self.step_count += 1
        if self.kind == "sgd":
            self.weights -= self.learning_rate * gradient
            return 2.0 * gradient.size
        self.square = self.beta2 * self.square + (1 - self.beta2) * gradient**2
        self.velocity = (
            self.beta1 * self.velocity + (1 - self.beta1) * gradient
        )
        s_hat = self.square / (1 - self.beta2**self.step_count)
        v_hat = self.velocity / (1 - self.beta1**self.step_count)
        self.weights -= (
            self.learning_rate * v_hat / (np.sqrt(s_hat) + self.eps)
        )
        return 10.0 * gradient.size


def train_lr_mllib(ctx, rows, dim, optimizer="sgd", learning_rate=0.618,
                   n_iterations=20, batch_fraction=0.1, seed=0,
                   target_loss=None, system=None):
    """Train LR the Spark MLlib way (driver-centric).

    *ctx* is a :class:`~repro.core.context.PS2Context` (its parameter
    servers sit idle — only sparklite is used), so every system shares one
    cluster cost model.  History and extras match the PS2 trainer's.
    """
    if system is None:
        system = "SparkMLlib" if optimizer == "sgd" else "Spark-Adam"
    spark = ctx.spark
    cluster = ctx.cluster
    state = _DriverOptimizer(optimizer, dim, learning_rate)
    data = spark.parallelize(rows).cache()

    result = TrainResult(system=system, workload="lr-%s" % optimizer)
    breakdown = {"broadcast": 0.0, "gradient": 0.0, "aggregation": 0.0,
                 "update": 0.0}

    for iteration in range(n_iterations):
        # (1) model broadcast -------------------------------------------------
        t0 = cluster.elapsed()
        broadcast = spark.broadcast(state.weights, nbytes=dim * FLOAT_BYTES)
        cluster.barrier([DRIVER] + cluster.executors)
        t1 = cluster.elapsed()
        breakdown["broadcast"] += t1 - t0

        # (2) gradient calculation (results stay on the executors) ------------
        batch = data.sample(batch_fraction, seed=seed * 10000 + iteration)

        def gradient_task(task_ctx, iterator):
            batch_rows = list(iterator)
            weights = broadcast.value
            grad, loss_sum = losses.logistic_grad_dense(batch_rows, weights)
            task_ctx.charge_flops(losses.grad_flops(batch_rows), tag="gradient")
            return (grad, loss_sum, len(batch_rows))

        placed = spark.scheduler.run_stage(
            batch.map_partitions_with_context(
                lambda c, it: [gradient_task(c, it)]
            ),
            lambda c, it: next(iter(it)),
            tag="mllib-gradient",
            gather_results=False,
        )
        t2 = cluster.elapsed()
        breakdown["gradient"] += t2 - t1

        # (3) gradient aggregation: every dense gradient into the driver NIC --
        total_grad = np.zeros(dim)
        total_loss = 0.0
        total_count = 0
        for executor, (grad, loss_sum, count) in placed:
            cluster.network.transfer(
                executor, DRIVER, dim * FLOAT_BYTES, tag="mllib-aggregate"
            )
            total_grad += grad
            total_loss += loss_sum
            total_count += count
        cluster.charge_flops(DRIVER, dim * len(placed), tag="mllib-combine")
        t3 = cluster.elapsed()
        breakdown["aggregation"] += t3 - t2

        # (4) model update on the driver ---------------------------------------
        if total_count > 0:
            flops = state.apply(total_grad / total_count)
            cluster.charge_flops(DRIVER, flops, tag="mllib-update")
        t4 = cluster.elapsed()
        breakdown["update"] += t4 - t3

        loss = total_loss / max(1, total_count)
        result.record(cluster.elapsed(), loss)
        result.iterations = iteration + 1
        if target_loss is not None and loss <= target_loss:
            break

    result.elapsed = cluster.elapsed()
    result.extras["weights"] = state.weights
    result.extras["breakdown"] = breakdown
    return result


def train_lda_mllib(ctx, docs, vocab_size, n_topics=20, n_iterations=10,
                    alpha=0.5, beta=0.01, seed=0, system="SparkMLlib-LDA"):
    """LDA the MLlib way: the driver holds the full word-topic matrix.

    Per iteration the driver broadcasts the dense ``n_topics x vocab``
    matrix and collects one dense count-delta matrix per executor — the
    same Gibbs statistics as the PS trainers (so convergence matches), with
    MLlib's driver-centric communication (so time does not).
    """
    from repro.common.rng import RngRegistry
    from repro.ml.lda import gibbs_sweep

    spark = ctx.spark
    cluster = ctx.cluster
    word_topic = np.zeros((n_topics, vocab_size))
    topic_totals = np.zeros(n_topics)
    matrix_bytes = n_topics * vocab_size * FLOAT_BYTES

    docs_rdd = spark.parallelize(list(enumerate(docs))).cache()
    state = {}

    def init_task(task_ctx, iterator):
        rng = RngRegistry(seed).get("lda-init-%d" % task_ctx.partition_id)
        local_docs = [np.asarray(w, dtype=np.int64) for _i, w in iterator]
        vocab = (
            np.unique(np.concatenate(local_docs))
            if local_docs else np.empty(0, dtype=np.int64)
        )
        word_positions = [np.searchsorted(vocab, words) for words in local_docs]
        doc_topic = np.zeros((len(local_docs), n_topics), dtype=np.int64)
        assignments = []
        delta = np.zeros((n_topics, vocab_size))
        delta_totals = np.zeros(n_topics)
        for doc_pos, words in enumerate(local_docs):
            z = rng.integers(n_topics, size=words.size)
            assignments.append(z)
            np.add.at(doc_topic[doc_pos], z, 1)
            np.add.at(delta, (z, words), 1)
            np.add.at(delta_totals, z, 1)
        state[task_ctx.partition_id] = {
            "docs": local_docs,
            "vocab": vocab,
            "word_positions": word_positions,
            "doc_topic": doc_topic,
            "assignments": assignments,
        }
        return (delta, delta_totals)

    for delta, delta_totals in docs_rdd.map_partitions_with_context(
        lambda c, it: [init_task(c, it)]
    ).collect():
        word_topic += delta
        topic_totals += delta_totals

    result = TrainResult(system=system, workload="lda-k%d" % n_topics)
    for iteration in range(n_iterations):
        broadcast = spark.broadcast(word_topic, nbytes=matrix_bytes)
        cluster.barrier([DRIVER] + cluster.executors)

        def sweep_task(task_ctx, iterator):
            for _ in iterator:
                pass
            local = state[task_ctx.partition_id]
            vocab = local["vocab"]
            if vocab.size == 0:
                return (np.zeros((n_topics, vocab_size)), np.zeros(n_topics),
                        0.0, 0)
            block = broadcast.value[:, vocab].astype(float)
            totals = topic_totals.copy()
            rng = RngRegistry(seed * 131 + iteration).get(
                "lda-%d" % task_ctx.partition_id
            )
            delta_block, delta_totals, loglik, n_tokens = gibbs_sweep(
                local, block, totals, vocab_size, alpha, beta, rng
            )
            task_ctx.charge_flops(6.0 * n_tokens * n_topics, tag="gibbs")
            delta = np.zeros((n_topics, vocab_size))
            delta[:, vocab] = delta_block
            return (delta, delta_totals, loglik, n_tokens)

        placed = spark.scheduler.run_stage(
            docs_rdd.map_partitions_with_context(
                lambda c, it: [sweep_task(c, it)]
            ),
            lambda c, it: next(iter(it)),
            tag="mllib-lda",
            gather_results=False,
        )
        total_ll = 0.0
        total_tokens = 0
        for executor, (delta, delta_totals, loglik, n_tokens) in placed:
            cluster.network.transfer(
                executor, DRIVER, matrix_bytes, tag="mllib-lda-aggregate"
            )
            word_topic += delta
            topic_totals += delta_totals
            total_ll += loglik
            total_tokens += n_tokens
        cluster.charge_flops(
            DRIVER, n_topics * vocab_size * len(placed), tag="mllib-lda-combine"
        )
        result.record(cluster.elapsed(), -total_ll / max(1, total_tokens))
        result.iterations = iteration + 1

    result.elapsed = cluster.elapsed()
    result.extras["word_topic"] = word_topic
    return result
