"""DistML-style baseline: an unsynchronized pull/push PS that loses updates.

The paper reports DistML "is not robust.  For example, the result of DistML
on KDDB dataset in Figure 10(a) cannot converge although we carefully tune
the hyperparameters" (and that it crashes outright on CTR).  We cannot run
the original binary, so we reproduce the *behavior* through the defect
class its design invites: DistML's monitor applies worker updates to the
store without synchronization, so concurrent read-modify-write cycles race.
The trainer models the race as

- **stale reads**: workers compute gradients against the model as of a few
  iterations ago (no barrier between pull and apply), and
- **lost updates**: overlapping writes resolve last-writer-wins, so only
  one worker's (unnormalized, full-learning-rate) update survives a round.

Under the paper's learning rate the model performs a stale random walk:
the loss curve stays flat around its starting value — the Figure 10(a)
shape — while all synchronized systems converge.  All pulls and pushes are
still fully charged to the cost model (DistML pays dense communication).
"""

from __future__ import annotations

from repro.common.rng import RngRegistry
from repro.ml import losses
from repro.ml.results import TrainResult

#: How many iterations behind the workers' model snapshots run.
STALENESS = 2


def train_lr_distml(ctx, rows, dim, learning_rate=0.618, n_iterations=20,
                    batch_fraction=0.1, seed=0, system="DistML"):
    """DistML-style LR: dense pull/push with racy, unsynchronized applies."""
    data = ctx.parallelize(rows).cache()
    weight = ctx.dense(dim, rows=2, name="distml-weight")
    rng = RngRegistry(seed).get("distml-race")
    snapshots = [weight.pull()]

    result = TrainResult(system=system, workload="lr-sgd-distml")
    for iteration in range(n_iterations):
        batch = data.sample(batch_fraction, seed=seed * 10000 + iteration)
        stale = snapshots[max(0, len(snapshots) - 1 - STALENESS)]

        def gradient_task(task_ctx, iterator):
            batch_rows = list(iterator)
            if not batch_rows:
                return (None, 0.0, 0)
            # The pull is issued (and charged) but the worker's view is the
            # stale snapshot — there is no barrier forcing freshness.
            weight.pull(task_ctx=task_ctx)
            grad, loss_sum = losses.logistic_grad_dense(batch_rows, stale)
            task_ctx.charge_flops(losses.grad_flops(batch_rows), tag="gradient")
            return (grad, loss_sum, len(batch_rows))

        stats = batch.map_partitions_with_context(
            lambda c, it: [gradient_task(c, it)]
        ).collect()

        # Every worker pushes its full update; unsynchronized application
        # means one last writer wins.  All pushes are charged.
        contenders = []
        for grad, _loss, count in stats:
            if grad is None:
                continue
            update = stale - learning_rate * grad
            contenders.append(update)
        if contenders:
            winner = contenders[int(rng.integers(len(contenders)))]
            for update in contenders:
                weight.push(update)  # charged; earlier writes are clobbered
            weight.push(winner)
            snapshots.append(winner.copy())

        total_loss = sum(s[1] for s in stats)
        total_count = sum(s[2] for s in stats)
        result.record(ctx.elapsed(), total_loss / max(1, total_count))
        result.iterations = iteration + 1

    result.elapsed = ctx.elapsed()
    result.extras["weight"] = weight
    return result
