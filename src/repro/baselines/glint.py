"""Glint-style baseline: an asynchronous LDA parameter server on Spark.

Glint (Jagerman et al., SIGIR'17) offers pull/push only — no server-side
computation, no sparse pulls, no message compression.  Its asynchronous
design re-pulls the model mid-sweep, which the trainer models as two dense
uncompressed pulls per iteration; Section 6.3.3 measures it 9x slower than
PS2 on PubMED.
"""

from __future__ import annotations

from repro.ml.lda import train_lda


def train_lda_glint(ctx, docs, vocab_size, **kwargs):
    """Glint-style LDA: dense float64 pulls, twice per sweep."""
    kwargs.setdefault("system", "Glint-LDA")
    return train_lda(ctx, docs, vocab_size, comm="glint", **kwargs)
