"""PS- baselines: parameter server with pull/push ONLY (no DCV column ops).

These are the "PS-" curves of Figure 9 — same parameter servers, same
sparse row access, but **no server-side computation**.  Multi-vector model
updates (Adam's four vectors) must therefore round-trip through the
workers: after the gradient barrier, every worker pulls its slice of the
weight/velocity/square/gradient vectors, applies the Adam equations
locally, and pushes three updated slices back — the communication the DCV
``zip`` eliminates.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError
from repro.linalg.sparse import batch_index_union
from repro.ml import losses
from repro.ml.deepwalk import train_deepwalk
from repro.ml.results import TrainResult


def train_lr_ps_pushpull(ctx, rows, dim, optimizer="adam", learning_rate=0.618,
                         beta1=0.9, beta2=0.999, eps=1e-8, n_iterations=20,
                         batch_fraction=0.1, seed=0, target_loss=None,
                         system=None):
    """Train LR with pull/push-only parameter servers (PS-Adam / PS-SGD).

    Statistically identical to the PS2 trainer (same sampling, same Adam
    math); only the model-update communication differs.
    """
    if optimizer not in ("adam", "sgd"):
        raise ConfigError("pull/push baseline supports 'adam' or 'sgd'")
    if system is None:
        system = "PS-Adam" if optimizer == "adam" else "PS-SGD"

    data = ctx.parallelize(rows).cache()
    weight = ctx.dense(dim, rows=8, name="pp-weight")
    gradient = weight.derive(name="pp-grad")
    gradient.zero()
    aux = {}
    if optimizer == "adam":
        aux["velocity"] = weight.derive(name="pp-velocity")
        aux["velocity"].fill(0.0)
        aux["square"] = weight.derive(name="pp-square")
        aux["square"].fill(0.0)

    n_workers = len(ctx.cluster.executors)
    workers_rdd = ctx.parallelize(range(n_workers), n_partitions=n_workers)

    result = TrainResult(system=system, workload="lr-%s-pushpull" % optimizer)
    for iteration in range(n_iterations):
        gradient.fill(0.0)
        batch = data.sample(batch_fraction, seed=seed * 10000 + iteration)

        def gradient_task(task_ctx, iterator):
            batch_rows = list(iterator)
            if not batch_rows:
                return (0.0, 0)
            union = batch_index_union(batch_rows)
            union_weights = weight.pull(indices=union, task_ctx=task_ctx)
            grad_values, loss_sum = losses.logistic_grad_batch(
                batch_rows, union, union_weights
            )
            task_ctx.charge_flops(losses.grad_flops(batch_rows), tag="gradient")
            gradient.add(grad_values, indices=union, task_ctx=task_ctx)
            return (loss_sum, len(batch_rows))

        stats = batch.map_partitions_with_context(
            lambda c, it: [gradient_task(c, it)]
        ).collect()
        total_loss = sum(s[0] for s in stats)
        total_count = sum(s[1] for s in stats)
        step = iteration + 1

        # Worker-side model update.  As Section 6.2.1 describes the PS-
        # baseline: "It has to pull the gradient as well as the model onto
        # each worker, update the model and push the model back" — every
        # worker pulls the FULL vectors and pushes the full updated model.
        # In a real cluster all workers pull the same post-barrier snapshot
        # and write identical values; the sequential simulator reproduces
        # that by computing the update once and pushing the same arrays
        # from every worker (the traffic is still fully charged).
        if total_count > 0:
            canonical = {}

            def update_task(task_ctx, iterator):
                for _worker in iterator:
                    g = gradient.pull(task_ctx=task_ctx)
                    w = weight.pull(task_ctx=task_ctx)
                    v = s = None
                    if optimizer == "adam":
                        v = aux["velocity"].pull(task_ctx=task_ctx)
                        s = aux["square"].pull(task_ctx=task_ctx)
                    if not canonical:
                        # The first worker (in simulation order) sees the
                        # pre-update snapshot; its computation is the one
                        # every worker performs identically in a real run.
                        g = g / total_count
                        if optimizer == "sgd":
                            w = w - learning_rate * g
                        else:
                            s = beta2 * s + (1 - beta2) * g * g
                            v = beta1 * v + (1 - beta1) * g
                            s_hat = s / (1 - beta2**step)
                            v_hat = v / (1 - beta1**step)
                            w = w - learning_rate * v_hat / (
                                np.sqrt(s_hat) + eps
                            )
                            canonical["v"] = v
                            canonical["s"] = s
                        canonical["w"] = w
                    task_ctx.charge_flops(
                        (10.0 if optimizer == "adam" else 2.0) * dim,
                        tag="update",
                    )
                    if optimizer == "adam":
                        aux["velocity"].push(canonical["v"], task_ctx=task_ctx)
                        aux["square"].push(canonical["s"], task_ctx=task_ctx)
                    weight.push(canonical["w"], task_ctx=task_ctx)
                return None

            workers_rdd.map_partitions_with_context(
                lambda c, it: [update_task(c, it)]
            ).collect()

        loss = total_loss / max(1, total_count)
        result.record(ctx.elapsed(), loss)
        result.iterations = iteration + 1
        if target_loss is not None and total_count > 0 and loss <= target_loss:
            break

    result.elapsed = ctx.elapsed()
    result.extras["weight"] = weight
    return result


def train_deepwalk_ps_pushpull(ctx, walks, n_vertices, **kwargs):
    """PS-DeepWalk of Figure 9(c,d): pull both vectors, update, push back."""
    kwargs.setdefault("system", "PS-DeepWalk")
    return train_deepwalk(ctx, walks, n_vertices, server_side=False, **kwargs)
