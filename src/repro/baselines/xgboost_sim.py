"""XGBoost-style baseline: GBDT with AllReduce split finding.

"In XGboost, this phase is conducted by AllReduce, which generates vast
communication cost" (Section 6.3.2).  The trainer runs the identical
histogram-GBDT algorithm as PS2's, exchanging full gradient histograms via
ring AllReduce instead of pushing them to parameter servers.
"""

from __future__ import annotations

from repro.ml.gbdt import train_gbdt


def train_gbdt_xgboost(ctx, features, labels, **kwargs):
    """GBDT with AllReduce histograms (the XGBoost communication pattern)."""
    kwargs.setdefault("system", "XGBoost")
    return train_gbdt(ctx, features, labels, method="allreduce", **kwargs)


def train_gbdt_mllib(ctx, features, labels, **kwargs):
    """GBDT the MLlib way: all histograms gathered at the single driver."""
    kwargs.setdefault("system", "SparkMLlib-GBDT")
    return train_gbdt(ctx, features, labels, method="driver", **kwargs)
