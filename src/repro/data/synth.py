"""Seeded synthetic dataset generators.

The paper's datasets (KDDB, KDD12, CTR, PubMED, App, Gender, Graph1/2) are
either proprietary or far beyond laptop scale; each generator here produces
a scaled analogue preserving the property the experiments exercise — the
rows : features : nnz aspect ratio for classification, topic structure for
LDA corpora, and degree-skewed connectivity for graphs.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import RngRegistry
from repro.linalg.sparse import SparseRow


def sparse_classification(n_rows, dim, nnz_per_row, seed=0, weight_sparsity=0.2,
                          noise=0.1):
    """Sparse binary-classification data with a planted linear separator.

    Feature indices follow a Zipf-ish skew (low indices more frequent, as in
    real CTR data); labels come from a logistic model over a planted weight
    vector with *weight_sparsity* fraction of active coordinates, flipped
    with probability *noise*.

    Returns ``(rows, true_weights)`` where ``rows`` is a list of
    :class:`SparseRow`.
    """
    if nnz_per_row > dim:
        raise ConfigError("nnz_per_row %d exceeds dim %d" % (nnz_per_row, dim))
    rng = RngRegistry(seed).get("sparse-classification")
    n_active = max(1, int(dim * weight_sparsity))
    true_weights = np.zeros(dim)
    active = rng.choice(dim, size=n_active, replace=False)
    true_weights[active] = rng.standard_normal(n_active)

    # Skewed index popularity: sample via a power transform of uniforms.
    def draw_indices():
        u = rng.random(nnz_per_row * 2)
        idx = np.unique((dim * u**2.0).astype(np.int64).clip(0, dim - 1))
        if idx.size > nnz_per_row:
            idx = rng.choice(idx, size=nnz_per_row, replace=False)
            idx.sort()
        return idx

    rows = []
    for _ in range(n_rows):
        indices = draw_indices()
        values = rng.standard_normal(indices.size) * 0.5 + 1.0
        margin = float(np.dot(true_weights[indices], values))
        prob = 1.0 / (1.0 + np.exp(-margin))
        label = 1.0 if rng.random() < prob else 0.0
        if rng.random() < noise:
            label = 1.0 - label
        rows.append(SparseRow(indices, values, label))
    return rows, true_weights


def dense_tabular(n_rows, n_features, seed=0, noise=0.1):
    """Dense tabular data with tree-friendly (axis-aligned) structure.

    Labels are produced by a random depth-3 decision list over feature
    thresholds, so gradient-boosted trees can genuinely fit it.  Returns
    ``(features, labels)`` as float arrays.
    """
    rng = RngRegistry(seed).get("dense-tabular")
    features = rng.random((n_rows, n_features))
    f1, f2, f3 = rng.choice(n_features, size=3, replace=False)
    t1, t2, t3 = rng.random(3) * 0.6 + 0.2
    labels = np.where(
        features[:, f1] > t1,
        np.where(features[:, f2] > t2, 1.0, 0.0),
        np.where(features[:, f3] > t3, 1.0, 0.0),
    )
    flip = rng.random(n_rows) < noise
    labels = np.where(flip, 1.0 - labels, labels)
    return features, labels
