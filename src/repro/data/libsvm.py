"""Read/write sparse rows in the libsvm text format.

The paper's public datasets ship in libsvm format; these helpers let users
bring their own files or export the synthetic analogues for inspection.
Format: ``<label> <index>:<value> <index>:<value> ...`` with 1-based
indices, one row per line.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ReproError
from repro.linalg.sparse import SparseRow


def dumps_row(row):
    """Serialize one :class:`SparseRow` as a libsvm line (no newline)."""
    parts = ["%g" % row.label]
    parts.extend(
        "%d:%g" % (index + 1, value)
        for index, value in zip(row.indices, row.values)
    )
    return " ".join(parts)


def loads_row(line):
    """Parse one libsvm line into a :class:`SparseRow`."""
    fields = line.split()
    if not fields:
        raise ReproError("empty libsvm line")
    label = float(fields[0])
    indices = []
    values = []
    for field in fields[1:]:
        try:
            index_text, value_text = field.split(":", 1)
        except ValueError:
            raise ReproError("malformed libsvm field %r" % (field,)) from None
        indices.append(int(index_text) - 1)
        values.append(float(value_text))
    order = np.argsort(indices, kind="stable")
    return SparseRow(
        np.asarray(indices, dtype=np.int64)[order],
        np.asarray(values, dtype=float)[order],
        label,
    )


def write_libsvm(path, rows):
    """Write *rows* to *path* in libsvm format."""
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(dumps_row(row))
            handle.write("\n")


def read_libsvm(path):
    """Read every row of a libsvm file."""
    rows = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(loads_row(line))
    return rows
