"""Scaled analogues of the paper's datasets (Table 2).

Each entry preserves the original's *aspect ratio* — rows : features :
non-zeros-per-row for the classification sets, document : vocabulary shape
for the LDA corpora, vertex : walk counts for the graphs — at roughly
1/10,000th the raw size, so experiments finish in seconds while stressing
the same communication regimes (huge model vs. small batches, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.graphs import preferential_attachment_graph, random_walks
from repro.data.synth import dense_tabular, sparse_classification
from repro.data.text import synthetic_corpus


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one analogue plus the original's Table-2 statistics."""

    name: str
    model: str
    params: dict = field(default_factory=dict)
    paper_stats: dict = field(default_factory=dict)

    def generate(self, seed=0):
        """Materialize the analogue (deterministic in *seed*)."""
        params = dict(self.params)
        if self.model in ("LR", "SVM"):
            rows, _true = sparse_classification(
                params["n_rows"], params["dim"], params["nnz_per_row"], seed=seed
            )
            return rows
        if self.model == "LDA":
            docs, _topics = synthetic_corpus(
                params["n_docs"],
                params["vocab"],
                n_topics=params.get("true_topics", 10),
                doc_length=params["doc_length"],
                seed=seed,
            )
            return docs
        if self.model == "GBDT":
            return dense_tabular(params["n_rows"], params["n_features"], seed=seed)
        if self.model == "DeepWalk":
            adjacency = preferential_attachment_graph(
                params["n_vertices"], seed=seed
            )
            walks = random_walks(
                adjacency,
                params["n_walks"],
                walk_length=params.get("walk_length", 8),
                seed=seed,
            )
            return adjacency, walks
        raise ValueError("unknown model %r" % (self.model,))


#: Paper Table 2, with our scaled analogue parameters.
CATALOG = {
    "kddb": DatasetSpec(
        name="KDDB",
        model="LR",
        params={"n_rows": 2000, "dim": 120000, "nnz_per_row": 30},
        paper_stats={"rows": "19M", "cols": "29M", "nnz": "585M", "size": "4.8GB"},
    ),
    "kdd12": DatasetSpec(
        name="KDD12",
        model="LR",
        params={"n_rows": 3000, "dim": 220000, "nnz_per_row": 11},
        paper_stats={"rows": "149M", "cols": "54.6M", "nnz": "1.64B", "size": "21GB"},
    ),
    "ctr": DatasetSpec(
        name="CTR",
        model="LR",
        params={"n_rows": 3400, "dim": 600000, "nnz_per_row": 160},
        paper_stats={"rows": "343M", "cols": "1.7B", "nnz": "57B", "size": "662.4GB"},
    ),
    "pubmed": DatasetSpec(
        name="PubMED",
        model="LDA",
        params={"n_docs": 600, "vocab": 6000, "doc_length": 60, "true_topics": 10},
        paper_stats={"rows": "8.2M", "cols": "141K", "nnz": "737M", "size": "4GB"},
    ),
    "app": DatasetSpec(
        name="App",
        model="LDA",
        params={"n_docs": 900, "vocab": 2400, "doc_length": 40, "true_topics": 10},
        paper_stats={"rows": "2.3B", "cols": "558K", "nnz": "161B", "size": "797GB"},
    ),
    "gender": DatasetSpec(
        name="Gender",
        model="GBDT",
        params={"n_rows": 1200, "n_features": 33},
        paper_stats={"rows": "122M", "cols": "330K", "nnz": "12.17B", "size": "145GB"},
    ),
    "graph1": DatasetSpec(
        name="Graph1",
        model="DeepWalk",
        params={"n_vertices": 254, "n_walks": 308, "walk_length": 8},
        paper_stats={"vertices": "254K", "walks": "308K", "size": "100MB"},
    ),
    "graph2": DatasetSpec(
        name="Graph2",
        model="DeepWalk",
        params={"n_vertices": 1150, "n_walks": 1560, "walk_length": 8},
        paper_stats={"vertices": "115M", "walks": "156M", "size": "10.5GB"},
    ),
}


def dataset(name, seed=0):
    """Generate the analogue registered under *name* (lowercase key)."""
    return CATALOG[name].generate(seed=seed)


def spec(name):
    """The :class:`DatasetSpec` registered under *name*."""
    return CATALOG[name]
