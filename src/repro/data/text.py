"""Synthetic corpora for the LDA workloads (PubMED / App analogues).

Documents are drawn from a ground-truth LDA model: per-document topic
mixtures from a Dirichlet, per-topic word distributions from a Dirichlet
over the vocabulary.  A Gibbs sampler trained on this data genuinely
recovers topic structure, so likelihood curves are meaningful.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import RngRegistry


def synthetic_corpus(n_docs, vocab_size, n_topics=10, doc_length=50,
                     alpha=0.5, beta=0.01, seed=0):
    """Generate documents as arrays of word ids.

    Returns ``(docs, topic_word)`` where ``docs`` is a list of int arrays
    and ``topic_word`` the ground-truth ``n_topics x vocab_size`` word
    distributions (for diagnostics).
    """
    rng = RngRegistry(seed).get("corpus")
    topic_word = rng.dirichlet([beta] * vocab_size, size=n_topics)
    docs = []
    for _ in range(n_docs):
        theta = rng.dirichlet([alpha] * n_topics)
        topics = rng.choice(n_topics, size=doc_length, p=theta)
        words = np.empty(doc_length, dtype=np.int64)
        for topic in np.unique(topics):
            mask = topics == topic
            words[mask] = rng.choice(
                vocab_size, size=int(mask.sum()), p=topic_word[topic]
            )
        docs.append(words)
    return docs, topic_word


def corpus_stats(docs, vocab_size):
    """(n_docs, vocab_size, total_tokens) summary used by Table 2."""
    total_tokens = int(sum(doc.size for doc in docs))
    return len(docs), int(vocab_size), total_tokens
