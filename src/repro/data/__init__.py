"""Synthetic datasets: generators, the Table-2 analogue catalog, libsvm IO."""

from repro.data.catalog import CATALOG, DatasetSpec, dataset, spec
from repro.data.graphs import (
    edge_pairs,
    node2vec_walks,
    preferential_attachment_graph,
    random_walks,
    skipgram_pairs,
)
from repro.data.libsvm import read_libsvm, write_libsvm
from repro.data.synth import dense_tabular, sparse_classification
from repro.data.text import corpus_stats, synthetic_corpus

__all__ = [
    "CATALOG",
    "DatasetSpec",
    "dataset",
    "spec",
    "edge_pairs",
    "node2vec_walks",
    "preferential_attachment_graph",
    "random_walks",
    "skipgram_pairs",
    "read_libsvm",
    "write_libsvm",
    "dense_tabular",
    "sparse_classification",
    "corpus_stats",
    "synthetic_corpus",
]
