"""Graph generation, random walks and skip-gram pair extraction.

The DeepWalk pipeline of Section 5.2.2: sample random walks over a social
graph, slide a context window over each walk, and emit (center, context)
vertex pairs that the embedding trainer treats as "similar".  The paper's
business units provide pre-sampled walks; we generate both graph and walks.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import RngRegistry


def preferential_attachment_graph(n_vertices, out_degree=4, seed=0):
    """A degree-skewed undirected graph (Barabási–Albert flavor).

    Returns an adjacency list: ``list[np.ndarray]`` of neighbor ids.  Social
    networks are heavy-tailed, and walk-frequency skew is what stresses the
    hot embedding vectors in the PS.
    """
    if n_vertices < 2:
        raise ConfigError("need at least 2 vertices")
    out_degree = min(out_degree, n_vertices - 1)
    rng = RngRegistry(seed).get("graph")
    neighbors = [set() for _ in range(n_vertices)]
    # Repeated-endpoint list implements preferential attachment cheaply.
    endpoints = [0, 1]
    neighbors[0].add(1)
    neighbors[1].add(0)
    for v in range(2, n_vertices):
        targets = set()
        while len(targets) < min(out_degree, v):
            candidate = endpoints[int(rng.integers(len(endpoints)))]
            if candidate != v:
                targets.add(candidate)
        for t in targets:
            neighbors[v].add(t)
            neighbors[t].add(v)
            endpoints.extend([v, t])
    return [np.array(sorted(adj), dtype=np.int64) for adj in neighbors]


def random_walks(adjacency, n_walks, walk_length=8, seed=0):
    """Uniform random walks (DeepWalk's sampling rule).

    Start vertices cycle through the graph so every vertex is visited;
    each walk has *walk_length* steps (the paper uses length 8, Table 4).
    """
    rng = RngRegistry(seed).get("walks")
    n_vertices = len(adjacency)
    walks = []
    for w in range(n_walks):
        vertex = w % n_vertices
        walk = [vertex]
        for _ in range(walk_length - 1):
            adj = adjacency[vertex]
            if adj.size == 0:
                break
            vertex = int(adj[int(rng.integers(adj.size))])
            walk.append(vertex)
        walks.append(np.array(walk, dtype=np.int64))
    return walks


def skipgram_pairs(walks, window=4):
    """(center, context) pairs from a sliding window over each walk.

    The paper's Table 4 sets ``window_size = 4``.  Returns a list of
    ``(u, v)`` int tuples.
    """
    pairs = []
    for walk in walks:
        length = walk.size
        for i in range(length):
            lo = max(0, i - window)
            hi = min(length, i + window + 1)
            for j in range(lo, hi):
                if j != i:
                    pairs.append((int(walk[i]), int(walk[j])))
    return pairs


def node2vec_walks(adjacency, n_walks, walk_length=8, p=1.0, q=1.0, seed=0):
    """Second-order biased random walks (node2vec, Grover & Leskovec '16).

    The paper groups node2vec with DeepWalk and LINE as the graph-embedding
    family PS2 serves (Section 3.1, refs [12, 23, 27]).  Transition weights
    from ``t -> v`` when standing at *v* having come from *t*:

    - back to ``t``: ``1/p`` (return parameter),
    - to a neighbor of ``t``: ``1`` (BFS-ish),
    - elsewhere: ``1/q`` (DFS-ish).

    With ``p = q = 1`` this degenerates to DeepWalk's uniform walks.
    """
    rng = RngRegistry(seed).get("node2vec")
    n_vertices = len(adjacency)
    neighbor_sets = [set(a.tolist()) for a in adjacency]
    walks = []
    for w in range(n_walks):
        vertex = w % n_vertices
        walk = [vertex]
        previous = None
        for _ in range(walk_length - 1):
            candidates = adjacency[vertex]
            if candidates.size == 0:
                break
            if previous is None:
                nxt = int(candidates[int(rng.integers(candidates.size))])
            else:
                weights = np.empty(candidates.size)
                for i, candidate in enumerate(candidates):
                    c = int(candidate)
                    if c == previous:
                        weights[i] = 1.0 / p
                    elif c in neighbor_sets[previous]:
                        weights[i] = 1.0
                    else:
                        weights[i] = 1.0 / q
                weights /= weights.sum()
                nxt = int(candidates[int(rng.choice(candidates.size,
                                                    p=weights))])
            walk.append(nxt)
            previous, vertex = vertex, nxt
        walks.append(np.array(walk, dtype=np.int64))
    return walks


def edge_pairs(adjacency):
    """Every directed edge as a (center, context) pair (LINE's sampler)."""
    pairs = []
    for u, neighbors in enumerate(adjacency):
        for v in neighbors:
            pairs.append((u, int(v)))
    return pairs
