"""Configuration objects for the simulated cluster and experiments.

The defaults mirror the testbed in Section 6.1 of the paper: machines with a
2.2 GHz 12-core CPU and 256 GB memory, connected by 10 Gbps Ethernet.  The
simulator is laptop-scale, so dataset sizes are scaled down elsewhere, but
machine *ratios* (compute speed vs. network bandwidth) follow the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError

#: 10 Gbps Ethernet expressed in bytes/second.
TEN_GBPS = 10e9 / 8


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one simulated machine.

    ``flops`` is the effective double-precision throughput the cost model
    charges against; 2.2 GHz x 12 cores x ~4 flops/cycle gives roughly 1e11,
    derated to 2e10 for the scalar-heavy ML kernels these workloads run.
    """

    cores: int = 12
    flops: float = 2e10
    nic_bandwidth: float = TEN_GBPS
    memory_bytes: int = 256 * 1024**3

    def __post_init__(self):
        if self.cores <= 0:
            raise ConfigError("cores must be positive, got %r" % (self.cores,))
        if self.flops <= 0:
            raise ConfigError("flops must be positive, got %r" % (self.flops,))
        if self.nic_bandwidth <= 0:
            raise ConfigError(
                "nic_bandwidth must be positive, got %r" % (self.nic_bandwidth,)
            )

    def compute_seconds(self, flops):
        """Virtual seconds this node needs for *flops* floating-point ops."""
        return float(flops) / self.flops


@dataclass(frozen=True)
class NetworkSpec:
    """Network fabric parameters shared by every link."""

    latency: float = 1e-4
    bandwidth: float = TEN_GBPS

    def __post_init__(self):
        if self.latency < 0:
            raise ConfigError("latency must be >= 0, got %r" % (self.latency,))
        if self.bandwidth <= 0:
            raise ConfigError("bandwidth must be positive, got %r" % (self.bandwidth,))


@dataclass(frozen=True)
class FailureConfig:
    """Failure injection and recovery policy (all default to no failures).

    Injection knobs:

    - ``task_failure_prob`` / ``max_task_retries``: Bernoulli task failures,
      retried by the sparklite scheduler (Figure 13(c)).
    - ``server_failure_times``: ``(server_index, virtual_time)`` pairs; the
      server crashes once its clock passes that time.
    - ``executor_failure_times``: ``(executor_index, virtual_time)`` pairs;
      the executor dies and its partitions redistribute (Section 5.3).
    - ``partition_windows``: ``(node_id, start, stop)`` triples; transfers
      touching the node inside ``[start, stop)`` raise and are retried.

    Recovery knobs:

    - ``checkpoint_interval``: virtual seconds between automatic checkpoint
      sweeps (0 disables them; ``checkpoint_all`` stays available).
    - ``max_op_retries`` / ``op_timeout`` / ``retry_backoff`` /
      ``retry_backoff_multiplier``: the PS-client retry policy — each failed
      attempt charges the detection timeout plus an exponentially growing
      backoff to the client's virtual clock before re-resolving routing and
      re-sending the request.
    """

    task_failure_prob: float = 0.0
    max_task_retries: int = 10
    server_failure_times: tuple = ()
    executor_failure_times: tuple = ()
    partition_windows: tuple = ()
    checkpoint_interval: float = 0.0
    max_op_retries: int = 3
    op_timeout: float = 1e-3
    retry_backoff: float = 1e-3
    retry_backoff_multiplier: float = 2.0

    def __post_init__(self):
        if not 0.0 <= self.task_failure_prob <= 1.0:
            raise ConfigError(
                "task_failure_prob must be in [0, 1], got %r"
                % (self.task_failure_prob,)
            )
        if self.max_task_retries < 0:
            raise ConfigError(
                "max_task_retries must be >= 0, got %r" % (self.max_task_retries,)
            )
        if self.checkpoint_interval < 0:
            raise ConfigError(
                "checkpoint_interval must be >= 0, got %r"
                % (self.checkpoint_interval,)
            )
        if self.max_op_retries < 0:
            raise ConfigError(
                "max_op_retries must be >= 0, got %r" % (self.max_op_retries,)
            )
        if self.op_timeout < 0:
            raise ConfigError(
                "op_timeout must be >= 0, got %r" % (self.op_timeout,)
            )
        if self.retry_backoff < 0:
            raise ConfigError(
                "retry_backoff must be >= 0, got %r" % (self.retry_backoff,)
            )
        if self.retry_backoff_multiplier < 1.0:
            raise ConfigError(
                "retry_backoff_multiplier must be >= 1, got %r"
                % (self.retry_backoff_multiplier,)
            )
        for pair in self.server_failure_times:
            if len(pair) != 2:
                raise ConfigError(
                    "server_failure_times entries are (server_index, time) "
                    "pairs, got %r" % (pair,)
                )
        for pair in self.executor_failure_times:
            if len(pair) != 2:
                raise ConfigError(
                    "executor_failure_times entries are (executor_index, time) "
                    "pairs, got %r" % (pair,)
                )
        for window in self.partition_windows:
            if len(window) != 3:
                raise ConfigError(
                    "partition_windows entries are (node_id, start, stop) "
                    "triples, got %r" % (window,)
                )
            if float(window[2]) <= float(window[1]):
                raise ConfigError(
                    "partition window must end after it starts, got %r"
                    % (window,)
                )


@dataclass(frozen=True)
class ElasticitySpec:
    """Autoscaler policy for the online serving tier (``repro.serving``).

    ``mode`` is the master switch:

    - ``"off"`` (default): no autoscaler is constructed at all — the
      topology stays exactly ``(n_executors, n_servers)`` for the whole
      run and every code path is bit-identical to a pre-elasticity build;
    - ``"auto"``: the serving loop polls the autoscaler between requests;
      it scales the PS tier on the NIC-backlog signal
      (:meth:`NetworkModel.nic_horizon`) and the worker tier on the
      windowed p99-vs-SLO signal, within ``[min_servers, max_servers]``
      and ``[min_workers, max_workers]``.

    Signals:

    - ``scale_up_backlog`` / ``scale_down_backlog``: virtual seconds of
      NIC reservation horizon past "now" on the *busiest* server.  Above
      the up threshold the PS tier grows by one (live shard migration);
      below the down threshold it shrinks by one.
    - ``slo_target``: the windowed p99 latency (seconds) the worker tier
      defends; 0 disables the latency signal.  p99 above the target adds
      a worker, p99 under ``slo_target / 4`` with more than
      ``min_workers`` active retires one.
    - ``cooldown``: virtual seconds between scaling decisions — one
      resize per cooldown window, so a single burst cannot thrash the
      shard map.
    """

    mode: str = "off"
    min_servers: int = 1
    max_servers: int = 8
    min_workers: int = 1
    max_workers: int = 8
    scale_up_backlog: float = 5e-3
    scale_down_backlog: float = 5e-4
    slo_target: float = 0.0
    cooldown: float = 1.0

    def __post_init__(self):
        if self.mode not in ("off", "auto"):
            raise ConfigError(
                "elasticity mode must be 'off' or 'auto', got %r"
                % (self.mode,)
            )
        if self.min_servers < 1:
            raise ConfigError(
                "min_servers must be >= 1, got %r" % (self.min_servers,)
            )
        if self.max_servers < self.min_servers:
            raise ConfigError(
                "max_servers must be >= min_servers, got %r < %r"
                % (self.max_servers, self.min_servers)
            )
        if self.min_workers < 1:
            raise ConfigError(
                "min_workers must be >= 1, got %r" % (self.min_workers,)
            )
        if self.max_workers < self.min_workers:
            raise ConfigError(
                "max_workers must be >= min_workers, got %r < %r"
                % (self.max_workers, self.min_workers)
            )
        if self.scale_up_backlog <= 0:
            raise ConfigError(
                "scale_up_backlog must be positive, got %r"
                % (self.scale_up_backlog,)
            )
        if not 0 <= self.scale_down_backlog < self.scale_up_backlog:
            raise ConfigError(
                "scale_down_backlog must be in [0, scale_up_backlog), got %r"
                % (self.scale_down_backlog,)
            )
        if self.slo_target < 0:
            raise ConfigError(
                "slo_target must be >= 0, got %r" % (self.slo_target,)
            )
        if self.cooldown < 0:
            raise ConfigError(
                "cooldown must be >= 0, got %r" % (self.cooldown,)
            )


@dataclass(frozen=True)
class ClusterConfig:
    """Top-level description of a simulated deployment.

    ``n_executors`` Spark executors (PS2 workers) plus ``n_servers``
    parameter servers plus one driver/coordinator node.

    ``coalesce_requests`` (default on) makes the PS transport wrap all
    sub-requests a client op sends to the same server into one
    ``BatchRequest`` envelope — one request header and one NIC booking per
    server instead of one per (row, shard) — the paper's fat-request header
    amortization (Section 5.1).  Turn it off for A/B measurements of the
    coalescing win; ops that already issue a single message per server are
    unaffected by the knob.

    ``consistency`` selects the execution model (``repro.ps.consistency``):

    - ``"bsp"`` (default): Spark's stage barrier, exactly the paper's
      behaviour — bit-identical to a pre-consistency-layer run;
    - ``"ssp"``: stale-synchronous parallel with staleness bound
      ``staleness`` — a worker beginning logical clock ``c`` blocks until
      every worker completed clock ``c - staleness - 1``, and worker-side
      parameter caches may serve reads up to ``staleness`` clocks old;
    - ``"asp"``: fully asynchronous — no blocking; ``staleness`` (if > 0)
      only sizes the worker cache's reuse window.

    ``replication`` selects the NuPS-style hot-key replication policy
    (``repro.ps.replication``):

    - ``"off"`` (default): no replication manager is constructed at all —
      every code path is bit-identical to a pre-replication run;
    - ``"topk"``: at every rebalance sweep, the hottest
      ``hot_key_fraction`` of (matrix, server) shard keys — ranked by the
      same unified heat metric the hot-shard telemetry reports — are
      replicated;
    - ``"threshold"``: a shard key is replicated while its per-sweep heat
      delta exceeds ``1 / hot_key_fraction`` times its matrix's mean delta
      (an online threshold rather than a fixed count).

    ``replication_factor`` is the number of replicas per hot key (0 means
    "all other servers"); ``rebalance_interval`` is the virtual-seconds
    period of the rebalance sweep (0 sweeps at every stage end).

    ``timeseries_window`` enables the windowed time-series sampler
    (``repro.obs.timeseries``) with windows of that many virtual seconds;
    0 (the default) disables it.  The sampler is passive — enabling it
    never changes simulation results.

    ``wire_codec`` selects the wire-codec policy (``repro.ps.codecs`` +
    ``repro.ps.costmodel``):

    - ``"off"`` (default): no cost model is constructed at all — every
      wire formula is bit-identical to a pre-codec run;
    - ``"auto"``: the cost model picks a codec per message from the
      size/NIC-backlog/shard-heat regime (identity on latency-dominated
      messages, fp16/int8 as the payload grows byte-dominated, top-k on
      hot dense gradient pushes);
    - a codec name (``"fp16"``, ``"int8"``, ``"topk"``, ``"delta"``)
      forces that codec wherever its loss class is sound and identity
      elsewhere — the ablation knob.

    ``codec_topk_ratio`` is the kept fraction for top-k sparsification.

    ``chain_replicas`` enables ElasticDL-style chained shard replication
    for zero-downtime recovery (``repro.ps.replication.ChainReplicator``):
    every primary server keeps its full store mirrored on the next M live
    servers in ring order, every applied write fans out epoch/counter-
    fenced, and a crash promotes the most-advanced successor instead of
    pausing for a checkpoint restore.  0 (the default) constructs no
    chain replicator at all — every code path is bit-identical to a
    pre-chain build; checkpoint-restore remains the only recovery path.
    """

    n_executors: int = 20
    n_servers: int = 20
    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    failures: FailureConfig = field(default_factory=FailureConfig)
    coalesce_requests: bool = True
    consistency: str = "bsp"
    staleness: int = 0
    replication: str = "off"
    hot_key_fraction: float = 0.1
    replication_factor: int = 0
    rebalance_interval: float = 0.0
    timeseries_window: float = 0.0
    wire_codec: str = "off"
    codec_topk_ratio: float = 0.1
    chain_replicas: int = 0
    elasticity: ElasticitySpec = field(default_factory=ElasticitySpec)
    seed: int = 0

    def __post_init__(self):
        if self.n_executors <= 0:
            raise ConfigError(
                "n_executors must be positive, got %r" % (self.n_executors,)
            )
        if self.n_servers < 0:
            raise ConfigError("n_servers must be >= 0, got %r" % (self.n_servers,))
        if self.consistency not in ("bsp", "ssp", "asp"):
            raise ConfigError(
                "consistency must be 'bsp', 'ssp' or 'asp', got %r"
                % (self.consistency,)
            )
        if self.staleness < 0:
            raise ConfigError(
                "staleness must be >= 0, got %r" % (self.staleness,)
            )
        if self.replication not in ("off", "topk", "threshold"):
            raise ConfigError(
                "replication must be 'off', 'topk' or 'threshold', got %r"
                % (self.replication,)
            )
        if not 0.0 < self.hot_key_fraction <= 1.0:
            raise ConfigError(
                "hot_key_fraction must be in (0, 1], got %r"
                % (self.hot_key_fraction,)
            )
        if self.replication_factor < 0:
            raise ConfigError(
                "replication_factor must be >= 0, got %r"
                % (self.replication_factor,)
            )
        if self.rebalance_interval < 0:
            raise ConfigError(
                "rebalance_interval must be >= 0, got %r"
                % (self.rebalance_interval,)
            )
        if self.timeseries_window < 0:
            raise ConfigError(
                "timeseries_window must be >= 0, got %r"
                % (self.timeseries_window,)
            )
        if self.wire_codec not in ("off", "auto", "fp16", "int8", "topk",
                                   "delta"):
            raise ConfigError(
                "wire_codec must be 'off', 'auto', 'fp16', 'int8', 'topk' "
                "or 'delta', got %r" % (self.wire_codec,)
            )
        if not 0.0 < self.codec_topk_ratio <= 1.0:
            raise ConfigError(
                "codec_topk_ratio must be in (0, 1], got %r"
                % (self.codec_topk_ratio,)
            )
        if self.chain_replicas < 0:
            raise ConfigError(
                "chain_replicas must be >= 0, got %r"
                % (self.chain_replicas,)
            )
