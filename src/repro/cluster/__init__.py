"""Simulated cluster substrate: machines, virtual clocks, network, failures."""

from repro.cluster.cluster import DRIVER, Cluster, executor_id, server_id
from repro.cluster.failures import FailureInjector
from repro.cluster.metrics import MetricsRegistry
from repro.cluster.network import NetworkModel
from repro.cluster.node import ROLE_DRIVER, ROLE_EXECUTOR, ROLE_SERVER, Node
from repro.cluster.simclock import SimClock

__all__ = [
    "DRIVER",
    "Cluster",
    "executor_id",
    "server_id",
    "FailureInjector",
    "MetricsRegistry",
    "NetworkModel",
    "ROLE_DRIVER",
    "ROLE_EXECUTOR",
    "ROLE_SERVER",
    "Node",
    "SimClock",
]
