"""The simulated deployment: driver + executors + parameter servers.

A :class:`Cluster` owns the shared clock, network, metrics, RNG registry and
failure injector, and registers one node per simulated machine.  The
sparklite engine and the PS substrate are both built over the same cluster
object so that every byte any system sends is charged against the same cost
model — the control the paper's "Spark- / PS- / PS2-" comparisons rely on.
"""

from __future__ import annotations

from repro.cluster.failures import FailureInjector
from repro.cluster.metrics import MetricsRegistry
from repro.cluster.network import NetworkModel
from repro.cluster.node import ROLE_DRIVER, ROLE_EXECUTOR, ROLE_SERVER, Node
from repro.cluster.simclock import SimClock
from repro.common.errors import ClusterError, UnknownNodeError
from repro.common.rng import RngRegistry
from repro.config import ClusterConfig
from repro.obs import bench_capture, default_tracing, \
    register_bench_cluster, register_traced_cluster
from repro.obs.tracer import Tracer

#: Reserved node id for the driver/coordinator.
DRIVER = "driver"


def executor_id(index):
    """Node id of the *index*-th Spark executor."""
    return "executor-%d" % index


def server_id(index):
    """Node id of the *index*-th parameter server."""
    return "server-%d" % index


class Cluster:
    """A fully wired simulated deployment."""

    def __init__(self, config=None):
        self.config = config or ClusterConfig()
        self.clock = SimClock()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.clock, enabled=default_tracing())
        if self.tracer.enabled:
            register_traced_cluster(self)
        if bench_capture():
            register_bench_cluster(self)
        self.network = NetworkModel(
            self.clock,
            self.metrics,
            latency=self.config.network.latency,
            default_bandwidth=self.config.network.bandwidth,
            tracer=self.tracer,
        )
        self.rng = RngRegistry(self.config.seed)
        self.failures = FailureInjector(
            self.rng.get("failures"),
            task_failure_prob=self.config.failures.task_failure_prob,
            max_task_retries=self.config.failures.max_task_retries,
        )
        # The network is built before the injector (it needs only clock and
        # metrics); partitions are consulted through this back-reference.
        self.network.failures = self.failures
        for index, at_time in self.config.failures.server_failure_times:
            self.failures.schedule_server_failure(
                server_id(int(index)), float(at_time)
            )
        for index, at_time in self.config.failures.executor_failure_times:
            self.failures.schedule_executor_failure(
                executor_id(int(index)), float(at_time)
            )
        for node_id, start, stop in self.config.failures.partition_windows:
            self.failures.schedule_partition(node_id, float(start), float(stop))
        #: Callbacks the scheduler runs after every stage barrier — the
        #: virtual-time hook that drives periodic checkpoint sweeps.
        self.stage_end_hooks = []
        #: Callbacks fired whenever the server/worker topology changes
        #: (elastic resize, live shard migration).  Routing caches and
        #: worker caches register here: anything derived from a shard
        #: layout must be dropped when the shard map moves.
        self.topology_change_hooks = []
        #: Callbacks fired when a worker's logical clock ticks (SSP/ASP):
        #: ``hook(node_id, new_clock)``.  Worker-side parameter caches
        #: register here to run their version-vector renewal RPC.
        self.clock_advance_hooks = []
        #: The hot-key replication manager, installed by the PS master when
        #: ``config.replication`` is on; ``None`` keeps every transport and
        #: server path bit-identical to a pre-replication build.
        self.replication = None
        #: The wire-codec cost model, installed by the PS master when
        #: ``config.wire_codec`` is on; ``None`` keeps every wire formula
        #: bit-identical to a pre-codec build.
        self.costmodel = None
        #: The chain replicator, installed by the PS master when
        #: ``config.chain_replicas`` > 0; ``None`` keeps every transport
        #: and server path bit-identical to a pre-chain build.
        self.chain = None
        # Imported lazily: the repro.ps package init pulls in modules that
        # import this module back (e.g. ps.master needs DRIVER), so a
        # top-level import would run against a partially-initialized
        # repro.cluster.cluster.  By instance-construction time both
        # packages are fully loaded.
        from repro.ps.consistency import make_consistency

        self.consistency = make_consistency(self.config)
        self._nodes = {}
        # Live topology counts.  They start at the configured sizes and
        # move only under elastic scaling (Cluster.add_executor /
        # add_server_node and PSMaster.resize_servers); with elasticity
        # off they are constants and everything behaves as before.
        self._n_executors = self.config.n_executors
        self._n_servers = self.config.n_servers
        self._add_node(DRIVER, ROLE_DRIVER)
        for index in range(self.config.n_executors):
            self._add_node(executor_id(index), ROLE_EXECUTOR)
        for index in range(self.config.n_servers):
            self._add_node(server_id(index), ROLE_SERVER)
        #: The windowed time-series sampler (``None`` when disabled, the
        #: default — a disabled sampler costs nothing anywhere).  Enabled,
        #: it only *reads* clocks/counters/horizons, so runs stay
        #: bit-identical either way.
        self.timeseries = None
        if self.config.timeseries_window > 0:
            from repro.obs.timeseries import TimeSeriesSampler

            self.timeseries = TimeSeriesSampler(
                self, self.config.timeseries_window
            )
            self.metrics.window_sink = self.timeseries
            self.stage_end_hooks.append(self.timeseries.maybe_flush)

    def _add_node(self, node_id, role):
        node = Node(node_id, role, self.config.node)
        self._nodes[node_id] = node
        self.clock.register(node_id)
        self.network.register(node_id, self.config.node.nic_bandwidth)
        return node

    # -- topology ---------------------------------------------------------

    def node(self, node_id):
        """Look up a node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError("unknown node %r" % (node_id,)) from None

    @property
    def driver(self):
        return self._nodes[DRIVER]

    @property
    def node_ids(self):
        """Every node id in registration order (driver first)."""
        return list(self._nodes)

    @property
    def executors(self):
        """Executor node ids in index order."""
        return [executor_id(i) for i in range(self._n_executors)]

    @property
    def servers(self):
        """Server node ids in index order."""
        return [server_id(i) for i in range(self._n_servers)]

    def add_executor(self):
        """Register one more executor (elastic scale-up); returns its id.

        Re-adding an index that existed earlier in the run reuses the
        registered node (clock/NIC state persists — the simulated machine
        was idle, not deallocated); a brand-new index registers a fresh
        node whose clock starts at the current global time, so a machine
        that joins mid-run cannot report completions in the past.
        """
        index = self._n_executors
        node_id = executor_id(index)
        if node_id not in self._nodes:
            self._add_node(node_id, ROLE_EXECUTOR)
            self.clock.set_at_least(node_id, self.clock.global_time())
        self._nodes[node_id].alive = True
        self._n_executors += 1
        return node_id

    def remove_executor(self):
        """Retire the highest-indexed executor (elastic scale-down).

        The node stays registered (its clock and NIC history are part of
        the run) but leaves the active set; a later :meth:`add_executor`
        can bring it back.
        """
        if self._n_executors <= 1:
            raise ClusterError("cannot remove the last executor")
        self._n_executors -= 1
        return executor_id(self._n_executors)

    def add_server_node(self):
        """Register one more server node (elastic scale-up); returns its id.

        Same reuse semantics as :meth:`add_executor`.  The PS master owns
        the server-side state machine (:meth:`PSMaster.resize_servers`);
        this only provides the simulated machine.
        """
        index = self._n_servers
        node_id = server_id(index)
        if node_id not in self._nodes:
            self._add_node(node_id, ROLE_SERVER)
            self.clock.set_at_least(node_id, self.clock.global_time())
        self._nodes[node_id].alive = True
        self._n_servers += 1
        return node_id

    def remove_server_node(self):
        """Retire the highest-indexed server node (elastic scale-down)."""
        if self._n_servers <= 1:
            raise ClusterError("cannot remove the last server")
        self._n_servers -= 1
        return server_id(self._n_servers)

    def notify_topology_change(self):
        """Fan a topology change out to registered invalidation hooks."""
        for hook in self.topology_change_hooks:
            hook()

    def nodes_by_role(self, role):
        """All node ids with the given role."""
        return [n.node_id for n in self._nodes.values() if n.role == role]

    @property
    def alive_executors(self):
        """Executor node ids currently up, in index order."""
        return [e for e in self.executors if self._nodes[e].alive]

    def fail_executor(self, node_id):
        """Kill an executor: its partitions will be reloaded elsewhere.

        Section 5.3 (executor failure): "PS2 relies on the fault tolerance
        provided by RDDs.  It simply launches a new executor and reloads
        that partition of training data from the input."
        """
        node = self.node(node_id)
        if node.role != ROLE_EXECUTOR:
            raise ClusterError("%r is not an executor" % (node_id,))
        node.alive = False
        self.metrics.increment("executor-failures")

    def restore_executor(self, node_id):
        """Bring a (replacement) executor up under the same id."""
        node = self.node(node_id)
        if node.role != ROLE_EXECUTOR:
            raise ClusterError("%r is not an executor" % (node_id,))
        node.alive = True

    # -- consistency ------------------------------------------------------

    def notify_clock_advance(self, node_id, clock_value):
        """Fan a worker's logical-clock tick out to registered hooks."""
        for hook in self.clock_advance_hooks:
            hook(node_id, clock_value)

    # -- cost charging ----------------------------------------------------

    def charge_flops(self, node_id, flops, tag="compute"):
        """Charge *flops* of work to *node_id*'s clock; returns new time."""
        seconds = self.node(node_id).compute_seconds(flops)
        self.metrics.record_compute(node_id, seconds, tag=tag)
        return self.clock.advance(node_id, seconds)

    def charge_seconds(self, node_id, seconds, tag="compute"):
        """Charge a raw duration (already in virtual seconds) to a node."""
        self.metrics.record_compute(node_id, seconds, tag=tag)
        return self.clock.advance(node_id, seconds)

    def elapsed(self):
        """Virtual makespan so far: the latest clock in the deployment."""
        return self.clock.global_time()

    def barrier(self, node_ids=None):
        """Synchronize a node group (all of them by default)."""
        if node_ids is None:
            node_ids = list(self._nodes)
        return self.clock.barrier(node_ids)

    def reset_time(self):
        """Rewind every clock and NIC queue; metrics are kept."""
        self.clock.reset()
        self.network.reset()
