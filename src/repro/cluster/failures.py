"""Seeded failure injection.

Reproduces the fault-tolerance experiments of Section 6.5: tasks fail with
a configurable Bernoulli probability and are retried by the sparklite
scheduler; server and executor crashes are scheduled at explicit virtual
times; transient network partitions cover a node for a virtual-time window.
Server crashes trigger checkpoint recovery in the PS substrate, executor
crashes trigger partition redistribution in the scheduler, and partitioned
transfers are retried under the PS client's retry policy.
"""

from __future__ import annotations

from repro.common.errors import ConfigError

#: Shared empty result for the no-failures fast path (callers only read it).
_NO_EVENTS = []


class FailureInjector:
    """Decides, deterministically, when simulated components fail."""

    def __init__(self, rng, task_failure_prob=0.0, max_task_retries=10):
        if not 0.0 <= task_failure_prob <= 1.0:
            raise ConfigError(
                "task_failure_prob must be in [0, 1], got %r" % (task_failure_prob,)
            )
        self._rng = rng
        self.task_failure_prob = float(task_failure_prob)
        self.max_task_retries = int(max_task_retries)
        self._server_failures = []
        self._executor_failures = []
        self._partitions = []
        self.injected_task_failures = 0
        self.injected_executor_failures = 0

    # -- task failures (Bernoulli, Figure 13(c)) ----------------------------

    def should_fail_task(self):
        """Whether the task attempt being launched should fail."""
        if self.task_failure_prob == 0.0:
            return False
        failed = bool(self._rng.random() < self.task_failure_prob)
        if failed:
            self.injected_task_failures += 1
        return failed

    # -- server crashes (virtual-time scheduled) ----------------------------

    def schedule_server_failure(self, server_id, at_time):
        """Arrange for *server_id* to crash once its clock passes *at_time*."""
        self._server_failures.append({"server": server_id, "time": float(at_time)})

    def due_server_failures(self, server_id, now):
        """Pop and return the failures scheduled for *server_id* up to *now*."""
        if not self._server_failures:
            return _NO_EVENTS
        due = [
            event
            for event in self._server_failures
            if event["server"] == server_id and event["time"] <= now
        ]
        if due:
            self._server_failures = [
                event for event in self._server_failures if event not in due
            ]
        return due

    # -- executor crashes (virtual-time scheduled) --------------------------

    def schedule_executor_failure(self, executor_id, at_time):
        """Arrange for *executor_id* to die once its clock passes *at_time*.

        The sparklite scheduler polls these before placing tasks; a dead
        executor's partitions redistribute over the survivors and the first
        task touching a moved partition pays the input reload (Section 5.3's
        executor-failure recovery).
        """
        self._executor_failures.append(
            {"executor": executor_id, "time": float(at_time)}
        )

    def due_executor_failures(self, executor_id, now):
        """Pop and return the crashes scheduled for *executor_id* up to *now*."""
        if not self._executor_failures:
            return _NO_EVENTS
        due = [
            event
            for event in self._executor_failures
            if event["executor"] == executor_id and event["time"] <= now
        ]
        if due:
            self._executor_failures = [
                event for event in self._executor_failures if event not in due
            ]
            self.injected_executor_failures += len(due)
        return due

    # -- network partitions (transient windows) -----------------------------

    def schedule_partition(self, node_id, start, stop):
        """Partition *node_id* away from the fabric during ``[start, stop)``.

        Transfers whose departure time falls inside the window and touch the
        node raise :class:`~repro.common.errors.NetworkPartitionedError`;
        callers with a retry policy back off (advancing their virtual clock)
        and eventually outlast the window.
        """
        start = float(start)
        stop = float(stop)
        if stop <= start:
            raise ConfigError(
                "partition window must end after it starts, got [%r, %r)"
                % (start, stop)
            )
        self._partitions.append({"node": node_id, "start": start, "stop": stop})

    def has_partitions(self):
        """Whether any partition window is scheduled at all.

        The network model's bulk fast path is only taken when this is
        False, so the per-transfer window checks (three per message) cost
        nothing in the overwhelmingly common partition-free run.
        """
        return bool(self._partitions)

    def has_pending_server_failures(self):
        """Whether any server crash is still scheduled (fast-path gate)."""
        return bool(self._server_failures)

    def partition_active(self, node_id, at_time):
        """Whether *node_id* is inside a partition window at *at_time*."""
        if not self._partitions:
            return False
        return any(
            window["node"] == node_id
            and window["start"] <= at_time < window["stop"]
            for window in self._partitions
        )

    def partition_windows_for(self, node_id):
        """The ``(start, stop)`` windows scheduled for *node_id*."""
        return [
            (window["start"], window["stop"])
            for window in self._partitions
            if window["node"] == node_id
        ]
