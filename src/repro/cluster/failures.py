"""Seeded failure injection.

Reproduces the fault-tolerance experiment of Section 6.5: tasks fail with a
configurable Bernoulli probability and are retried by the sparklite
scheduler.  Server failures are scheduled at explicit virtual times and
trigger checkpoint recovery in the PS substrate.
"""

from __future__ import annotations

from repro.common.errors import ConfigError


class FailureInjector:
    """Decides, deterministically, when simulated components fail."""

    def __init__(self, rng, task_failure_prob=0.0, max_task_retries=10):
        if not 0.0 <= task_failure_prob <= 1.0:
            raise ConfigError(
                "task_failure_prob must be in [0, 1], got %r" % (task_failure_prob,)
            )
        self._rng = rng
        self.task_failure_prob = float(task_failure_prob)
        self.max_task_retries = int(max_task_retries)
        self._server_failures = []
        self.injected_task_failures = 0

    def should_fail_task(self):
        """Whether the task attempt being launched should fail."""
        if self.task_failure_prob == 0.0:
            return False
        failed = bool(self._rng.random() < self.task_failure_prob)
        if failed:
            self.injected_task_failures += 1
        return failed

    def schedule_server_failure(self, server_id, at_time):
        """Arrange for *server_id* to crash once its clock passes *at_time*."""
        self._server_failures.append({"server": server_id, "time": float(at_time)})

    def due_server_failures(self, server_id, now):
        """Pop and return the failures scheduled for *server_id* up to *now*."""
        due = [
            event
            for event in self._server_failures
            if event["server"] == server_id and event["time"] <= now
        ]
        if due:
            self._server_failures = [
                event for event in self._server_failures if event not in due
            ]
        return due
