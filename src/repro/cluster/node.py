"""Simulated machine: an identity, a role and a hardware spec."""

from __future__ import annotations

#: Role tags used across the system.
ROLE_DRIVER = "driver"
ROLE_EXECUTOR = "executor"
ROLE_SERVER = "server"


class Node:
    """One simulated machine participating in a deployment."""

    def __init__(self, node_id, role, spec):
        self.node_id = node_id
        self.role = role
        self.spec = spec
        self.alive = True

    def compute_seconds(self, flops):
        """Virtual seconds this machine needs for *flops* of work."""
        return self.spec.compute_seconds(flops)

    def __repr__(self):
        state = "up" if self.alive else "down"
        return "Node(%r, role=%r, %s)" % (self.node_id, self.role, state)
