"""NIC-serialized network cost model.

The model charges ``latency + bytes / bandwidth`` per transfer and — the
part that actually reproduces the paper — serializes concurrent transfers
through each node's NIC.  Twenty executors pushing a D-sized gradient to
one driver queue behind each other at the driver's NIC (the "single-node
bottleneck" of Section 2), while the same pushes split over S servers queue
only D/S each.

A transfer is modeled in two phases:

1. *send*: books ``bytes / sender_bw`` on the sender's NIC, starting no
   earlier than the sender's clock (or an explicit ``depart_at``);
2. *receive*: after ``latency``, books ``bytes / receiver_bw`` on the
   receiver's NIC.

NIC capacity is tracked with :class:`TimelineResource`, so results do not
depend on the order in which logically-concurrent actors are simulated.

The returned delivery time is when the receiver can consume the message.
Callers decide whether the receiver blocks on it (``deliver=True`` moves
the receiver clock) or the message just becomes available (RPC-style fan-in
where the caller later waits on many responses).
"""

from __future__ import annotations

from repro.cluster.resource import TimelineResource
from repro.common.errors import NetworkPartitionedError, UnknownNodeError
from repro.common.sizeof import MESSAGE_OVERHEAD_BYTES


class NetworkModel:
    """Shared network fabric with per-node NIC queues."""

    def __init__(self, clock, metrics, latency, default_bandwidth,
                 tracer=None, failures=None):
        self.clock = clock
        self.metrics = metrics
        self.tracer = tracer
        self.failures = failures
        self.latency = float(latency)
        self.default_bandwidth = float(default_bandwidth)
        self._bandwidth = {}
        self._nic_send = {}
        self._nic_recv = {}

    def register(self, node_id, bandwidth=None):
        """Attach *node_id* to the fabric with an optional NIC bandwidth."""
        self._bandwidth[node_id] = (
            float(bandwidth) if bandwidth is not None else self.default_bandwidth
        )
        self._nic_send[node_id] = TimelineResource()
        self._nic_recv[node_id] = TimelineResource()

    def bandwidth_of(self, node_id):
        """NIC bandwidth of *node_id* in bytes/second."""
        try:
            return self._bandwidth[node_id]
        except KeyError:
            raise UnknownNodeError("node %r not on the network" % (node_id,)) from None

    def nic_utilization(self, node_id):
        """(send_busy_seconds, recv_busy_seconds) booked on a node's NIC."""
        return (
            self._nic_send[node_id].busy_seconds(),
            self._nic_recv[node_id].busy_seconds(),
        )

    def nic_horizon(self, node_id):
        """(send_horizon, recv_horizon): when each NIC queue drains.

        The horizon is the end of the last reservation on that direction's
        timeline — an instantaneous backlog signal ("when would a new
        message get the wire"), unlike :meth:`nic_utilization`, which is a
        cumulative total.  The replica read router compares horizons to
        find the nearest-by-queue server.
        """
        return (
            self._nic_send[node_id].horizon(),
            self._nic_recv[node_id].horizon(),
        )

    def transfer(self, src, dst, nbytes, tag="transfer", deliver=True,
                 depart_at=None, messages=1, trace_parent=None):
        """Ship *nbytes* (payload; envelope added here) from *src* to *dst*.

        Returns the virtual time at which the message is fully received.
        With ``deliver=True`` the receiver's clock is advanced to that time
        (synchronous receive); with ``deliver=False`` only the NIC queues
        move, and the caller is responsible for waiting (e.g. a client that
        fans a request out to many servers and then waits for all
        responses).  ``depart_at`` overrides the earliest departure time
        (default: the sender's clock) — used for RPC responses, which leave
        when *that request's* service completes rather than when the
        sender's clock says.  ``messages`` is the number of *logical*
        requests this wire message carries (> 1 for a coalesced batch
        envelope): one wire message is always booked, and the logical count
        feeds the coalescing-efficiency accounting.  ``trace_parent``
        parents the two NIC spans to the causing span (the client op or the
        stage) instead of whatever happens to be open on the endpoint
        nodes; pure observability, never a cost input.
        """
        if src == dst:
            # Local hand-off: no wire cost, still counted as a message so
            # protocol-level accounting stays comparable across placements.
            self.metrics.record_transfer(src, dst, 0, tag=tag,
                                         messages=messages)
            return self.clock.now(src)
        if self.failures is not None:
            departs = self.clock.now(src) if depart_at is None else depart_at
            if self.failures.partition_active(src, departs) \
                    or self.failures.partition_active(dst, departs):
                self.metrics.increment("partition-drops")
                raise NetworkPartitionedError(
                    "transfer %s -> %s at t=%.6f hit a network partition"
                    % (src, dst, departs)
                )
        total = float(nbytes) + MESSAGE_OVERHEAD_BYTES
        send_seconds = total / self.bandwidth_of(src)
        recv_seconds = total / self.bandwidth_of(dst)

        earliest = self.clock.now(src) if depart_at is None else depart_at
        depart = self._nic_send[src].reserve(earliest, send_seconds)
        send_done = depart + send_seconds

        recv_start = self._nic_recv[dst].reserve(
            send_done + self.latency, recv_seconds
        )
        recv_done = recv_start + recv_seconds

        self.metrics.record_transfer(src, dst, total, tag=tag,
                                     messages=messages)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record(src, "net:" + tag, depart, send_done,
                               cat="nic-send", parent_id=trace_parent,
                               dst=dst, nbytes=total)
            self.tracer.record(dst, "net:" + tag, recv_start, recv_done,
                               cat="nic-recv", parent_id=trace_parent,
                               src=src, nbytes=total)
        if deliver:
            self.clock.set_at_least(dst, recv_done)
        return recv_done

    def reset(self):
        """Clear NIC queues (used together with ``SimClock.reset``)."""
        for node_id in self._nic_send:
            self._nic_send[node_id].reset()
            self._nic_recv[node_id].reset()
