"""NIC-serialized network cost model.

The model charges ``latency + bytes / bandwidth`` per transfer and — the
part that actually reproduces the paper — serializes concurrent transfers
through each node's NIC.  Twenty executors pushing a D-sized gradient to
one driver queue behind each other at the driver's NIC (the "single-node
bottleneck" of Section 2), while the same pushes split over S servers queue
only D/S each.

A transfer is modeled in two phases:

1. *send*: books ``bytes / sender_bw`` on the sender's NIC, starting no
   earlier than the sender's clock (or an explicit ``depart_at``);
2. *receive*: after ``latency``, books ``bytes / receiver_bw`` on the
   receiver's NIC.

NIC capacity is tracked with :class:`TimelineResource`, so results do not
depend on the order in which logically-concurrent actors are simulated.

The returned delivery time is when the receiver can consume the message.
Callers decide whether the receiver blocks on it (``deliver=True`` moves
the receiver clock) or the message just becomes available (RPC-style fan-in
where the caller later waits on many responses).
"""

from __future__ import annotations

from repro.cluster.resource import TimelineResource
from repro.common.errors import NetworkPartitionedError, UnknownNodeError
from repro.common.sizeof import MESSAGE_OVERHEAD_BYTES


class NetworkModel:
    """Shared network fabric with per-node NIC queues."""

    def __init__(self, clock, metrics, latency, default_bandwidth,
                 tracer=None, failures=None):
        self.clock = clock
        self.metrics = metrics
        self.tracer = tracer
        self.failures = failures
        self.latency = float(latency)
        self.default_bandwidth = float(default_bandwidth)
        self._bandwidth = {}
        self._nic_send = {}
        self._nic_recv = {}

    def register(self, node_id, bandwidth=None):
        """Attach *node_id* to the fabric with an optional NIC bandwidth."""
        self._bandwidth[node_id] = (
            float(bandwidth) if bandwidth is not None else self.default_bandwidth
        )
        self._nic_send[node_id] = TimelineResource()
        self._nic_recv[node_id] = TimelineResource()

    def bandwidth_of(self, node_id):
        """NIC bandwidth of *node_id* in bytes/second."""
        try:
            return self._bandwidth[node_id]
        except KeyError:
            raise UnknownNodeError("node %r not on the network" % (node_id,)) from None

    def nic_utilization(self, node_id):
        """(send_busy_seconds, recv_busy_seconds) booked on a node's NIC."""
        return (
            self._nic_send[node_id].busy_seconds(),
            self._nic_recv[node_id].busy_seconds(),
        )

    def nic_horizon(self, node_id):
        """(send_horizon, recv_horizon): when each NIC queue drains.

        The horizon is the end of the last reservation on that direction's
        timeline — an instantaneous backlog signal ("when would a new
        message get the wire"), unlike :meth:`nic_utilization`, which is a
        cumulative total.  The replica read router compares horizons to
        find the nearest-by-queue server.
        """
        return (
            self._nic_send[node_id].horizon(),
            self._nic_recv[node_id].horizon(),
        )

    def transfer(self, src, dst, nbytes, tag="transfer", deliver=True,
                 depart_at=None, messages=1, trace_parent=None):
        """Ship *nbytes* (payload; envelope added here) from *src* to *dst*.

        Returns the virtual time at which the message is fully received.
        With ``deliver=True`` the receiver's clock is advanced to that time
        (synchronous receive); with ``deliver=False`` only the NIC queues
        move, and the caller is responsible for waiting (e.g. a client that
        fans a request out to many servers and then waits for all
        responses).  ``depart_at`` overrides the earliest departure time
        (default: the sender's clock) — used for RPC responses, which leave
        when *that request's* service completes rather than when the
        sender's clock says.  ``messages`` is the number of *logical*
        requests this wire message carries (> 1 for a coalesced batch
        envelope): one wire message is always booked, and the logical count
        feeds the coalescing-efficiency accounting.  ``trace_parent``
        parents the two NIC spans to the causing span (the client op or the
        stage) instead of whatever happens to be open on the endpoint
        nodes; pure observability, never a cost input.
        """
        if src == dst:
            # Local hand-off: no wire cost, still counted as a message so
            # protocol-level accounting stays comparable across placements.
            self.metrics.record_transfer(src, dst, 0, tag=tag,
                                         messages=messages)
            return self.clock.now(src)
        total = float(nbytes) + MESSAGE_OVERHEAD_BYTES
        send_seconds = total / self.bandwidth_of(src)
        recv_seconds = total / self.bandwidth_of(dst)

        earliest = self.clock.now(src) if depart_at is None else depart_at
        # Probe first, commit after the partition check: the message hits
        # the wire at the *post-NIC-queue* ``depart``, so that is when the
        # partition windows apply — a backlog can push a transfer into (or
        # out of) a window that was inactive (or active) at ``earliest``.
        # A dropped attempt never consumes NIC capacity.
        sender_nic = self._nic_send[src]
        index, depart = sender_nic.probe(earliest, send_seconds)
        failures = self.failures
        if failures is not None and failures.has_partitions():
            if failures.partition_active(src, depart) \
                    or failures.partition_active(dst, depart):
                self.metrics.increment("partition-drops")
                raise NetworkPartitionedError(
                    "transfer %s -> %s departing t=%.6f hit a network "
                    "partition" % (src, dst, depart)
                )
        sender_nic.commit(index, depart, send_seconds)
        send_done = depart + send_seconds

        recv_start = self._nic_recv[dst].reserve(
            send_done + self.latency, recv_seconds
        )
        recv_done = recv_start + recv_seconds

        self.metrics.record_transfer(src, dst, total, tag=tag,
                                     messages=messages)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record(src, "net:" + tag, depart, send_done,
                               cat="nic-send", parent_id=trace_parent,
                               dst=dst, nbytes=total)
            self.tracer.record(dst, "net:" + tag, recv_start, recv_done,
                               cat="nic-recv", parent_id=trace_parent,
                               src=src, nbytes=total)
        if deliver:
            self.clock.set_at_least(dst, recv_done)
        return recv_done

    def transfer_many(self, src, items, depart_at=None):
        """Book a fan-out — many transfers leaving *src* — in one call.

        *items* is a sequence of ``(dst, nbytes, tag, messages)``; every
        transfer departs no earlier than ``depart_at`` (default: the
        sender's clock) and is booked ``deliver=False`` (fan-out callers
        wait on the returned times themselves).  Returns the list of
        ``recv_done`` times, aligned with *items*.

        Bit-identical to calling :meth:`transfer` once per item in order —
        the sender's NIC bookings go through one :meth:`TimelineResource
        .reserve_many` round instead of N reserve calls, receiver NICs are
        distinct timelines anyway, and the metrics land through one bulk
        record.  Callers must keep to the per-message path when partition
        windows are scheduled (drops raise per-message there) or when spans
        must interleave with per-message service; this method asserts the
        former.
        """
        if self.failures is not None and self.failures.has_partitions():
            raise AssertionError(
                "transfer_many is partition-unaware; use transfer() while "
                "partition windows are scheduled"
            )
        earliest = self.clock.now(src) if depart_at is None else depart_at
        send_bw = self.bandwidth_of(src)
        totals = [float(nbytes) + MESSAGE_OVERHEAD_BYTES
                  for _, nbytes, _, _ in items]
        send_durations = [total / send_bw for total in totals]
        departs = self._nic_send[src].reserve_many(
            [(earliest, duration) for duration in send_durations]
        )

        latency = self.latency
        nic_recv = self._nic_recv
        bandwidth = self._bandwidth
        tracer = self.tracer
        traced = tracer is not None and tracer.enabled
        recv_times = []
        metric_items = []
        for pos, (dst, _, tag, messages) in enumerate(items):
            total = totals[pos]
            depart = departs[pos]
            send_done = depart + send_durations[pos]
            recv_seconds = total / bandwidth[dst]
            recv_start = nic_recv[dst].reserve(
                send_done + latency, recv_seconds
            )
            recv_done = recv_start + recv_seconds
            recv_times.append(recv_done)
            metric_items.append((dst, total, tag, messages))
            if traced:
                tracer.record(src, "net:" + tag, depart, send_done,
                              cat="nic-send", dst=dst, nbytes=total)
                tracer.record(dst, "net:" + tag, recv_start, recv_done,
                              cat="nic-recv", src=src, nbytes=total)
        self.metrics.record_transfer_fanout(src, metric_items)
        return recv_times

    def transfer_gather(self, dst, items):
        """Book a fan-in — many transfers converging on *dst* — in one call.

        *items* is a sequence of ``(src, nbytes, tag, messages,
        depart_at)`` (the RPC-response shape: each response leaves its
        server when that request's service completes).  Booked
        ``deliver=False``; returns the ``recv_done`` times aligned with
        *items*.  Same equivalence and partition caveats as
        :meth:`transfer_many`, mirrored: per-item sender NICs are distinct
        timelines, and the shared receiver NIC is booked through one
        ``reserve_many`` round.
        """
        if self.failures is not None and self.failures.has_partitions():
            raise AssertionError(
                "transfer_gather is partition-unaware; use transfer() "
                "while partition windows are scheduled"
            )
        latency = self.latency
        nic_send = self._nic_send
        bandwidth = self._bandwidth
        recv_bw = bandwidth[dst]
        tracer = self.tracer
        traced = tracer is not None and tracer.enabled

        totals = []
        recv_jobs = []
        sends = []
        for src, nbytes, tag, messages, depart_at in items:
            total = float(nbytes) + MESSAGE_OVERHEAD_BYTES
            send_seconds = total / bandwidth[src]
            depart = nic_send[src].reserve(depart_at, send_seconds)
            send_done = depart + send_seconds
            totals.append(total)
            sends.append((depart, send_done))
            recv_jobs.append((send_done + latency, total / recv_bw))
        recv_starts = self._nic_recv[dst].reserve_many(recv_jobs)

        recv_times = []
        metric_items = []
        for pos, (src, _, tag, messages, _) in enumerate(items):
            total = totals[pos]
            recv_done = recv_starts[pos] + recv_jobs[pos][1]
            recv_times.append(recv_done)
            metric_items.append((src, total, tag, messages))
            if traced:
                depart, send_done = sends[pos]
                tracer.record(src, "net:" + tag, depart, send_done,
                              cat="nic-send", dst=dst, nbytes=total)
                tracer.record(dst, "net:" + tag, recv_starts[pos],
                              recv_done, cat="nic-recv", src=src,
                              nbytes=total)
        self.metrics.record_transfer_gather(dst, metric_items)
        return recv_times

    def reset(self):
        """Clear NIC queues (used together with ``SimClock.reset``)."""
        for node_id in self._nic_send:
            self._nic_send[node_id].reset()
            self._nic_recv[node_id].reset()
