"""Order-insensitive capacity reservation for NICs and server CPUs.

The simulator processes logically-concurrent actors sequentially, so
requests are *not* presented in virtual-time order.  A naive "busy-until"
horizon would make a message that arrives at t=5 (but is processed second
in Python) queue behind one that arrives at t=9 (processed first).

:class:`TimelineResource` instead keeps the set of reserved busy intervals
and places each new job in the first idle gap at or after its arrival —
so the outcome is independent of processing order while capacity is never
double-booked.  Adjacent intervals are merged, keeping the list short.
"""

from __future__ import annotations

from bisect import bisect_left

#: Gaps shorter than this are merged away (floating-point hygiene).
_MERGE_EPS = 1e-12


class TimelineResource:
    """A serially-shared resource (one NIC direction, one server CPU)."""

    def __init__(self):
        self._starts = []
        self._ends = []

    def reserve(self, earliest, duration):
        """Book *duration* seconds starting no earlier than *earliest*.

        Returns the start time of the booked slot (the first idle gap that
        fits).  Zero-duration reservations return *earliest* untouched.
        """
        if duration <= 0:
            return earliest
        start = float(earliest)
        index = bisect_left(self._ends, start)
        while index < len(self._starts):
            gap_end = self._starts[index]
            if gap_end - start >= duration - _MERGE_EPS:
                break
            start = max(start, self._ends[index])
            index += 1
        self._insert(index, start, start + duration)
        return start

    def _insert(self, index, start, end):
        """Insert ``[start, end)`` at *index*, merging with its neighbors."""
        merge_prev = (
            index > 0 and start - self._ends[index - 1] <= _MERGE_EPS
        )
        merge_next = (
            index < len(self._starts)
            and self._starts[index] - end <= _MERGE_EPS
        )
        if merge_prev and merge_next:
            self._ends[index - 1] = self._ends[index]
            del self._starts[index]
            del self._ends[index]
        elif merge_prev:
            self._ends[index - 1] = end
        elif merge_next:
            self._starts[index] = start
        else:
            self._starts.insert(index, start)
            self._ends.insert(index, end)

    def busy_seconds(self):
        """Total reserved time (utilization accounting)."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    def horizon(self):
        """End of the last reservation (0.0 when never used)."""
        return self._ends[-1] if self._ends else 0.0

    def reset(self):
        """Drop all reservations."""
        self._starts = []
        self._ends = []

    def __len__(self):
        return len(self._starts)
