"""Order-insensitive capacity reservation for NICs and server CPUs.

The simulator processes logically-concurrent actors sequentially, so
requests are *not* presented in virtual-time order.  A naive "busy-until"
horizon would make a message that arrives at t=5 (but is processed second
in Python) queue behind one that arrives at t=9 (processed first).

:class:`TimelineResource` instead keeps the set of reserved busy intervals
and places each new job in the first idle gap at or after its arrival —
so the outcome is independent of processing order while capacity is never
double-booked.  Adjacent intervals are merged, keeping the list short.

Fast path (PR 7): a fan-out books its N transfers through
:meth:`reserve_many` in one call — same gap search per job, but without N
rounds of Python call overhead — and ``busy_seconds`` is an incrementally
maintained total instead of an O(intervals) re-sum per query.
"""

from __future__ import annotations

from bisect import bisect_left

#: Gaps shorter than this are merged away (floating-point hygiene).
_MERGE_EPS = 1e-12

#: Durations at or below this take the general probe path: the fit test
#: tolerates an ``_MERGE_EPS`` shortfall, so only jobs comfortably longer
#: than the epsilon can skip it safely.
_EPS2 = 2 * _MERGE_EPS


class TimelineResource:
    """A serially-shared resource (one NIC direction, one server CPU)."""

    __slots__ = ("_starts", "_ends", "_busy")

    def __init__(self):
        self._starts = []
        self._ends = []
        self._busy = 0.0

    def probe(self, earliest, duration):
        """Where would :meth:`reserve` place this job?  Books nothing.

        Returns ``(index, start)``: the insertion index and the start of the
        first idle gap at or after *earliest* that fits *duration*.  Pass
        both to :meth:`commit` to actually book the slot.  The probe/commit
        split lets the network model decide a transfer's fate (e.g. a
        partition drop) at its true post-queue departure time without
        consuming NIC capacity on the failed attempt.
        """
        start = float(earliest)
        ends = self._ends
        starts = self._starts
        # ``bisect_left`` on the interval *ends*: an arrival exactly equal
        # to an interval's end lands on that interval and probes its
        # zero-width "gap" (gap_end == interval.start <= arrival), which the
        # fit test rejects, so the walk advances — same outcome as
        # bisect_right, one extra loop turn.  Pinned by boundary-value tests
        # in test_resource.py.
        index = bisect_left(ends, start)
        n = len(starts)
        while index < n:
            gap_end = starts[index]
            if gap_end - start >= duration - _MERGE_EPS:
                break
            end = ends[index]
            if end > start:
                start = end
            index += 1
        return index, start

    def commit(self, index, start, duration):
        """Book ``[start, start + duration)`` at a :meth:`probe` result."""
        self._insert(index, start, start + duration)
        return start

    def reserve(self, earliest, duration):
        """Book *duration* seconds starting no earlier than *earliest*.

        Returns the start time of the booked slot (the first idle gap that
        fits).  Zero-duration reservations return *earliest* untouched.

        This is the simulator's hottest function (one call per NIC
        direction per wire message, one per service), so the common shapes
        are special-cased before the general gap walk — each branch is a
        provably-identical shortcut of ``probe`` + ``_insert``, using the
        same float expressions so the booked starts and the running
        ``_busy`` total stay bit-for-bit what the general path computes:

        - *tail*: no interval ends after the arrival, so no interior gap
          exists and the job appends to (or merges with) the last interval;
        - *extend-final*: the arrival falls inside the final interval
          (``earliest >= starts[-1]``), so the only gap at/after it is the
          zero-width one the fit test rejects, and the job lands exactly at
          the final end — ``_insert``'s merge-prev branch;
        - *front-gap-miss* (single interval): the gap before the lone
          interval does not fit, same merge-prev outcome.

        Durations at or below ``2 * _MERGE_EPS`` skip the shortcuts: the
        fit test tolerates an ``_MERGE_EPS`` shortfall, so only jobs
        comfortably longer than the epsilon can bypass it safely.
        """
        if duration <= 0:
            return earliest
        ends = self._ends
        starts = self._starts
        if duration > _EPS2:
            if not ends:
                end = earliest + duration
                starts.append(earliest)
                ends.append(end)
                self._busy += end - earliest
                return earliest
            last_end = ends[-1]
            if earliest >= last_end - _MERGE_EPS:
                # Tail: nothing ends at/after the arrival.
                start = earliest if earliest > last_end else last_end
                end = start + duration
                if start - last_end <= _MERGE_EPS:
                    self._busy += end - last_end
                    ends[-1] = end
                else:
                    self._busy += end - start
                    starts.append(start)
                    ends.append(end)
                return start
            if earliest >= starts[-1] or (
                len(ends) == 1
                and starts[0] - earliest < duration - _MERGE_EPS
            ):
                # Extend-final / front-gap-miss: the probe would walk to
                # the final interval's end and merge — same busy delta and
                # end update as _insert's merge-prev branch.  This is THE
                # hot case: fan-out bookings queue behind the same NIC's
                # growing final interval.
                end = last_end + duration
                self._busy += end - last_end
                ends[-1] = end
                return last_end
        # General path: first-fit gap walk (probe), inlined to skip a
        # Python frame on the ~40% of bookings that land in interior gaps
        # of heavily fragmented timelines (scattered tiny service slots).
        start = float(earliest)
        index = bisect_left(ends, start)
        n = len(starts)
        while index < n:
            gap_end = starts[index]
            if gap_end - start >= duration - _MERGE_EPS:
                break
            end = ends[index]
            if end > start:
                start = end
            index += 1
        self._insert(index, start, start + duration)
        return start

    def reserve_many(self, jobs):
        """Book a sequence of ``(earliest, duration)`` jobs in one call.

        Behaviorally identical to calling :meth:`reserve` once per job in
        the same order (each job sees the bookings of those before it, and
        the timeline is order-insensitive anyway — see
        test_resource_properties.py); returns the list of booked starts.

        The tail and extend-final shortcuts from :meth:`reserve` are
        inlined in the loop (same expressions, verbatim), so the dominant
        fan-out pattern — every transfer queueing behind the same NIC's
        growing final interval — books N slots with zero per-job Python
        call dispatch; anything else falls back to :meth:`reserve`.
        """
        starts_out = []
        append = starts_out.append
        reserve = self.reserve
        ends = self._ends
        starts = self._starts
        for earliest, duration in jobs:
            if duration > _EPS2 and ends:
                last_end = ends[-1]
                if earliest >= last_end - _MERGE_EPS:
                    # Tail (see reserve).
                    start = earliest if earliest > last_end else last_end
                    end = start + duration
                    if start - last_end <= _MERGE_EPS:
                        self._busy += end - last_end
                        ends[-1] = end
                    else:
                        self._busy += end - start
                        starts.append(start)
                        ends.append(end)
                    append(start)
                    continue
                if earliest >= starts[-1]:
                    # Extend-final (see reserve).
                    end = last_end + duration
                    self._busy += end - last_end
                    ends[-1] = end
                    append(last_end)
                    continue
            append(reserve(earliest, duration))
        return starts_out

    def reserve_chain(self, earliest, durations):
        """Book *durations* back-to-back: each starts at the previous end.

        Equivalent to ``t = earliest; for d in durations: t = reserve(t, d)
        + d`` — the server CPU's service chain for a coalesced batch —
        returning the list of booked starts.  Kept as a loop over the same
        probe/insert primitives so a chain that straddles existing bookings
        splits across gaps exactly as sequential :meth:`reserve` would.
        """
        starts_out = []
        append = starts_out.append
        reserve = self.reserve
        at = earliest
        for duration in durations:
            start = reserve(at, duration)
            append(start)
            if duration > 0:
                at = start + duration
        return starts_out

    def _insert(self, index, start, end):
        """Insert ``[start, end)`` at *index*, merging with its neighbors.

        ``_busy`` is updated with the exact branch delta, so
        :meth:`busy_seconds` never re-sums the interval list:

        - no merge:     +(end - start)
        - merge prev:   +(end - prev_end)        [prev_end ~= start]
        - merge next:   +(next_start - start)    [next_start ~= end]
        - merge both:   +(next_start - prev_end)
        """
        starts = self._starts
        ends = self._ends
        merge_prev = index > 0 and start - ends[index - 1] <= _MERGE_EPS
        merge_next = (
            index < len(starts) and starts[index] - end <= _MERGE_EPS
        )
        if merge_prev and merge_next:
            self._busy += starts[index] - ends[index - 1]
            ends[index - 1] = ends[index]
            del starts[index]
            del ends[index]
        elif merge_prev:
            self._busy += end - ends[index - 1]
            ends[index - 1] = end
        elif merge_next:
            self._busy += starts[index] - start
            starts[index] = start
        else:
            self._busy += end - start
            starts.insert(index, start)
            ends.insert(index, end)

    def busy_seconds(self):
        """Total reserved time (utilization accounting); O(1)."""
        return self._busy

    def horizon(self):
        """End of the last reservation (0.0 when never used)."""
        return self._ends[-1] if self._ends else 0.0

    def reset(self):
        """Drop all reservations."""
        self._starts = []
        self._ends = []
        self._busy = 0.0

    def __len__(self):
        return len(self._starts)
