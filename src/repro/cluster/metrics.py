"""Traffic, work and latency accounting for the simulated cluster.

The registry is append-cheap (plain counters plus O(1) streaming
histograms) and queried by benchmarks to report *why* one system beats
another: bytes moved per node, messages per operation tag, virtual seconds
of compute charged per node, latency percentiles per op, and per-shard
access counts that expose hot parameters and server load imbalance.

Everything here is passive bookkeeping: recording never touches a clock or
a resource timeline, so metrics (like tracing) cannot perturb the cost
model.
"""

from __future__ import annotations

from collections import defaultdict

from repro.obs.histogram import StreamingHistogram


class MetricsRegistry:
    """Counters for bytes, messages, compute, latency and shard load."""

    def __init__(self):
        self.bytes_sent = defaultdict(float)
        self.bytes_received = defaultdict(float)
        self.bytes_by_tag = defaultdict(float)
        self.messages_by_tag = defaultdict(int)
        # Logical requests per tag: a coalesced batch is ONE wire message
        # (messages_by_tag) carrying N sub-requests (logical_messages_by_tag);
        # the gap between the two is the header-amortization win.
        self.logical_messages_by_tag = defaultdict(int)
        self.compute_seconds = defaultdict(float)
        self.counters = defaultdict(int)
        # Compute-op counts get their own namespace: ``record_compute`` used
        # to write "compute:<tag>" into ``counters``, colliding with any
        # free-form ``increment`` name starting with that prefix.
        self.compute_counts = defaultdict(int)
        self.requests_by_server = defaultdict(int)
        self.requests_by_server_tag = defaultdict(int)
        self.shard_requests = defaultdict(int)
        self.shard_values = defaultdict(float)
        # Per-shard wire volume (request + response bytes attributed by the
        # transport from the message formulas) — tells whether a hot shard
        # is hot by byte cost, not just request count.
        self.shard_bytes = defaultdict(float)
        # Worker-cache accounting, per node: hits served locally, misses
        # that went to the wire, and the wire bytes the hits avoided.
        self.cache_hits = defaultdict(int)
        self.cache_misses = defaultdict(int)
        self.cache_bytes_saved = defaultdict(float)
        # Wire-codec decisions by the cost model, keyed (tag, codec name):
        # how often each codec was chosen for each message tag, and the
        # wire bytes saved vs the identity encoding ("identity" rows count
        # the messages the model deliberately left uncompressed).
        self.codec_decisions = defaultdict(int)
        self.codec_bytes_saved = defaultdict(float)
        self.latency = {}
        #: Optional per-window sink (``repro.obs.timeseries``): when set,
        #: every ``observe()`` is mirrored into the sink's current-window
        #: histogram.  Purely additive bookkeeping — the sink never touches
        #: a clock, so attaching one cannot perturb the cost model.
        self.window_sink = None

    # -- recording ---------------------------------------------------------

    def record_transfer(self, src, dst, nbytes, tag="transfer", messages=1):
        """Account one *src* -> *dst* wire message of *nbytes* under *tag*.

        *messages* is the number of logical requests the wire message
        carries (> 1 for a coalesced batch envelope).
        """
        self.bytes_sent[src] += nbytes
        self.bytes_received[dst] += nbytes
        self.bytes_by_tag[tag] += nbytes
        self.messages_by_tag[tag] += 1
        self.logical_messages_by_tag[tag] += messages

    def record_transfer_many(self, items):
        """Bulk :meth:`record_transfer`: *items* of (src, dst, nbytes, tag,
        messages).

        Counter sums are order-insensitive, so one bulk call on the fan-out
        fast path leaves every total bit-identical to per-message recording.
        """
        bytes_sent = self.bytes_sent
        bytes_received = self.bytes_received
        bytes_by_tag = self.bytes_by_tag
        messages_by_tag = self.messages_by_tag
        logical = self.logical_messages_by_tag
        for src, dst, nbytes, tag, messages in items:
            bytes_sent[src] += nbytes
            bytes_received[dst] += nbytes
            bytes_by_tag[tag] += nbytes
            messages_by_tag[tag] += 1
            logical[tag] += messages

    def record_transfer_fanout(self, src, items):
        """Bulk-record a one-source fan-out: *items* of (dst, nbytes, tag,
        messages), all sharing *src*.

        Wire byte counts are integer-valued floats (well below 2**53), so
        scalar accumulation followed by one ``+=`` per aggregate is exact —
        bit-identical to per-message :meth:`record_transfer` — while doing
        one dict update per item instead of five.  Per-tag sums are flushed
        per run of equal tags (fan-outs are usually single-tag).
        """
        bytes_received = self.bytes_received
        bytes_by_tag = self.bytes_by_tag
        messages_by_tag = self.messages_by_tag
        logical = self.logical_messages_by_tag
        total = 0.0
        tag0 = None
        tag_sum = 0.0
        tag_msgs = 0
        tag_logical = 0
        for dst, nbytes, tag, messages in items:
            bytes_received[dst] += nbytes
            total += nbytes
            if tag is tag0 or tag == tag0:
                tag_sum += nbytes
                tag_msgs += 1
                tag_logical += messages
            else:
                if tag_msgs:
                    bytes_by_tag[tag0] += tag_sum
                    messages_by_tag[tag0] += tag_msgs
                    logical[tag0] += tag_logical
                tag0 = tag
                tag_sum = nbytes
                tag_msgs = 1
                tag_logical = messages
        if tag_msgs:
            bytes_by_tag[tag0] += tag_sum
            messages_by_tag[tag0] += tag_msgs
            logical[tag0] += tag_logical
        self.bytes_sent[src] += total

    def record_transfer_gather(self, dst, items):
        """Bulk-record a one-sink gather: *items* of (src, nbytes, tag,
        messages), all sharing *dst*.  Mirror of
        :meth:`record_transfer_fanout`.
        """
        bytes_sent = self.bytes_sent
        bytes_by_tag = self.bytes_by_tag
        messages_by_tag = self.messages_by_tag
        logical = self.logical_messages_by_tag
        total = 0.0
        tag0 = None
        tag_sum = 0.0
        tag_msgs = 0
        tag_logical = 0
        for src, nbytes, tag, messages in items:
            bytes_sent[src] += nbytes
            total += nbytes
            if tag is tag0 or tag == tag0:
                tag_sum += nbytes
                tag_msgs += 1
                tag_logical += messages
            else:
                if tag_msgs:
                    bytes_by_tag[tag0] += tag_sum
                    messages_by_tag[tag0] += tag_msgs
                    logical[tag0] += tag_logical
                tag0 = tag
                tag_sum = nbytes
                tag_msgs = 1
                tag_logical = messages
        if tag_msgs:
            bytes_by_tag[tag0] += tag_sum
            messages_by_tag[tag0] += tag_msgs
            logical[tag0] += tag_logical
        self.bytes_received[dst] += total

    def record_compute(self, node_id, seconds, tag="compute"):
        """Account *seconds* of virtual compute on *node_id*."""
        self.compute_seconds[node_id] += seconds
        self.compute_counts[tag] += 1

    def increment(self, name, amount=1):
        """Bump a free-form counter (task retries, checkpoints, ...)."""
        self.counters[name] += amount

    def record_request(self, node_id, tag="request"):
        """Count one request served by *node_id* (server load accounting)."""
        self.requests_by_server[node_id] += 1
        self.requests_by_server_tag[(node_id, tag)] += 1

    def record_shard_access(self, matrix_id, server_index, n_values,
                            n_requests=1, nbytes=0.0):
        """Count an access of *n_values* parameters on one matrix shard.

        ``nbytes`` is the wire volume (request + response) the access cost,
        as priced by the message formulas — 0 for callers that only track
        counts.
        """
        key = (matrix_id, int(server_index))
        self.shard_requests[key] += n_requests
        self.shard_values[key] += float(n_values)
        if nbytes:
            self.shard_bytes[key] += float(nbytes)

    def record_service_chain(self, node_id, tag, seconds_list):
        """Bulk-record a chain of same-tag service slots on one server.

        Equivalent to ``record_compute`` + ``record_request`` + ``observe``
        once per entry, in order — the accumulation sequence per counter is
        unchanged, so every total (including float sums) is bit-identical
        to per-slot recording.  One call replaces 3N on the fused-batch
        path.
        """
        n = len(seconds_list)
        compute_total = self.compute_seconds[node_id]
        for seconds in seconds_list:
            compute_total += seconds
        self.compute_seconds[node_id] = compute_total
        self.compute_counts[tag] += n
        self.requests_by_server[node_id] += n
        self.requests_by_server_tag[(node_id, tag)] += n
        observe_tag = "srv:" + tag
        hist = self.latency.get(observe_tag)
        if hist is None:
            hist = self.latency[observe_tag] = StreamingHistogram()
        hist.record_many(seconds_list)
        if self.window_sink is not None:
            sink_observe = self.window_sink.observe
            for seconds in seconds_list:
                sink_observe(observe_tag, seconds)

    def record_service_bulk(self, tag, node_ids, seconds_list):
        """Bulk-record same-tag singleton services across many servers.

        Entry *i* is one service slot of ``seconds_list[i]`` virtual
        seconds on ``node_ids[i]``.  Every per-key accumulation (float
        compute totals, request counts, the shared per-tag histogram)
        happens in entry order, so the result is bit-identical to
        :meth:`record_service_chain` with a one-element chain per entry —
        the transport's fan-out serve loop batches a whole fan-out into
        one call.
        """
        compute_seconds = self.compute_seconds
        requests_by_server = self.requests_by_server
        requests_by_server_tag = self.requests_by_server_tag
        for i, node_id in enumerate(node_ids):
            compute_seconds[node_id] += seconds_list[i]
            requests_by_server[node_id] += 1
            requests_by_server_tag[(node_id, tag)] += 1
        self.compute_counts[tag] += len(node_ids)
        observe_tag = "srv:" + tag
        hist = self.latency.get(observe_tag)
        if hist is None:
            hist = self.latency[observe_tag] = StreamingHistogram()
        hist.record_many(seconds_list)
        if self.window_sink is not None:
            sink_observe = self.window_sink.observe
            for seconds in seconds_list:
                sink_observe(observe_tag, seconds)

    def record_shard_access_many(self, entries):
        """Bulk :meth:`record_shard_access`, one request per entry.

        *entries* is a sequence of ``(matrix_id, server_index, n_values,
        nbytes)`` with ``server_index`` already an int; per-key updates
        happen in entry order.
        """
        shard_requests = self.shard_requests
        shard_values = self.shard_values
        shard_bytes = self.shard_bytes
        for matrix_id, server_index, n_values, nbytes in entries:
            key = (matrix_id, server_index)
            shard_requests[key] += 1
            shard_values[key] += n_values
            if nbytes:
                shard_bytes[key] += nbytes

    def retire_shards(self, keys):
        """Drop shard-heat state for *keys* = ``(matrix_id, server_index)``.

        Called by the master after a live shard migration: heat recorded
        against a (matrix, server) pair that no longer owns the shard is
        *ghost* heat — :meth:`shard_heat` would keep reporting it, and the
        replication classifier would promote (and the cost model would
        compress) against a server the traffic left.  Retiring the keys
        makes the post-migration heat picture start from the traffic the
        new owners actually serve.
        """
        for key in keys:
            key = (key[0], int(key[1]))
            self.shard_requests.pop(key, None)
            self.shard_values.pop(key, None)
            self.shard_bytes.pop(key, None)

    def record_cache_hit(self, node_id, bytes_saved=0.0):
        """One worker-cache hit on *node_id*, avoiding *bytes_saved* wire."""
        self.cache_hits[node_id] += 1
        self.cache_bytes_saved[node_id] += float(bytes_saved)

    def record_cache_miss(self, node_id):
        """One worker-cache miss on *node_id* (the pull went to the wire)."""
        self.cache_misses[node_id] += 1

    def record_codec_decision(self, tag, codec_name, bytes_saved=0.0):
        """One cost-model codec decision for a *tag* message.

        ``bytes_saved`` is the wire volume avoided relative to the
        identity encoding (0 for identity decisions) — the gap between
        logical and wire bytes the codec layer created.
        """
        key = (tag, codec_name)
        self.codec_decisions[key] += 1
        self.codec_bytes_saved[key] += float(bytes_saved)

    def observe(self, tag, seconds):
        """Feed one latency/duration observation into *tag*'s histogram."""
        hist = self.latency.get(tag)
        if hist is None:
            hist = self.latency[tag] = StreamingHistogram()
        hist.record(seconds)
        if self.window_sink is not None:
            self.window_sink.observe(tag, seconds)

    # -- totals ------------------------------------------------------------

    def total_bytes(self):
        """Total bytes that crossed the network."""
        return sum(self.bytes_by_tag.values())

    def total_messages(self):
        """Total messages that crossed the network."""
        return sum(self.messages_by_tag.values())

    def bytes_for_tag(self, tag):
        """Bytes accounted under *tag* (0 if the tag never occurred)."""
        return self.bytes_by_tag.get(tag, 0.0)

    # -- latency / load queries --------------------------------------------

    def latency_summary(self):
        """``{tag: {count, mean, min, max, p50, p95, p99}}`` per op tag."""
        return {tag: hist.summary() for tag, hist in self.latency.items()}

    def percentile(self, tag, q):
        """The *q*-th latency percentile of *tag* (0.0 if never observed)."""
        hist = self.latency.get(tag)
        return hist.percentile(q) if hist is not None else 0.0

    def shard_heat(self):
        """The unified per-shard access metric: ``{(matrix, server): heat}``.

        THE one counter source both the hot-shard telemetry
        (:meth:`hot_shards`, the report's table) and the replication
        classifier consume, so policy and telemetry cannot drift: when any
        access recorded wire bytes, heat is the shard's request+response
        byte volume (the number that says what a shard actually *costs*);
        otherwise — callers that only track counts, e.g. unit fixtures —
        it falls back to raw request counts.  The rule is global per
        registry, never mixed per key.
        """
        if self.shard_bytes:
            return dict(self.shard_bytes)
        return {key: float(n) for key, n in self.shard_requests.items()}

    def hot_shards(self, factor=2.0):
        """Shards whose heat exceeds *factor* x their matrix's mean heat.

        Returns ``[(matrix_id, server_index, requests, values, ratio)]``
        sorted by descending heat ratio — the NuPS-style skew signal: under
        a uniform workload every shard of a matrix sees ~the same traffic,
        so a shard far above its matrix's mean marks hot parameters.  The
        ranking metric is :meth:`shard_heat` — byte volume when recorded,
        request counts otherwise — the same signal the replication
        classifier acts on.
        """
        by_matrix = defaultdict(list)
        for (matrix_id, server_index), heat in self.shard_heat().items():
            by_matrix[matrix_id].append((server_index, heat))
        hot = []
        for matrix_id, shards in by_matrix.items():
            mean = sum(h for _s, h in shards) / len(shards)
            if mean <= 0:
                continue
            for server_index, heat in shards:
                ratio = heat / mean
                if ratio >= factor:
                    # .get(): reads must never insert zero entries into the
                    # defaultdicts — a passive query may not change what the
                    # next snapshot() reports.
                    hot.append((
                        matrix_id, server_index,
                        self.shard_requests.get((matrix_id, server_index), 0),
                        self.shard_values.get((matrix_id, server_index), 0.0),
                        ratio,
                    ))
        hot.sort(key=lambda item: item[4], reverse=True)
        return hot

    def load_imbalance(self):
        """``(max, mean, max/mean)`` of per-server request counts.

        ``(0, 0, 1.0)`` when no server requests were recorded; a ratio near
        1.0 means balanced load, far above 1.0 means one server is the
        bottleneck (the paper's Figure 4 realignment pathology).
        """
        if not self.requests_by_server:
            return 0, 0.0, 1.0
        counts = list(self.requests_by_server.values())
        peak = max(counts)
        mean = sum(counts) / len(counts)
        return peak, mean, (peak / mean if mean else 1.0)

    # -- snapshots ----------------------------------------------------------

    def snapshot(self):
        """A plain-dict copy suitable for diffing before/after a phase.

        Latency histograms are summarized (not raw buckets): snapshots are
        for phase accounting, and the summaries are what reports consume.
        """
        return {
            "bytes_sent": dict(self.bytes_sent),
            "bytes_received": dict(self.bytes_received),
            "bytes_by_tag": dict(self.bytes_by_tag),
            "messages_by_tag": dict(self.messages_by_tag),
            "logical_messages_by_tag": dict(self.logical_messages_by_tag),
            "compute_seconds": dict(self.compute_seconds),
            "counters": dict(self.counters),
            "compute_counts": dict(self.compute_counts),
            "requests_by_server": dict(self.requests_by_server),
            "requests_by_server_tag": dict(self.requests_by_server_tag),
            "shard_requests": dict(self.shard_requests),
            "shard_values": dict(self.shard_values),
            "shard_bytes": dict(self.shard_bytes),
            "cache_hits": dict(self.cache_hits),
            "cache_misses": dict(self.cache_misses),
            "cache_bytes_saved": dict(self.cache_bytes_saved),
            "codec_decisions": dict(self.codec_decisions),
            "codec_bytes_saved": dict(self.codec_bytes_saved),
            "latency": self.latency_summary(),
        }

    @staticmethod
    def diff(before, after):
        """Per-key ``after - before`` over two :meth:`snapshot` dicts.

        Keys whose delta is zero are dropped, so the result reads as "what
        this phase did".  Sections missing from either snapshot are treated
        as empty.  Keys may be tuples (``requests_by_server_tag`` is keyed
        by ``(server, tag)``).  Dict-valued entries (the per-tag latency
        summaries) are not subtractable — percentiles don't difference — so
        for those the delta is the *observation-count* delta per tag.
        """
        out = {}
        for section in set(before) | set(after):
            b = before.get(section, {})
            a = after.get(section, {})
            delta = {}
            for key in set(b) | set(a):
                bv = b.get(key, 0)
                av = a.get(key, 0)
                if isinstance(bv, dict) or isinstance(av, dict):
                    d = ((av or {}).get("count", 0)
                         - (bv or {}).get("count", 0))
                else:
                    d = av - bv
                if d:
                    delta[key] = d
            if delta:
                out[section] = delta
        return out

    def reset(self):
        """Zero every counter; returns the pre-reset :meth:`snapshot`.

        Returning the snapshot makes phase-scoped accounting one call:
        ``phase_metrics = registry.reset()`` closes a phase and opens the
        next.
        """
        snap = self.snapshot()
        self.bytes_sent.clear()
        self.bytes_received.clear()
        self.bytes_by_tag.clear()
        self.messages_by_tag.clear()
        self.logical_messages_by_tag.clear()
        self.compute_seconds.clear()
        self.counters.clear()
        self.compute_counts.clear()
        self.requests_by_server.clear()
        self.requests_by_server_tag.clear()
        self.shard_requests.clear()
        self.shard_values.clear()
        self.shard_bytes.clear()
        self.cache_hits.clear()
        self.cache_misses.clear()
        self.cache_bytes_saved.clear()
        self.codec_decisions.clear()
        self.codec_bytes_saved.clear()
        self.latency = {}
        return snap
