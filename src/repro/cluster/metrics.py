"""Traffic and work accounting for the simulated cluster.

The registry is append-cheap (plain counters) and queried by benchmarks to
report *why* one system beats another: bytes moved per node, messages per
operation tag, and virtual seconds of compute charged per node.
"""

from __future__ import annotations

from collections import defaultdict


class MetricsRegistry:
    """Counters for bytes, messages and compute time, grouped by node and tag."""

    def __init__(self):
        self.bytes_sent = defaultdict(float)
        self.bytes_received = defaultdict(float)
        self.bytes_by_tag = defaultdict(float)
        self.messages_by_tag = defaultdict(int)
        self.compute_seconds = defaultdict(float)
        self.counters = defaultdict(int)

    def record_transfer(self, src, dst, nbytes, tag="transfer"):
        """Account one *src* -> *dst* message of *nbytes* under *tag*."""
        self.bytes_sent[src] += nbytes
        self.bytes_received[dst] += nbytes
        self.bytes_by_tag[tag] += nbytes
        self.messages_by_tag[tag] += 1

    def record_compute(self, node_id, seconds, tag="compute"):
        """Account *seconds* of virtual compute on *node_id*."""
        self.compute_seconds[node_id] += seconds
        self.counters["compute:" + tag] += 1

    def increment(self, name, amount=1):
        """Bump a free-form counter (task retries, checkpoints, ...)."""
        self.counters[name] += amount

    def total_bytes(self):
        """Total bytes that crossed the network."""
        return sum(self.bytes_by_tag.values())

    def total_messages(self):
        """Total messages that crossed the network."""
        return sum(self.messages_by_tag.values())

    def bytes_for_tag(self, tag):
        """Bytes accounted under *tag* (0 if the tag never occurred)."""
        return self.bytes_by_tag.get(tag, 0.0)

    def snapshot(self):
        """A plain-dict copy suitable for diffing before/after a phase."""
        return {
            "bytes_sent": dict(self.bytes_sent),
            "bytes_received": dict(self.bytes_received),
            "bytes_by_tag": dict(self.bytes_by_tag),
            "messages_by_tag": dict(self.messages_by_tag),
            "compute_seconds": dict(self.compute_seconds),
            "counters": dict(self.counters),
        }

    def reset(self):
        """Zero every counter."""
        self.bytes_sent.clear()
        self.bytes_received.clear()
        self.bytes_by_tag.clear()
        self.messages_by_tag.clear()
        self.compute_seconds.clear()
        self.counters.clear()
