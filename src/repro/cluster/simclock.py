"""Per-node virtual clocks.

Every simulated machine owns a monotone clock.  Computation advances one
node's clock; network transfers couple two clocks; synchronization points
(Spark stage barriers, PS flush barriers) set a group of clocks to their
common maximum.  Wall time never enters the simulation, so every run is
deterministic.
"""

from __future__ import annotations

from repro.common.errors import ClusterError, UnknownNodeError


class SimClock:
    """A set of named virtual clocks, all starting at zero."""

    def __init__(self):
        self._times = {}

    def register(self, node_id, start_time=0.0):
        """Create the clock for *node_id*; re-registering is an error."""
        if node_id in self._times:
            raise ClusterError("node %r already registered" % (node_id,))
        self._times[node_id] = float(start_time)

    def nodes(self):
        """All registered node ids, in registration order."""
        return list(self._times)

    def now(self, node_id):
        """Current virtual time of *node_id*."""
        try:
            return self._times[node_id]
        except KeyError:
            raise UnknownNodeError("unknown node %r" % (node_id,)) from None

    def advance(self, node_id, seconds):
        """Move *node_id* forward by *seconds* (must be non-negative)."""
        if seconds < 0:
            raise ClusterError("cannot advance clock by %r seconds" % (seconds,))
        self._times[node_id] = self.now(node_id) + float(seconds)
        return self._times[node_id]

    def set_at_least(self, node_id, time):
        """Ensure *node_id*'s clock reads at least *time* (never rewinds)."""
        current = self.now(node_id)
        if time > current:
            self._times[node_id] = float(time)
        return self._times[node_id]

    def barrier(self, node_ids):
        """Synchronize *node_ids*: all jump to the max of their clocks."""
        node_ids = list(node_ids)
        if not node_ids:
            return 0.0
        sync_time = max(self.now(node_id) for node_id in node_ids)
        for node_id in node_ids:
            self._times[node_id] = sync_time
        return sync_time

    def global_time(self):
        """The latest time any node has reached (makespan so far)."""
        if not self._times:
            return 0.0
        return max(self._times.values())

    def reset(self):
        """Rewind every clock to zero (used between benchmark repetitions)."""
        for node_id in self._times:
            self._times[node_id] = 0.0
