"""Deterministic, seeded request streams for the serving tier.

A :class:`TrafficGenerator` materializes one simulated user population's
request stream up front, as a list of timestamped
:class:`ServingRequest` records on the *virtual* clock — the open-loop
arrival process the scenario driver replays.  Three properties matter:

- **determinism**: the stream is a pure function of ``(seed, parameters)``
  — the generator draws from a fresh one-shot RNG stream
  (:func:`repro.common.rng.generator`), so the same seed produces a
  bit-identical stream on every run, machine and call (the property the
  Hypothesis tests pin down);
- **skew**: item ids are drawn from an analytic Zipf distribution whose
  exponent monotonically controls concentration
  (:meth:`TrafficGenerator.zipf_probabilities` exposes the exact pmf, so
  skew-monotonicity is testable without sampling noise);
- **load shape**: arrivals follow a nonhomogeneous Poisson process whose
  rate is modulated by a profile — ``"flat"``, a ``"step"`` (the
  load-spike ablation: rate multiplies by ``step_factor`` at
  ``step_at``), or ``"diurnal"`` (a sinusoid over ``period``).

Requests come in two classes: ``"read"`` (an inference lookup pulling
``keys_per_request`` embedding rows) and ``"update"`` (an online-learning
write touching the same rows), split by ``read_fraction``.
"""

from __future__ import annotations

from collections import namedtuple

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import generator

#: One timestamped request: virtual arrival time, class, originating
#: user, and the item ids it touches.
ServingRequest = namedtuple("ServingRequest", ["time", "kind", "user", "ids"])

#: Load profiles a generator understands.
PROFILES = ("flat", "step", "diurnal")

#: Floor on the instantaneous rate factor — a diurnal trough never stops
#: traffic entirely (an exponential gap at rate 0 would never terminate).
MIN_RATE_FACTOR = 0.1


class TrafficGenerator:
    """A seeded Zipf-skewed request stream on the virtual clock."""

    def __init__(self, seed, n_items, base_rate, zipf_exponent=1.1,
                 read_fraction=0.9, keys_per_request=4, n_users=64,
                 profile="flat", step_at=0.5, step_factor=4.0, period=1.0,
                 amplitude=0.5):
        if n_items < 1:
            raise ConfigError("n_items must be >= 1, got %r" % (n_items,))
        if base_rate <= 0:
            raise ConfigError("base_rate must be > 0, got %r" % (base_rate,))
        if not 0.0 <= read_fraction <= 1.0:
            raise ConfigError(
                "read_fraction must be in [0, 1], got %r" % (read_fraction,)
            )
        if keys_per_request < 1:
            raise ConfigError(
                "keys_per_request must be >= 1, got %r" % (keys_per_request,)
            )
        if profile not in PROFILES:
            raise ConfigError(
                "unknown profile %r (expected one of %s)"
                % (profile, ", ".join(PROFILES))
            )
        self.seed = int(seed)
        self.n_items = int(n_items)
        self.base_rate = float(base_rate)
        self.zipf_exponent = float(zipf_exponent)
        self.read_fraction = float(read_fraction)
        self.keys_per_request = int(keys_per_request)
        self.n_users = max(1, int(n_users))
        self.profile = profile
        self.step_at = float(step_at)
        self.step_factor = float(step_factor)
        self.period = float(period)
        self.amplitude = float(amplitude)
        #: The exact item-sampling pmf (rank-frequency form): tests assert
        #: skew monotonicity on this vector, free of sampling noise.
        self.probabilities = self.zipf_probabilities(self.n_items,
                                                     self.zipf_exponent)

    @staticmethod
    def zipf_probabilities(n_items, exponent):
        """The analytic Zipf pmf over ``n_items`` ranks.

        ``p(k) ∝ k ** -exponent`` for rank ``k`` in ``1..n_items``.  A
        larger exponent concentrates more mass on the head: ``p(1)`` is
        strictly increasing in the exponent (for ``n_items > 1``), which
        is the monotone-skew contract the property tests check.
        """
        ranks = np.arange(1, int(n_items) + 1, dtype=float)
        weights = ranks ** -float(exponent)
        return weights / weights.sum()

    def rate_factor(self, t):
        """The load profile's rate multiplier at virtual time *t*."""
        if self.profile == "step":
            factor = self.step_factor if t >= self.step_at else 1.0
        elif self.profile == "diurnal":
            factor = 1.0 + self.amplitude * np.sin(
                2.0 * np.pi * t / self.period
            )
        else:
            factor = 1.0
        return max(factor, MIN_RATE_FACTOR)

    def rate_at(self, t):
        """Instantaneous arrival rate (requests/virtual-second) at *t*."""
        return self.base_rate * self.rate_factor(t)

    def generate(self, duration):
        """The full request stream over ``[0, duration)`` virtual seconds.

        Arrivals are a piecewise nonhomogeneous Poisson process: each gap
        is exponential at the rate in force at the previous arrival.  Ids
        within one request are drawn without replacement (an inference
        batch never fetches the same row twice), falling back to
        with-replacement draws only when ``keys_per_request`` exceeds the
        catalogue.  Returns a list of :class:`ServingRequest`, strictly
        ordered by arrival time.
        """
        rng = generator(self.seed, "serving-traffic")
        duration = float(duration)
        replace = self.keys_per_request > self.n_items
        requests = []
        t = 0.0
        while True:
            t += rng.exponential(1.0 / self.rate_at(t))
            if t >= duration:
                break
            user = int(rng.integers(self.n_users))
            kind = "read" if rng.random() < self.read_fraction else "update"
            ids = rng.choice(self.n_items, size=self.keys_per_request,
                             replace=replace, p=self.probabilities)
            requests.append(
                ServingRequest(t, kind, user,
                               tuple(int(i) for i in ids))
            )
        return requests
