"""SLO accounting for the serving tier: windowed percentiles + violations.

The :class:`SLOTracker` is the serving tier's observability seam.  Every
completed request reports its class and client-observed latency here; the
tracker feeds the observation into the metrics registry under a
``serve:<class>`` tag — which means the
:class:`~repro.obs.timeseries.TimeSeriesSampler` (when enabled) gets a
*windowed* histogram per request class for free, via the registry's
``window_sink`` hook — and keeps cumulative violation counters against
the scenario's latency target.

Like every observability piece in this repo the tracker is passive: it
reads clocks and feeds histograms, never advances a clock or books a
resource, so a run with SLO tracking attached is bit-identical to one
without.
"""

from __future__ import annotations

from collections import defaultdict

#: Metric-tag prefix for per-class serving latency observations.
SERVE_TAG_PREFIX = "serve:"


class SLOTracker:
    """Per-request-class latency accounting against one SLO target."""

    def __init__(self, cluster, slo_target=0.0):
        self.cluster = cluster
        #: The latency SLO in virtual seconds (0 disables violation
        #: accounting; observations still feed the histograms).
        self.slo_target = float(slo_target)
        self.requests = defaultdict(int)
        self.violations = defaultdict(int)

    def tag(self, request_class):
        """The metrics tag one request class observes under."""
        return SERVE_TAG_PREFIX + request_class

    # -- feeding -----------------------------------------------------------

    def observe(self, request_class, latency):
        """Record one completed request of *request_class*.

        *latency* is the client-observed virtual duration from scheduled
        arrival to last response.  Feeds the cumulative histogram (and,
        through the registry's window sink, the open time-series window)
        and bumps the violation counters when a target is set.
        """
        self.cluster.metrics.observe(self.tag(request_class), float(latency))
        self.requests[request_class] += 1
        if self.slo_target > 0 and latency > self.slo_target:
            self.violations[request_class] += 1
            self.cluster.metrics.increment("slo-violations")

    # -- queries -----------------------------------------------------------

    def windowed(self, request_class, q="p99"):
        """The *q* latency of the last **closed** window for one class.

        0.0 when the time-series sampler is off, no window has closed
        yet, or the class was silent in the last window — callers (the
        autoscaler) treat 0.0 as "no signal".
        """
        sampler = self.cluster.timeseries
        if sampler is None or not sampler.windows:
            return 0.0
        summary = sampler.windows[-1].latency.get(self.tag(request_class))
        if not summary:
            return 0.0
        return summary.get(q, 0.0)

    def series(self, request_class, q="p99"):
        """``[(window_end, value)]`` of the windowed *q* for one class."""
        sampler = self.cluster.timeseries
        if sampler is None:
            return []
        return sampler.series("latency", key=self.tag(request_class), q=q)

    def violation_rate(self, request_class=None):
        """Fraction of requests that missed the SLO (None = all classes)."""
        if request_class is None:
            total = sum(self.requests.values())
            missed = sum(self.violations.values())
        else:
            total = self.requests.get(request_class, 0)
            missed = self.violations.get(request_class, 0)
        return missed / total if total else 0.0

    def summary(self):
        """``{class: {requests, violations, violation_rate, p50/p95/p99}}``.

        Percentiles are the *cumulative* run-level numbers from the
        metrics registry; windowed views come from :meth:`series`.
        """
        metrics = self.cluster.metrics
        out = {}
        for request_class in sorted(self.requests):
            hist = metrics.latency.get(self.tag(request_class))
            latency = hist.summary() if hist is not None else {}
            out[request_class] = {
                "requests": self.requests[request_class],
                "violations": self.violations.get(request_class, 0),
                "violation_rate": self.violation_rate(request_class),
                "p50": latency.get("p50", 0.0),
                "p95": latency.get("p95", 0.0),
                "p99": latency.get("p99", 0.0),
            }
        return out
