"""The online serving tier: traffic, lazy tables, SLOs, elasticity.

Training produces a model; *serving* is what the model is for.  This
package adds the online half of the parameter-server story the paper's
offline benchmarks stop short of:

- :mod:`repro.serving.traffic` — a deterministic, seeded traffic
  generator producing Zipf-skewed request streams from a simulated user
  population, with diurnal/step load profiles, driven entirely on the
  virtual clock;
- :mod:`repro.serving.slo` — windowed per-request-class latency
  percentiles and SLO-violation accounting, layered on the
  :class:`~repro.obs.timeseries.TimeSeriesSampler`;
- :mod:`repro.serving.autoscaler` — an elastic controller that adds and
  removes workers *and* PS servers mid-run from NIC-backlog and
  latency-SLO signals, driving the master's live shard migration;
- :mod:`repro.serving.scenario` — named serving scenarios and the
  open-loop driver (``python -m repro serve <scenario>``).

The model side — lazy ``get_or_create`` embedding tables — lives in the
PS layer itself (:meth:`~repro.ps.master.PSMaster.create_table`,
:meth:`~repro.ps.client.PSClient.pull_or_create`); this package only
*drives* it.
"""

from __future__ import annotations

from repro.serving.autoscaler import Autoscaler
from repro.serving.scenario import SCENARIOS, ServingScenario, run_serving
from repro.serving.slo import SLOTracker
from repro.serving.traffic import ServingRequest, TrafficGenerator

__all__ = [
    "Autoscaler",
    "SCENARIOS",
    "SLOTracker",
    "ServingRequest",
    "ServingScenario",
    "TrafficGenerator",
    "run_serving",
]
