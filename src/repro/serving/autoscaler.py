"""The elastic controller: scale workers and PS servers from live signals.

The :class:`Autoscaler` closes the loop between the serving tier's load
signals and the cluster's elastic topology primitives:

- **scale-up** when either the worst per-server NIC backlog (how far any
  server's NIC reservation horizon runs past the open-loop arrival
  frontier — the same horizon the cost model's tier escalation reads)
  exceeds ``ElasticitySpec.scale_up_backlog``, or the last closed
  time-series window's ``serve:read`` p99 exceeds ``slo_target``;
- **scale-down** when the backlog has drained below
  ``scale_down_backlog`` *and* the windowed p99 sits under half the
  target (hysteresis — the up and down thresholds never overlap, and a
  ``cooldown`` of virtual seconds separates consecutive actions).

One scale action moves **both tiers** toward the load: a PS server
(through :meth:`~repro.ps.master.PSMaster.resize_servers`, which
performs the live shard migration and fans invalidation out to every
routing and worker cache) and a worker (through
:meth:`~repro.cluster.cluster.Cluster.add_executor` /
``remove_executor``), each clamped to the spec's ``min``/``max`` bounds
independently.

Determinism: every input — virtual clocks, NIC horizons, closed-window
percentiles, the cooldown arithmetic — is a deterministic function of
the seeded simulation, so identical runs scale identically.
"""

from __future__ import annotations


class Autoscaler:
    """NIC-backlog + latency-SLO driven elastic scaling, with cooldown."""

    def __init__(self, ctx, spec=None, slo=None):
        self.ctx = ctx
        self.cluster = ctx.cluster
        self.master = ctx.master
        self.spec = spec if spec is not None else \
            ctx.cluster.config.elasticity
        #: The serving tier's :class:`~repro.serving.slo.SLOTracker`
        #: (optional — without one, only the backlog signal drives).
        self.slo = slo
        #: Chronological log of every action taken, for reports/benches.
        self.events = []
        # Cooldown separates *consecutive* actions; the first evaluation
        # is never gated (None = no action taken yet).
        self._last_action = None

    # -- signals -----------------------------------------------------------

    def backlog_seconds(self, now=None):
        """The worst per-server NIC backlog, in virtual seconds.

        For each PS server: how far its NIC reservation horizon (send or
        receive, whichever is later) runs past *now*.  A positive value
        means requests are queueing on that server's NIC faster than it
        drains them.

        *now* should be the **arrival frontier** — the scheduled time of
        the request just served (the serving driver passes it).  In an
        open-loop run the completion clocks (and hence the global
        ``elapsed()``) run *ahead* of the arrival stream exactly when the
        system is saturated, so a horizon measured against the global
        clock would read zero precisely when the backlog is worst;
        measured against the arrival frontier it reads the queueing
        delay a request arriving now would face.  Falls back to the
        global clock when no frontier is given.
        """
        network = self.cluster.network
        if now is None:
            now = self.cluster.elapsed()
        worst = 0.0
        for server in self.master.servers:
            send_h, recv_h = network.nic_horizon(server.node_id)
            worst = max(worst, max(send_h, recv_h) - now)
        return max(worst, 0.0)

    def windowed_p99(self):
        """Last closed window's ``serve:read`` p99 (0.0 = no signal)."""
        if self.slo is None:
            return 0.0
        return self.slo.windowed("read", q="p99")

    # -- the control loop --------------------------------------------------

    def maybe_scale(self, now=None):
        """Evaluate the signals once; act at most once per cooldown.

        *now* is the arrival frontier (see :meth:`backlog_seconds`); the
        scenario driver passes each request's scheduled time, so both
        the backlog signal and the cooldown run on the open-loop arrival
        timeline.  Returns the event dict when an action was taken,
        ``None`` otherwise.
        """
        spec = self.spec
        if spec.mode != "auto":
            return None
        if now is None:
            now = self.cluster.elapsed()
        if self._last_action is not None and \
                now - self._last_action < spec.cooldown:
            return None
        backlog = self.backlog_seconds(now)
        p99 = self.windowed_p99()
        slo_breach = spec.slo_target > 0 and p99 > spec.slo_target
        if backlog > spec.scale_up_backlog or slo_breach:
            reason = "slo" if slo_breach and backlog <= spec.scale_up_backlog \
                else "backlog"
            return self._scale(+1, now, backlog, p99, reason)
        slo_headroom = spec.slo_target <= 0 or p99 <= 0.5 * spec.slo_target
        if backlog < spec.scale_down_backlog and slo_headroom:
            return self._scale(-1, now, backlog, p99, "drain")
        return None

    def _scale(self, direction, now, backlog, p99, reason):
        """Move both tiers one step toward the load, within bounds."""
        spec = self.spec
        actions = []
        if direction > 0:
            if self.master.n_servers < spec.max_servers:
                self.master.add_server()
                actions.append("server+1")
            if len(self.cluster.executors) < spec.max_workers:
                self.cluster.add_executor()
                actions.append("worker+1")
        else:
            if self.master.n_servers > spec.min_servers:
                self.master.remove_server()
                actions.append("server-1")
            if len(self.cluster.executors) > spec.min_workers:
                self.cluster.remove_executor()
                actions.append("worker-1")
        if not actions:
            return None
        self._last_action = now
        self.cluster.metrics.increment(
            "autoscale-up" if direction > 0 else "autoscale-down"
        )
        event = {
            "time": now,
            "direction": "up" if direction > 0 else "down",
            "reason": reason,
            "actions": actions,
            "backlog": backlog,
            "p99": p99,
            "n_servers": self.master.n_servers,
            "n_workers": len(self.cluster.executors),
        }
        self.events.append(event)
        return event
