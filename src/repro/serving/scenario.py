"""Named serving scenarios and the open-loop driver.

A :class:`ServingScenario` bundles everything one online-serving run
needs — the traffic shape, the embedding-table geometry, the SLO target
— into a frozen, named record; :data:`SCENARIOS` is the registry the CLI
(``python -m repro serve <scenario>``) and the elastic-serving benchmark
resolve names against.

:func:`run_serving` replays a scenario's request stream **open-loop**
against one :class:`~repro.core.context.PS2Context`: each request's
arrival is pinned on the virtual clock (``set_at_least`` — a worker that
is still busy simply starts late, and the backlog shows up as latency),
reads go through the lazy ``get_or_create`` pull path so the embedding
table grows with the id coverage of the traffic, updates read-modify-
write the same rows, and every completion feeds the
:class:`~repro.serving.slo.SLOTracker`.  With elasticity configured
(``ClusterConfig.elasticity.mode == "auto"``) an
:class:`~repro.serving.autoscaler.Autoscaler` is polled between
requests and may resize either tier mid-stream — live shard migration
included.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError
from repro.serving.autoscaler import Autoscaler
from repro.serving.slo import SLOTracker
from repro.serving.traffic import TrafficGenerator


@dataclass(frozen=True)
class ServingScenario:
    """One named serving workload (traffic shape + table + SLO)."""

    name: str
    #: Stream length in virtual seconds.
    duration: float = 2.0
    #: Baseline arrival rate (requests per virtual second).
    base_rate: float = 400.0
    #: Catalogue size (the id space reads draw from).
    n_items: int = 256
    #: Embedding dimension of the lazy table.
    dim: int = 32
    #: Ids per read request (one inference batch's lookups).
    keys_per_request: int = 4
    #: Simulated user population size.
    n_users: int = 64
    #: Zipf exponent of the item popularity distribution.
    zipf_exponent: float = 1.1
    #: Fraction of requests that are reads (the rest are updates).
    read_fraction: float = 0.9
    #: Load profile: "flat", "step" or "diurnal".
    profile: str = "flat"
    #: Step profile: when the load steps, as a fraction of ``duration``.
    step_at: float = 0.5
    #: Step profile: the post-step rate multiplier.
    step_factor: float = 4.0
    #: Diurnal profile: sinusoid period in virtual seconds.
    period: float = 1.0
    #: Diurnal profile: sinusoid amplitude (fraction of base rate).
    amplitude: float = 0.5
    #: Latency SLO for reads, in virtual seconds (0 disables).
    slo_target: float = 0.002
    #: Magnitude of one online-learning update step.
    update_scale: float = 1e-3

    def traffic(self, seed):
        """The scenario's :class:`TrafficGenerator` under *seed*."""
        return TrafficGenerator(
            seed=seed,
            n_items=self.n_items,
            base_rate=self.base_rate,
            zipf_exponent=self.zipf_exponent,
            read_fraction=self.read_fraction,
            keys_per_request=self.keys_per_request,
            n_users=self.n_users,
            profile=self.profile,
            step_at=self.step_at * self.duration,
            step_factor=self.step_factor,
            period=self.period,
            amplitude=self.amplitude,
        )


#: The scenario registry the CLI and benchmarks resolve names against.
SCENARIOS = {
    "smoke": ServingScenario(name="smoke", duration=1.0, base_rate=200.0,
                             n_items=128, profile="flat"),
    "step": ServingScenario(name="step", duration=2.0, base_rate=400.0,
                            profile="step", step_at=0.5, step_factor=4.0),
    "diurnal": ServingScenario(name="diurnal", duration=2.0, base_rate=300.0,
                               profile="diurnal", period=1.0, amplitude=0.8),
}


def get_scenario(name):
    """Resolve a scenario by name (raises ``ConfigError`` when unknown)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            "unknown serving scenario %r (expected one of %s)"
            % (name, ", ".join(sorted(SCENARIOS)))
        ) from None


def run_serving(ctx, scenario, autoscaler=None):
    """Replay *scenario*'s request stream open-loop against *ctx*.

    Creates the lazy embedding table, installs an
    :class:`~repro.serving.slo.SLOTracker` on the cluster (as
    ``cluster.slo``, where the report's serving section finds it), and
    dispatches requests round-robin over the **currently active**
    executors — re-read every request, so elastic worker changes take
    effect mid-stream.  With ``elasticity.mode == "auto"`` in the
    cluster config (and no explicit *autoscaler*), an autoscaler is
    constructed and polled after every completed request.

    Returns a result dict: request/violation counts, the per-class
    latency summary, the autoscaler's event log, final topology sizes,
    and the table's created-row count.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    cluster = ctx.cluster
    master = ctx.master
    clock = cluster.clock
    table = master.create_table(scenario.dim, init="random", scale=0.01,
                                name="emb-%s" % scenario.name)
    slo = SLOTracker(cluster, slo_target=scenario.slo_target)
    cluster.slo = slo
    if autoscaler is None and cluster.config.elasticity.mode == "auto":
        autoscaler = Autoscaler(ctx, cluster.config.elasticity, slo=slo)
    stream = scenario.traffic(cluster.config.seed).generate(scenario.duration)
    update_delta = np.full(scenario.dim, scenario.update_scale)
    served = 0
    for position, request in enumerate(stream):
        workers = cluster.executors
        worker = workers[position % len(workers)]
        # Open-loop arrival: the request *arrives* at its scheduled time
        # regardless of cluster state; a busy worker starts it late and
        # the queueing delay is part of the observed latency.
        clock.set_at_least(worker, request.time)
        client = ctx.client_for(worker)
        client.pull_or_create(table, request.ids)
        if request.kind == "update":
            # Online learning: read-modify-write on the rows just pulled
            # (the get_or_create above guarantees they exist).
            for row in request.ids:
                client.push_add(table, row, update_delta)
        slo.observe(request.kind, clock.now(worker) - request.time)
        served += 1
        if autoscaler is not None:
            # The request's scheduled time is the arrival frontier: the
            # backlog signal and the cooldown run on the open-loop
            # arrival timeline, not the (possibly far ahead) completion
            # clocks.
            autoscaler.maybe_scale(request.time)
    if cluster.timeseries is not None:
        cluster.timeseries.maybe_flush()
    info = master.info(table)
    return {
        "scenario": scenario.name,
        "table": table,
        "requests": served,
        "created_rows": len(info.created_rows),
        "lazy_creates": cluster.metrics.counters.get("lazy-creates", 0),
        "makespan": cluster.elapsed(),
        "slo": slo.summary(),
        "violations": sum(slo.violations.values()),
        "events": list(autoscaler.events) if autoscaler is not None else [],
        "n_servers": master.n_servers,
        "n_workers": len(cluster.executors),
    }
