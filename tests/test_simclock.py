"""Unit tests for the per-node virtual clocks."""

import pytest

from repro.cluster.simclock import SimClock
from repro.common.errors import ClusterError, UnknownNodeError


@pytest.fixture
def clock():
    c = SimClock()
    c.register("a")
    c.register("b")
    c.register("c")
    return c


def test_clocks_start_at_zero(clock):
    assert clock.now("a") == 0.0
    assert clock.now("b") == 0.0


def test_register_with_start_time():
    c = SimClock()
    c.register("late", start_time=5.0)
    assert c.now("late") == 5.0


def test_double_register_rejected(clock):
    with pytest.raises(ClusterError):
        clock.register("a")


def test_unknown_node_rejected(clock):
    with pytest.raises(UnknownNodeError):
        clock.now("zzz")


def test_advance_moves_forward(clock):
    assert clock.advance("a", 1.5) == 1.5
    assert clock.advance("a", 0.5) == 2.0
    assert clock.now("b") == 0.0


def test_advance_rejects_negative(clock):
    with pytest.raises(ClusterError):
        clock.advance("a", -0.1)


def test_set_at_least_never_rewinds(clock):
    clock.advance("a", 3.0)
    assert clock.set_at_least("a", 1.0) == 3.0
    assert clock.set_at_least("a", 4.0) == 4.0


def test_barrier_syncs_to_max(clock):
    clock.advance("a", 1.0)
    clock.advance("b", 2.5)
    sync = clock.barrier(["a", "b", "c"])
    assert sync == 2.5
    assert clock.now("a") == clock.now("b") == clock.now("c") == 2.5


def test_barrier_subset_leaves_others(clock):
    clock.advance("a", 7.0)
    clock.barrier(["a", "b"])
    assert clock.now("b") == 7.0
    assert clock.now("c") == 0.0


def test_barrier_empty_group():
    assert SimClock().barrier([]) == 0.0


def test_global_time_is_max(clock):
    clock.advance("b", 9.0)
    clock.advance("a", 2.0)
    assert clock.global_time() == 9.0


def test_global_time_empty():
    assert SimClock().global_time() == 0.0


def test_reset_rewinds_everything(clock):
    clock.advance("a", 3.0)
    clock.advance("c", 8.0)
    clock.reset()
    assert clock.global_time() == 0.0
    assert clock.now("c") == 0.0


def test_nodes_in_registration_order(clock):
    assert clock.nodes() == ["a", "b", "c"]
