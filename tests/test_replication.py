"""Hot-key replication manager: classify, promote/demote, route, fan out.

Unit-level coverage of :mod:`repro.ps.replication` — the chaos suite
covers the crash/recovery interactions, the golden matrix locks down
off-mode obliviousness, and the ablation benchmark the performance claim.
"""

import numpy as np

from repro.cluster.cluster import DRIVER, Cluster
from repro.config import ClusterConfig
from repro.obs.report import hot_shard_table, replication_table
from repro.ps import messages
from repro.ps.client import PSClient
from repro.ps.master import PSMaster


def _rig(**overrides):
    settings = dict(
        n_executors=2, n_servers=3, seed=42,
        replication="topk", hot_key_fraction=0.34, replication_factor=2,
    )
    settings.update(overrides)
    cluster = Cluster(ClusterConfig(**settings))
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    return cluster, master, client


def _heat_and_promote(master, client, pulls=4):
    """dim 30 over 3 servers; extra reads make shard (m, 0) the topk pick."""
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    for _ in range(pulls):
        client.pull_range(m, 0, 0, 10)
    master.replication.rebalance()
    return m


# -- construction / off mode --------------------------------------------------


def test_off_mode_constructs_no_manager():
    cluster = Cluster(ClusterConfig(n_executors=2, n_servers=3, seed=42))
    master = PSMaster(cluster)
    assert master.replication is None
    assert cluster.replication is None
    assert replication_table(cluster) == "(replication off)"


# -- classification -----------------------------------------------------------


def test_classify_topk_ranks_by_heat_with_key_tiebreak():
    _cluster, master, _client = _rig(hot_key_fraction=0.25)
    manager = master.replication
    delta = {(1, s): float(heat)
             for s, heat in enumerate([5.0, 9.0, 9.0, 1.0, 2.0, 3.0, 4.0, 8.0])}
    # k = round(0.25 * 8) = 2; the 9.0 tie breaks toward the lower key.
    assert manager._classify(delta) == {(1, 1), (1, 2)}
    # k never rounds below 1, and an empty window classifies nothing.
    assert len(manager._classify({(1, 0): 1.0, (1, 1): 2.0})) == 1
    assert manager._classify({}) == set()


def test_classify_threshold_compares_against_matrix_mean():
    _cluster, master, _client = _rig(replication="threshold",
                                     hot_key_fraction=0.5)
    manager = master.replication
    delta = {
        # matrix 1: mean 4.0, threshold 8.0 -> only the 10.0 shard is hot.
        (1, 0): 10.0, (1, 1): 1.0, (1, 2): 1.0,
        # matrix 2: uniform -> nothing exceeds 2x its own mean.
        (2, 0): 3.0, (2, 1): 3.0, (2, 2): 3.0,
    }
    assert manager._classify(delta) == {(1, 0)}


def test_hot_shard_table_ranks_by_the_classifier_metric():
    """Regression (telemetry/policy unification): when byte volume and
    request counts disagree, BOTH the report's hot-shard table and the
    replication classifier must rank by ``shard_heat`` — byte volume —
    not raw request counts."""
    cluster, master, _client = _rig()
    metrics = cluster.metrics
    # Shard 0 is hot by REQUEST COUNT, shard 1 by BYTES.
    metrics.record_shard_access(7, 0, n_values=50, n_requests=50, nbytes=10.0)
    metrics.record_shard_access(7, 1, n_values=1, n_requests=1, nbytes=1000.0)
    metrics.record_shard_access(7, 2, n_values=1, n_requests=1, nbytes=10.0)
    hot = metrics.hot_shards(factor=1.5)
    assert [(matrix, server) for matrix, server, *_rest in hot] == [(7, 1)]
    assert "1000" in hot_shard_table(metrics)
    # The classifier consumes the same metric, so it picks the same key.
    assert master.replication._classify(metrics.shard_heat()) == {(7, 1)}
    # Count-only registries (no bytes recorded) fall back to counts.
    fresh = Cluster(ClusterConfig(n_executors=2, n_servers=3, seed=1)).metrics
    fresh.record_shard_access(7, 0, n_values=5, n_requests=5)
    fresh.record_shard_access(7, 1, n_values=1, n_requests=1)
    assert fresh.shard_heat() == {(7, 0): 5.0, (7, 1): 1.0}


# -- promote / demote ---------------------------------------------------------


def test_promotion_installs_on_all_targets_and_charges_migration():
    cluster, master, client = _rig()
    m = _heat_and_promote(master, client)
    manager = master.replication
    assert manager.replica_set(m, 0) == [1, 2]
    assert manager.replicated_keys() == [(m, 0)]
    assert cluster.metrics.counters["replica-promotions"] == 2
    # Migration paid real wire bytes under its own tag, and the copies
    # carry real state.
    assert cluster.metrics.bytes_for_tag("replica-migrate") > 0
    epoch = master.server(0).epoch
    for holder in (1, 2):
        assert master.server(holder).has_replica(m, 0, epoch)
        assert np.allclose(master.server(holder).replica_read(m, 0, 0),
                           np.arange(10.0))
    assert manager.replica_bytes() >= 2 * 10 * 8


def test_promotion_prefers_the_coldest_server():
    _cluster, master, client = _rig(replication_factor=1)
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    for _ in range(4):
        client.pull_range(m, 0, 0, 10)
    # Server 1 is now warmer than server 2, so the single replica of the
    # hot (m, 0) shard must land on server 2.
    client.pull_range(m, 0, 10, 20)
    master.replication.rebalance()
    assert master.replication.replica_set(m, 0) == [2]


def test_rebalance_demotes_cooled_keys_on_the_delta_window():
    cluster, master, client = _rig()
    m = _heat_and_promote(master, client)
    manager = master.replication
    assert manager.replica_set(m, 0) == [1, 2]
    # New window: shard (m, 1) dominates the DELTA even though (m, 0)
    # still leads the cumulative totals.
    for _ in range(8):
        client.pull_range(m, 0, 10, 20)
    manager.rebalance()
    assert manager.replica_set(m, 0) == []
    assert (m, 0) not in manager.replicas
    assert manager.replica_set(m, 1) == [0, 2]
    assert cluster.metrics.counters["replica-demotions"] >= 1
    # The demoted holders actually dropped their copies.
    assert not master.server(1).has_replica(m, 0)
    assert not master.server(2).has_replica(m, 0)


def test_maybe_rebalance_stage_end_and_interval_gating():
    # interval == 0: sweeps at stage ends only.
    _cluster, master, _client = _rig()
    manager = master.replication
    assert not manager.maybe_rebalance()
    assert manager.maybe_rebalance(at_stage_end=True)
    # interval > 0: sweeps on virtual time, re-armed past the sweep.
    cluster, master, _client = _rig(rebalance_interval=10.0)
    manager = master.replication
    assert not manager.maybe_rebalance(at_stage_end=True)
    cluster.clock.set_at_least(DRIVER, 11.0)
    assert manager.maybe_rebalance()
    assert manager._next_sweep >= 21.0
    assert manager.rebalance_sweep_times == [cluster.clock.global_time()]


def test_free_matrix_forgets_replica_metadata():
    _cluster, master, client = _rig()
    m = _heat_and_promote(master, client)
    assert master.replication.replicated_keys() == [(m, 0)]
    master.free_matrix(m)
    assert master.replication.replicated_keys() == []


# -- read routing -------------------------------------------------------------


def test_route_read_prefers_idle_replica_and_attributes_heat_to_primary():
    cluster, master, client = _rig()
    m = _heat_and_promote(master, client)
    # Back up the primary's NIC: its horizon moves far past the replicas'.
    cluster.network.transfer(master.server(0).node_id, DRIVER, 5e6,
                             tag="backlog")
    heat_before = cluster.metrics.shard_bytes[(m, 0)]
    reads_before = cluster.metrics.counters.get("replica-reads", 0)
    got = client.pull_range(m, 0, 0, 10)
    assert np.allclose(got, np.arange(10.0))
    assert cluster.metrics.counters["replica-reads"] > reads_before
    # Rerouting must keep charging the PRIMARY shard key (else serving
    # from replicas would drain the very heat that created them).
    assert cluster.metrics.shard_bytes[(m, 0)] > heat_before


def test_route_read_leaves_mutations_and_cold_keys_alone():
    cluster, master, client = _rig()
    m = _heat_and_promote(master, client)
    # A mutation is never rerouted, even for a replicated key...
    push = messages.PushRequest(0, m, 0, np.ones(10),
                                indices=list(range(10)), mode="add")
    assert master.replication.route_read(push) is push
    assert push.server_index == 0 and push.replica_of is None
    # ...and a read of a non-replicated key passes through unchanged.
    read = messages.PullRangeRequest(1, m, 0, 10, 20)
    assert master.replication.route_read(read) is read
    assert read.server_index == 1 and read.replica_of is None


# -- write fan-out ------------------------------------------------------------


def test_fan_out_keeps_replicas_in_lockstep():
    cluster, master, client = _rig()
    m = _heat_and_promote(master, client)
    fanouts_before = cluster.metrics.counters.get("replica-fanouts", 0)
    client.push_add(m, 0, np.ones(10), indices=list(range(10)))
    assert cluster.metrics.counters["replica-fanouts"] == fanouts_before + 2
    expected = np.arange(10.0) + 1.0
    for holder in (1, 2):
        assert np.allclose(master.server(holder).replica_read(m, 0, 0),
                           expected)


def test_fan_out_skips_replicas_whose_counters_caught_up():
    cluster, master, client = _rig()
    m = _heat_and_promote(master, client)
    client.push_add(m, 0, np.ones(10), indices=list(range(10)))
    primary = master.server(0)
    counter = primary.versions[(m, 0)]
    # Replay the fan-out: the replica's recorded counter already covers
    # it, so the apply is skipped (idempotence under retry/re-install).
    inner = messages.PushRequest(1, m, 0, np.ones(10),
                                 indices=list(range(10)), mode="add")
    replay = messages.ReplicatedPushRequest(1, inner, 0, primary.epoch,
                                            {(m, 0): counter})
    skips_before = cluster.metrics.counters.get("replica-fanout-skipped", 0)
    master.server(1).dispatch(replay)
    assert cluster.metrics.counters["replica-fanout-skipped"] \
        == skips_before + 1
    assert np.allclose(master.server(1).replica_read(m, 0, 0),
                       np.arange(10.0) + 1.0)


def test_kernel_fan_out_is_all_or_nothing():
    cluster, master, client = _rig(hot_key_fraction=0.34)
    manager = master.replication
    a = master.create_matrix(30)
    b = master.create_matrix(30)
    client.push_assign(a, 0, np.arange(30.0))
    client.push_assign(b, 0, np.arange(30.0))
    # Heat both shard-0 keys equally: k = round(0.34 * 6) = 2 picks them.
    for _ in range(4):
        client.pull_range(a, 0, 0, 10)
        client.pull_range(b, 0, 0, 10)
    manager.rebalance()
    assert manager.replica_set(a, 0) == [1, 2]
    assert manager.replica_set(b, 0) == [1, 2]
    kernel = messages.KernelRequest(0, "axpy", [(a, 0), (b, 0)])
    # Identical valid replica sets: one fan-out copy per common replica.
    extras = manager.fan_out_messages([kernel])
    assert [e.server_index for e in extras] == [1, 2]
    assert all(isinstance(e, messages.ReplicatedPushRequest) for e in extras)
    # Break the symmetry: only one operand still replicated -> a replica
    # cannot apply the kernel consistently, so the keys demote instead.
    manager._demote((b, 0))
    demotions_before = cluster.metrics.counters.get(
        "replica-kernel-demotions", 0)
    assert manager.fan_out_messages([kernel]) == []
    assert cluster.metrics.counters["replica-kernel-demotions"] \
        == demotions_before + 1
    assert (a, 0) not in manager.replicas


def test_direct_write_outside_dispatch_demotes_replicas():
    cluster, master, client = _rig()
    m = _heat_and_promote(master, client)
    manager = master.replication
    assert manager.replica_set(m, 0) == [1, 2]
    # Tooling-style write through the storage primitive (dispatch depth
    # 0): no fan-out ran, so the replicas would diverge -> demote.
    master.server(0).add(m, 0, np.ones(10))
    assert cluster.metrics.counters["replica-direct-write-demotions"] == 1
    assert (m, 0) not in manager.replicas
    assert not master.server(1).has_replica(m, 0)


# -- report -------------------------------------------------------------------


def test_replication_table_renders_map_and_counters():
    cluster, master, client = _rig()
    m = _heat_and_promote(master, client)
    client.push_add(m, 0, np.ones(10), indices=list(range(10)))
    text = replication_table(cluster)
    assert "mode: topk" in text
    assert "1,2" in text  # the replica set of (m, 0)
    assert "promotions=2" in text
    assert "fan-outs=2" in text


# -- chain replication: unit coverage -----------------------------------------
# (the chaos suite covers crash/promotion end to end; these pin the
# introspection, lifecycle and failure edges of the ChainReplicator)


def _chain_rig(**overrides):
    from repro.config import FailureConfig  # noqa: F401 (rig callers)

    settings = dict(n_executors=2, n_servers=3, seed=42, chain_replicas=1)
    settings.update(overrides)
    cluster = Cluster(ClusterConfig(**settings))
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    return cluster, master, client


def test_chain_claims_and_lag_introspection():
    cluster, master, client = _chain_rig()
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    chain = cluster.chain
    assert chain.claims(m, 0, 1)
    assert not chain.claims(m, 0, 2)
    assert chain.key_lag(m, 0) == 0
    # A dead holder's copy is not consultable: it contributes no lag.
    master.servers[1].crash()
    assert chain.key_lag(m, 0) == 0


def test_chain_free_matrix_retires_links():
    cluster, master, client = _chain_rig()
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    assert any(key[0] == m for key in cluster.chain.links)
    master.free_matrix(m)
    assert not any(key[0] == m for key in cluster.chain.links)


def test_chain_direct_write_resyncs_successors():
    """A depth-0 storage write bypassed the fan-out: the whole key is
    re-streamed so the chain converges on the new state."""
    cluster, master, client = _chain_rig()
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    master.server(0).add(m, 0, np.ones(10))
    assert cluster.metrics.counters["chain-direct-write-resyncs"] == 1
    assert cluster.chain.key_lag(m, 0) == 0
    entry = master.server(1).replica_store[(m, 0)]
    assert np.array_equal(entry.rows[0].values,
                          master.server(0)._store[m][0].values)


def test_chain_repair_resyncs_live_server():
    cluster, master, client = _chain_rig()
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    master.repair(0)
    assert cluster.metrics.counters["server-repairs"] == 1
    assert cluster.chain.key_lag(m, 0) == 0


def test_chain_install_drops_link_when_holder_crashes():
    """A successor that dies between the ring walk and the install (its
    scheduled crash applies at first contact) must not keep a link."""
    from repro.config import FailureConfig

    cluster, master, client = _chain_rig(
        failures=FailureConfig(server_failure_times=((1, 10.0),)))
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    assert cluster.chain.claims(m, 0, 1)
    # The holder sails past its scheduled crash time; the ring walk still
    # sees ``alive`` (the failure applies at first contact) so the next
    # install hits the corpse and must clean up the link.
    cluster.clock.set_at_least(master.server(1).node_id, 11.0)
    cluster.chain.sync_key(m, 0)
    assert not master.server(1).alive
    assert not cluster.chain.claims(m, 0, 1)
    assert (m, 0) not in cluster.chain.links


def test_chain_row_create_falls_back_when_holder_dead():
    """Incremental row sync requires a valid live holder; otherwise the
    creation falls back to a full re-sync against the current ring."""
    cluster, master, client = _chain_rig()
    table = master.create_table(6)
    client.pull_or_create(table, list(range(6)))
    layout = master.layout(table)
    owner = layout.shards_for_row(0)[0][0]
    succ = cluster.chain.successors(owner)[0]
    master.servers[succ].crash()
    fresh = next(row for row in range(6, 24)
                 if layout.shards_for_row(row)[0][0] == owner)
    client.pull_or_create(table, [fresh])
    holders = cluster.chain.links.get((table, owner), {})
    assert holders and succ not in holders
    assert all(master.servers[h].alive for h in holders)


def test_chain_sync_bytes_priced_through_cost_model():
    """Chain-sync value bytes compress exactly like replication fan-out
    reads under a forced codec — never identity-rate floats."""
    identity_cluster, identity_master, identity_client = _chain_rig()
    coded_cluster, coded_master, coded_client = _chain_rig(wire_codec="fp16")
    for master, client in ((identity_master, identity_client),
                           (coded_master, coded_client)):
        m = master.create_matrix(64)
        client.push_assign(m, 0, np.arange(64.0))
    identity_bytes = identity_cluster.metrics.bytes_for_tag("chain-sync")
    coded_bytes = coded_cluster.metrics.bytes_for_tag("chain-sync")
    assert 0 < coded_bytes < identity_bytes
    assert coded_cluster.costmodel.priced_chain_value_bytes(64) == \
        64 * messages.FLOAT_BYTES // 4
    assert coded_cluster.costmodel.priced_chain_value_bytes(0) == 0


def test_chain_report_renders_map_and_promotions():
    from repro.obs.report import chain_table

    cluster, master, client = _chain_rig()
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    master.servers[0].crash()
    client.push_add(m, 0, np.ones(30))  # recover via promotion
    text = chain_table(cluster)
    assert "successors per primary: 1" in text
    assert "promotions=1" in text
    assert "sync bytes=" in text
    # Off mode renders the placeholder and nothing else.
    off_cluster, _m, _c = _rig(replication="off")
    assert "off" in chain_table(off_cluster)
