"""Consistency models (BSP/SSP/ASP), worker cache, and the new telemetry."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.common.errors import ConfigError
from repro.config import ClusterConfig
from repro.data.synth import sparse_classification
from repro.experiments.runner import make_context
from repro.ml.linear import train_linear_ps2
from repro.obs.report import consistency_table, hot_shard_table, render_report
from repro.ps.client import PSClient
from repro.ps.consistency import make_consistency
from repro.ps.master import PSMaster


def _relaxed_cluster(consistency="ssp", staleness=3):
    return Cluster(ClusterConfig(
        n_executors=4, n_servers=3, seed=42,
        consistency=consistency, staleness=staleness,
    ))


def _client(cluster):
    master = PSMaster(cluster)
    return master, PSClient(cluster, master, cluster.executors[0])


# -- model selection ----------------------------------------------------------


def test_bsp_is_default_and_exact_noop(cluster):
    model = cluster.consistency
    assert model.name == "bsp"
    assert model.barrier and model.commit_at_barrier
    assert model.cache_bound() is None
    # No cache object is even constructed under BSP.
    master, client = _client(cluster)
    assert client.cache is None
    # sync/advance are harmless no-ops: no clocks, no metrics.
    model.sync(cluster, cluster.executors[0])
    model.advance(cluster, cluster.executors[0])
    assert cluster.clock.now(cluster.executors[0]) == 0.0
    assert not cluster.metrics.counters


def test_unknown_model_and_bad_staleness_rejected():
    with pytest.raises(ConfigError):
        ClusterConfig(consistency="eventual")
    with pytest.raises(ConfigError):
        ClusterConfig(consistency="ssp", staleness=-1)

    class Cfg:
        consistency = "totally-ordered"
        staleness = 0

    with pytest.raises(ConfigError):
        make_consistency(Cfg())


# -- the SSP gate -------------------------------------------------------------


def test_ssp_gate_blocks_fast_worker():
    cluster = _relaxed_cluster("ssp", staleness=1)
    model = cluster.consistency
    fast, slow = cluster.executors[0], cluster.executors[1]
    # The slow worker finishes its clock 0 at t=5.
    cluster.clock.set_at_least(slow, 5.0)
    model.advance(cluster, slow)
    # The fast worker burns through clocks 0 and 1 instantly...
    model.advance(cluster, fast)
    model.advance(cluster, fast)
    assert model.clock_of(fast) == 2
    # ...and at clock 2 must wait for everyone's clock 0 (= 2 - 1 - 1).
    model.sync(cluster, fast)
    assert cluster.clock.now(fast) == pytest.approx(5.0)
    assert cluster.metrics.counters["staleness-waits"] == 1
    assert cluster.metrics.latency["staleness-wait"].summary()["count"] == 1


def test_ssp_gate_within_bound_is_free():
    cluster = _relaxed_cluster("ssp", staleness=3)
    model = cluster.consistency
    fast, slow = cluster.executors[0], cluster.executors[1]
    cluster.clock.set_at_least(slow, 5.0)
    model.advance(cluster, slow)
    for _ in range(3):
        model.advance(cluster, fast)
    # clock 3, staleness 3: target = -1, no gate.
    model.sync(cluster, fast)
    assert cluster.clock.now(fast) == 0.0
    assert cluster.metrics.counters["staleness-waits"] == 0


def test_asp_never_blocks():
    cluster = _relaxed_cluster("asp", staleness=0)
    model = cluster.consistency
    fast, slow = cluster.executors[0], cluster.executors[1]
    cluster.clock.set_at_least(slow, 100.0)
    model.advance(cluster, slow)
    for _ in range(10):
        model.advance(cluster, fast)
        model.sync(cluster, fast)
    assert cluster.clock.now(fast) == 0.0
    assert cluster.metrics.counters["staleness-waits"] == 0


# -- worker cache -------------------------------------------------------------


def test_cache_hit_books_zero_network_bytes():
    cluster = _relaxed_cluster("ssp", staleness=3)
    master, client = _client(cluster)
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    first = client.pull_row(m, 0)  # miss: goes to the wire, fills the cache
    assert np.allclose(first, np.arange(30.0))
    metrics = cluster.metrics
    bytes_before = metrics.total_bytes()
    messages_before = metrics.total_messages()

    again = client.pull_row(m, 0)
    sparse = client.pull_row(m, 0, indices=[3, 7, 29])

    assert np.allclose(again, np.arange(30.0))
    assert np.allclose(sparse, [3.0, 7.0, 29.0])
    # The hits made no transfer() call at all.
    assert metrics.total_bytes() == bytes_before
    assert metrics.total_messages() == messages_before
    assert metrics.cache_hits[client.node_id] == 2
    assert metrics.cache_misses[client.node_id] == 1
    assert metrics.cache_bytes_saved[client.node_id] > 0
    # Hit staleness (in clocks) feeds the histogram: both hits at age 0.
    assert metrics.latency["staleness-clocks"].summary()["count"] == 2


def test_cache_entry_ages_out_past_bound():
    cluster = _relaxed_cluster("ssp", staleness=1)
    master, client = _client(cluster)
    model = cluster.consistency
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    client.pull_row(m, 0)  # cached at clock 0
    # Ticking to clock 1 keeps the entry (age 1 == bound) ...
    model.advance(cluster, client.node_id)
    assert client.cache.lookup(m, 0) is not None
    # ... ticking to clock 2 evicts it (age 2 > bound).
    model.advance(cluster, client.node_id)
    assert client.cache.lookup(m, 0) is None
    client.pull_row(m, 0)
    assert cluster.metrics.cache_misses[client.node_id] == 2


def test_clock_advance_rpc_pays_wire_bytes():
    cluster = _relaxed_cluster("ssp", staleness=3)
    master, client = _client(cluster)
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    client.pull_row(m, 0)
    metrics = cluster.metrics
    assert metrics.messages_by_tag.get("clock-advance:req", 0) == 0
    cluster.consistency.advance(cluster, client.node_id)
    # One renewal message per server holding cached rows (the full row
    # spans all three shards), each paying real request+response bytes.
    assert metrics.messages_by_tag["clock-advance:req"] == 3
    assert metrics.bytes_by_tag["clock-advance:req"] > 0
    assert metrics.bytes_by_tag["clock-advance:resp"] > 0


def test_cache_write_through_reads_own_writes():
    cluster = _relaxed_cluster("ssp", staleness=3)
    master, client = _client(cluster)
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    client.pull_row(m, 0)  # fill the cache
    client.push_add(m, 0, np.ones(30))
    hit = client.pull_row(m, 0)  # served from cache, must see the push
    assert np.allclose(hit, np.arange(30.0) + 1.0)
    # The authoritative state agrees (the push itself still hit the wire):
    # read it through an uncached driver client.
    from repro.cluster.cluster import DRIVER

    driver_client = PSClient(cluster, master, DRIVER)
    assert np.allclose(driver_client.pull_row(m, 0), np.arange(30.0) + 1.0)


def test_driver_client_never_gets_a_cache():
    cluster = _relaxed_cluster("ssp", staleness=3)
    from repro.cluster.cluster import DRIVER

    master = PSMaster(cluster)
    driver_client = PSClient(cluster, master, DRIVER)
    assert driver_client.cache is None


# -- telemetry ----------------------------------------------------------------


def test_retried_op_gets_its_own_histogram(cluster):
    master, client = _client(cluster)
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    client.pull_row(m, 0)
    master.checkpoint_all()
    assert cluster.metrics.latency["pull"].summary()["count"] == 1
    master.server(1).crash()
    got = client.pull_row(m, 0)  # hits the retry path
    assert np.allclose(got, np.arange(30.0))
    # The slow (retried) op lands in its own bucket; the headline
    # histogram keeps only the clean attempt.
    assert cluster.metrics.latency["pull"].summary()["count"] == 1
    retried = cluster.metrics.latency["pull.retried"].summary()
    assert retried["count"] == 1
    assert retried["max"] > cluster.metrics.latency["pull"].summary()["max"]


def test_hot_shard_table_reports_bytes(cluster):
    master, client = _client(cluster)
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    client.pull_row(m, 0)
    metrics = cluster.metrics
    assert sum(metrics.shard_bytes.values()) > 0
    table = hot_shard_table(metrics, factor=1.0)
    lines = table.splitlines()
    assert "bytes" in lines[0].split()
    # Every shard row carries a positive byte volume.
    for line in lines[2:-1]:
        assert float(line.split()[4]) > 0


def test_report_has_consistency_section():
    ctx = make_context(n_executors=4, n_servers=3, seed=42,
                       consistency="ssp", staleness=2)
    rows, _ = sparse_classification(60, 32, 8, seed=3)
    train_linear_ps2(ctx, rows, 32, n_iterations=3, seed=1, optimizer="sgd")
    report = render_report(ctx.cluster)
    assert "-- consistency & worker cache --" in report
    section = consistency_table(ctx.cluster)
    assert "model: ssp (staleness=2)" in section
    assert "hit_rate" in section
    assert "staleness-clocks" in section


def test_bsp_report_consistency_section_is_placeholder(ps2):
    w = ps2.dense(12)
    w.push(np.arange(12.0))
    section = consistency_table(ps2.cluster)
    assert "model: bsp" in section
    assert "(no staleness observations)" in section
    assert "(worker cache inactive)" in section


# -- end-to-end ---------------------------------------------------------------


def _lr_run(consistency, staleness, seed=42):
    ctx = make_context(n_executors=4, n_servers=3, seed=seed,
                       consistency=consistency, staleness=staleness)
    rows, _ = sparse_classification(120, 48, 10, seed=7)
    result = train_linear_ps2(ctx, rows, 48, n_iterations=5, seed=1,
                              optimizer="sgd")
    return ctx, result


def test_ssp_lr_is_deterministic_and_faster_than_bsp():
    bsp_ctx, bsp = _lr_run("bsp", 0)
    ssp_ctx, ssp = _lr_run("ssp", 2)
    ssp_ctx2, ssp2 = _lr_run("ssp", 2)
    # Same seed, same code path: bit-identical virtual time and loss.
    assert ssp_ctx.elapsed() == ssp_ctx2.elapsed()
    assert ssp.final_loss == ssp2.final_loss
    # Dropping the barrier never slows the run; losses stay comparable.
    assert ssp_ctx.elapsed() < bsp_ctx.elapsed()
    assert abs(ssp.final_loss - bsp.final_loss) < 0.2
    # The relaxed run actually exercised the cache.
    assert sum(ssp_ctx.cluster.metrics.cache_hits.values()) > 0
