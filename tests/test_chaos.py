"""Chaos harness: seeded failures against the recovery/retry path.

Covers the hardened failure story end to end: crash before the first
checkpoint, crash after a post-checkpoint ``create_matrix``, routing
re-resolution (with re-sent request bytes) on retry, backoff charged to the
virtual clock, transient network partitions, scheduled executor crashes,
periodic checkpoint sweeps, row-layout block routing, and a full chaos
training run asserting convergence and run-to-run determinism.
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, FailureConfig
from repro.core.context import PS2Context
from repro.experiments import run_fault_tolerance
from repro.experiments.runner import make_context
from repro.ml import train_logistic_regression
from repro.data import sparse_classification
from repro.ps.client import PSClient
from repro.ps.master import PSMaster
from repro.ps.partitioner import RowLayout
from repro.ps.retry import RetryPolicy


def _chaos_cluster(**failure_kwargs):
    config = ClusterConfig(
        n_executors=4, n_servers=3, seed=42,
        failures=FailureConfig(**failure_kwargs),
    )
    return Cluster(config)


# -- recovery correctness ----------------------------------------------------


def test_crash_before_first_checkpoint_pull_recovers(ps2):
    """Regression: a crash with ZERO checkpoints taken must recover to
    freshly re-initialized shards instead of raising."""
    w = ps2.dense(12)
    w.push(np.arange(12.0))
    ps2.master.server(0).crash()
    pulled = w.pull()  # must not raise
    layout = w.layout
    for server_index, start, stop in layout.shards_for_row(w.row):
        if server_index == 0:
            # Lost with the server; re-initialized to the zero init.
            assert np.all(pulled[start:stop] == 0.0)
        else:
            assert np.allclose(pulled[start:stop], np.arange(12.0)[start:stop])
    assert ps2.metrics.counters["server-recoveries"] == 1
    # No snapshot existed, so this was a metadata rebuild, not a restore.
    assert ps2.master.checkpoints.recoveries == 0
    assert ps2.metrics.counters["recovery-reinit-shards"] >= 1


def test_post_checkpoint_matrix_survives_crash(ps2):
    """Regression: a matrix created after the last checkpoint must not
    vanish on recovery (MatrixNotFoundError used to escape the client)."""
    a = ps2.dense(12)
    a.fill(3.0)
    ps2.checkpoint()
    b = ps2.dense(20)
    b.push(np.arange(20.0))
    ps2.master.server(1).crash()
    got_b = b.pull()  # must not raise: b is rebuilt from metadata
    for server_index, start, stop in b.layout.shards_for_row(b.row):
        if server_index == 1:
            assert np.all(got_b[start:stop] == 0.0)
        else:
            assert np.allclose(got_b[start:stop],
                               np.arange(20.0)[start:stop])
    # a was in the snapshot and is fully restored.
    assert np.allclose(a.pull(), 3.0)
    assert ps2.master.checkpoints.recoveries == 1


def test_retry_reresolves_routing_and_resends_bytes(cluster):
    """A retried op must talk to the REPLACEMENT server object and pay the
    request bytes again — a retry is a full new RPC."""
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    master.checkpoint_all()
    failed = master.server(1)
    failed.crash()
    requests_before = cluster.metrics.messages_by_tag["pull:req"]
    routing_before = cluster.metrics.messages_by_tag["routing:req"]
    got = client.pull_row(m, 0)
    assert np.allclose(got, np.arange(30.0))
    # 3 shards -> 3 requests, plus one re-sent request for the retry.
    assert cluster.metrics.messages_by_tag["pull:req"] == requests_before + 4
    # The retry dropped the routing cache and re-resolved via the master.
    assert cluster.metrics.messages_by_tag["routing:req"] == routing_before + 1
    # And it reached a new server process, not the dead object.
    assert master.server(1) is not failed
    assert cluster.metrics.counters["op-retries"] == 1


def test_coalesced_batch_retry_reresolves_and_resends_envelope(cluster):
    """A coalesced batch that hits a dead server must be retried as a
    WHOLE envelope: routing re-resolved through the master, the
    replacement server object dispatched, and the full envelope's bytes
    paid again on the wire."""
    from repro.common.sizeof import MESSAGE_OVERHEAD_BYTES
    from repro.ps import messages

    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    m = master.create_matrix(30, n_rows=4)
    expected = np.arange(120.0).reshape(4, 30)
    for row in range(4):
        client.push_assign(m, row, expected[row])
    master.checkpoint_all()
    failed = master.server(1)
    failed.crash()
    metrics = cluster.metrics
    req_before = metrics.messages_by_tag["pull-block:req"]
    bytes_before = metrics.bytes_by_tag["pull-block:req"]
    logical_before = metrics.logical_messages_by_tag["pull-block:req"]
    routing_before = metrics.messages_by_tag["routing:req"]
    batches_before = metrics.counters["coalesced-batches"]

    block = client.pull_block(m, [0, 1, 2, 3])
    assert np.array_equal(block, expected)  # server-1 restored and re-read
    # 3 servers -> 3 envelopes, plus ONE re-sent envelope for the retry.
    assert metrics.messages_by_tag["pull-block:req"] == req_before + 4
    assert metrics.logical_messages_by_tag["pull-block:req"] \
        == logical_before + 16
    # The retried attempt paid the whole envelope's bytes again.
    envelope = (messages.REQUEST_HEADER_BYTES
                + 4 * messages.SUBREQUEST_HEADER_BYTES
                + MESSAGE_OVERHEAD_BYTES)
    assert metrics.bytes_by_tag["pull-block:req"] \
        == bytes_before + 4 * envelope
    # Routing was dropped and re-resolved through the master...
    assert metrics.messages_by_tag["routing:req"] == routing_before + 1
    # ...and the re-send reached the replacement server process.
    assert master.server(1) is not failed
    assert metrics.counters["op-retries"] == 1
    # Three envelopes were FORMED (one per server); the retry re-sends an
    # existing envelope rather than building a fourth, so the wire count
    # (+4 above) exceeds the batch count by exactly the resend.
    assert metrics.counters["coalesced-batches"] == batches_before + 3
    assert metrics.counters["coalesced-requests"] == 12


def test_backoff_is_charged_to_virtual_clock(cluster):
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    m = master.create_matrix(12)
    master.checkpoint_all()
    master.server(0).crash()
    before = cluster.clock.now(client.node_id)
    client.pull_row(m, 0)
    elapsed = cluster.clock.now(client.node_id) - before
    # One failed attempt: at least timeout + first backoff of virtual time.
    assert elapsed >= client.retry_policy.penalty_for(1)


def test_retry_policy_from_config():
    failures = FailureConfig(max_op_retries=5, op_timeout=2e-3,
                             retry_backoff=4e-3, retry_backoff_multiplier=3.0)
    policy = RetryPolicy.from_config(failures)
    assert policy.max_retries == 5
    assert policy.backoff_for(1) == pytest.approx(4e-3)
    assert policy.backoff_for(3) == pytest.approx(4e-3 * 9.0)
    assert policy.penalty_for(2) == pytest.approx(2e-3 + 12e-3)


# -- network partitions ------------------------------------------------------


def test_partition_window_is_retried_until_it_passes():
    # The window opens just after the (driver-side) matrix allocation and
    # swallows the client's first pull attempts into server-1.
    cluster = _chaos_cluster(partition_windows=(("server-1", 1e-5, 4e-3),))
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    m = master.create_matrix(30)
    # The pull's request into server-1 departs inside the window: the
    # attempt drops, the client backs off (advancing its virtual clock)
    # and a later attempt outlasts the partition.
    got = client.pull_row(m, 0)
    assert got.shape == (30,)
    assert cluster.metrics.counters["partition-drops"] >= 1
    assert cluster.metrics.counters["op-retries"] >= 1
    # The partition did not kill the server: no recovery was needed.
    assert cluster.metrics.counters.get("server-recoveries", 0) == 0
    assert cluster.clock.now(client.node_id) >= 4e-3


def test_permanent_partition_exhausts_retries():
    from repro.common.errors import PSError

    cluster = _chaos_cluster(partition_windows=(("server-1", 1e-5, 1e6),))
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    m = master.create_matrix(30)
    with pytest.raises(PSError):
        client.pull_row(m, 0)
    assert cluster.metrics.counters["op-retries-exhausted"] == 1


# -- scheduled crashes -------------------------------------------------------


def test_scheduled_server_crash_recovers_during_training():
    failures = FailureConfig(server_failure_times=((0, 1e-3),))
    ctx = make_context(n_executors=4, n_servers=3, seed=9, failures=failures)
    rows, _ = sparse_classification(120, 600, 10, seed=9)
    result = train_logistic_regression(
        ctx, rows, 600, optimizer="sgd", n_iterations=6,
        batch_fraction=0.5, seed=9,
    )
    assert result.iterations == 6
    assert ctx.metrics.counters["server-crashes"] >= 1
    assert ctx.metrics.counters["server-recoveries"] >= 1
    assert result.final_loss < result.history[0][1]


def test_scheduled_executor_crash_redistributes_partitions():
    failures = FailureConfig(executor_failure_times=((0, 1e-3),))
    ctx = make_context(n_executors=4, n_servers=3, seed=9, failures=failures)
    rows, _ = sparse_classification(120, 600, 10, seed=9)
    result = train_logistic_regression(
        ctx, rows, 600, optimizer="sgd", n_iterations=6,
        batch_fraction=0.5, seed=9,
    )
    assert result.iterations == 6
    assert ctx.cluster.failures.injected_executor_failures == 1
    assert ctx.metrics.counters["executor-failures"] == 1
    # The dead executor's partitions moved and reloaded their input.
    assert ctx.metrics.counters["partition-reloads"] >= 1
    assert "executor-0" not in ctx.cluster.alive_executors


# -- periodic checkpoint sweeps ---------------------------------------------


def test_periodic_sweeps_run_on_schedule():
    failures = FailureConfig(checkpoint_interval=2e-3)
    ctx = make_context(n_executors=4, n_servers=3, seed=9, failures=failures)
    rows, _ = sparse_classification(120, 600, 10, seed=9)
    train_logistic_regression(
        ctx, rows, 600, optimizer="sgd", n_iterations=6,
        batch_fraction=0.5, seed=9,
    )
    sweeps = ctx.metrics.counters["checkpoint-sweeps"]
    assert sweeps >= 1
    times = ctx.master.checkpoint_sweep_times
    assert len(times) == sweeps
    assert times == sorted(times)
    # Re-armed relative to the post-sweep clock: no sweep storms.
    assert all(b - a >= 2e-3 for a, b in zip(times, times[1:]))
    assert ctx.master.checkpoints.checkpoints_taken >= 3  # >= one full sweep


def test_sweep_skips_dead_server_and_covers_survivors(cluster):
    master = PSMaster(cluster)
    master.create_matrix(12)
    master.server(1).crash()
    master.checkpoint_all()  # must not raise
    assert cluster.metrics.counters["checkpoint-skips-dead-server"] == 1
    assert master.checkpoints.has_checkpoint(0)
    assert not master.checkpoints.has_checkpoint(1)
    assert master.checkpoints.has_checkpoint(2)


# -- row-layout block routing ------------------------------------------------


def test_pull_block_routes_per_row_under_row_layout(cluster):
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    m = master.create_matrix(8, n_rows=6, layout=RowLayout(8, 3))
    expected = np.arange(48.0).reshape(6, 8)
    for row in range(6):
        client.push_assign(m, row, expected[row])
    # Rows 0..5 live on servers 0,1,2,0,1,2 — one request per OWNING
    # server, never everything to rows[0]'s server.
    block = client.pull_block(m, list(range(6)))
    assert np.array_equal(block, expected)
    sparse = client.pull_block(m, [1, 2, 5], indices=[7, 0, 3])
    assert np.array_equal(sparse, expected[[1, 2, 5]][:, [7, 0, 3]])


def test_push_block_add_routes_per_row_under_row_layout(cluster):
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    m = master.create_matrix(8, n_rows=6, layout=RowLayout(8, 3))
    delta = np.arange(48.0).reshape(6, 8)
    client.push_block_add(m, list(range(6)), delta)
    assert np.array_equal(client.pull_block(m, list(range(6))), delta)
    client.push_block_add(m, [0, 4], np.ones((2, 3)), indices=[1, 4, 6])
    expected = delta.copy()
    for row in (0, 4):
        expected[row, [1, 4, 6]] += 1.0
    assert np.array_equal(client.pull_block(m, list(range(6))), expected)


# -- full chaos scenario -----------------------------------------------------


def _chaos_failures():
    return FailureConfig(
        server_failure_times=((1, 1.5e-3), (2, 4e-3)),
        executor_failure_times=((3, 2e-3),),
        partition_windows=(("server-0", 2.5e-3, 3e-3),),
        checkpoint_interval=1e-3,
    )


def _chaos_run():
    ctx = make_context(n_executors=4, n_servers=3, seed=13,
                       failures=_chaos_failures())
    rows, _ = sparse_classification(150, 800, 12, seed=13)
    result = train_logistic_regression(
        ctx, rows, 800, optimizer="sgd", n_iterations=8,
        batch_fraction=0.4, seed=13,
    )
    weights = result.extras["weight"].pull()
    return ctx, result, weights


def test_chaos_training_converges_and_is_deterministic():
    ctx_a, result_a, weights_a = _chaos_run()
    ctx_b, result_b, weights_b = _chaos_run()
    # The chaos actually happened.
    assert ctx_a.metrics.counters["server-recoveries"] >= 1
    assert ctx_a.cluster.failures.injected_executor_failures == 1
    assert ctx_a.metrics.counters["checkpoint-sweeps"] >= 1
    # Training converged through it.
    assert result_a.iterations == 8
    assert result_a.final_loss < result_a.history[0][1]
    # And the whole run — losses, virtual times, final weights, failure
    # bookkeeping — is a deterministic function of the seed.
    assert result_a.history == result_b.history
    assert np.array_equal(weights_a, weights_b)
    assert ctx_a.elapsed() == ctx_b.elapsed()
    assert (ctx_a.metrics.counters["server-recoveries"]
            == ctx_b.metrics.counters["server-recoveries"])


def test_fault_tolerance_experiment_bounds_regression():
    """Small-scale Figure-12 check: the post-crash loss peak stays within
    the loss recorded at the last pre-crash checkpoint sweep."""
    summary = run_fault_tolerance(seed=5, n_iterations=10, n_rows=150,
                                  dim=800)
    assert summary["recoveries"] == 1
    assert summary["sweeps"] >= 1
    assert summary["regression_bounded"]
    assert summary["chaos"].final_loss < summary["chaos"].history[0][1]


# -- relaxed consistency under failures ---------------------------------------


def test_ssp_server_crash_fences_stale_cache_entries():
    """Crash a server mid-SSP-epoch: the recovered server's bumped epoch
    must fence every cached row it backed, so no read ever serves state
    from before the crash as if it were merely *staleness*-bounded stale.
    (The PR-2 failure-model guarantee restated for the worker cache.)"""
    cluster = Cluster(ClusterConfig(
        n_executors=4, n_servers=3, seed=42,
        consistency="ssp", staleness=3,
    ))
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    master.checkpoint_all()

    cached = client.pull_row(m, 0)  # miss: fills the cache at clock 0
    assert np.allclose(cached, np.arange(30.0))
    assert client.cache.lookup(m, 0) is not None

    failed = master.server(1)
    failed.crash()

    # The worker's clock tick triggers the version-vector exchange; the
    # renewal RPC to the dead server is retried, which recovers it with a
    # bumped epoch -- and the epoch mismatch drops the cached row even
    # though its clock-age (1 <= staleness 3) would still permit hits.
    cluster.consistency.advance(cluster, client.node_id)
    assert master.server(1) is not failed
    assert client.cache.lookup(m, 0) is None
    assert cluster.metrics.counters["cache-epoch-fences"] >= 1
    assert cluster.metrics.counters["server-recoveries"] == 1

    # The next pull is a miss that re-reads the *recovered* (checkpointed)
    # state -- never a stale hit from the pre-crash cache.
    misses_before = cluster.metrics.cache_misses[client.node_id]
    fresh = client.pull_row(m, 0)
    assert cluster.metrics.cache_misses[client.node_id] == misses_before + 1
    assert np.allclose(fresh, np.arange(30.0))


# -- hot-key replication under failures ---------------------------------------


def _replicated_rig():
    """A 3-server cluster with shard (m, 0) promoted to replicas [1, 2].

    dim 30 over 3 servers -> shards [0,10), [10,20), [20,30).  The extra
    ``pull_range`` reads heat shard (m, 0) past its siblings, so the topk
    sweep (k = round(0.34 * 3) = 1) picks exactly that key, and
    ``replication_factor=2`` installs copies on both other servers.
    """
    cluster = Cluster(ClusterConfig(
        n_executors=2, n_servers=3, seed=42,
        replication="topk", hot_key_fraction=0.34, replication_factor=2,
    ))
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    for _ in range(4):
        client.pull_range(m, 0, 0, 10)
    master.replication.rebalance()
    assert master.replication.replica_set(m, 0) == [1, 2]
    return cluster, master, client, m


def test_replica_holder_crash_recovery_restores_replica_set():
    """Crash a server HOSTING hot-key replicas mid-epoch: the dead holder
    must drop out of the valid replica set immediately (no read may route
    to it), and recovery must re-install its copy from the live primary."""
    cluster, master, client, m = _replicated_rig()
    manager = master.replication
    master.checkpoint_all()
    reinstalls_before = cluster.metrics.counters.get("replica-reinstalls", 0)

    master.server(1).crash()
    # The crash wiped server-1's replica store; routing candidates shrink
    # to the surviving holder at once.
    assert manager.replica_set(m, 0) == [2]

    master.recover(1)
    # Recovery re-installed the (m, 0) copy onto the replacement process
    # (plus restored its own primary shard from the checkpoint).
    assert cluster.metrics.counters["replica-reinstalls"] > reinstalls_before
    assert manager.replica_set(m, 0) == [1, 2]
    assert master.server(1).has_replica(m, 0, master.server(0).epoch)
    assert np.allclose(client.pull_row(m, 0), np.arange(30.0))


def test_primary_crash_epoch_bump_fences_stale_replicas():
    """Crash the PRIMARY of a replicated hot key after a post-checkpoint
    mutation: the epoch bump must fence every replica installed at the old
    epoch (they carry the rolled-back update), recovery must re-install
    the replica set at the new epoch, and a stale fan-out that raced the
    crash must be rejected, not applied."""
    from repro.ps import messages

    cluster, master, client, m = _replicated_rig()
    manager = master.replication
    master.checkpoint_all()
    # Post-checkpoint mutation: fans out to both replicas, then is LOST
    # with the crash below (the primary rolls back to the checkpoint).
    client.push_add(m, 0, np.ones(10), indices=list(range(10)))
    assert cluster.metrics.counters["replica-fanouts"] >= 2
    old_epoch = master.server(0).epoch

    master.server(0).crash()
    master.recover(0)
    new_primary = master.server(0)
    assert new_primary.epoch == old_epoch + 1
    # The old-epoch copies (holding the rolled-back +1) are gone: the
    # holders were re-installed at the new epoch from the recovered state.
    for holder in (1, 2):
        assert not master.server(holder).has_replica(m, 0, old_epoch)
        assert master.server(holder).has_replica(m, 0, new_primary.epoch)
    assert manager.replica_set(m, 0) == [1, 2]

    # Reads — wherever routed — see exactly the checkpointed state.
    got = client.pull_row(m, 0)
    assert np.allclose(got, np.arange(30.0))

    # A stale fan-out from before the crash (old epoch, inflated counter)
    # arriving late must be fenced by the apply path, never applied.
    fenced_before = cluster.metrics.counters.get("replica-fanout-fenced", 0)
    inner = messages.PushRequest(1, m, 0, np.ones(10),
                                 indices=list(range(10)), mode="add")
    stale = messages.ReplicatedPushRequest(1, inner, 0, old_epoch,
                                           {(m, 0): 999})
    master.server(1).dispatch(stale)
    assert cluster.metrics.counters["replica-fanout-fenced"] \
        == fenced_before + 1
    assert np.allclose(client.pull_row(m, 0), np.arange(30.0))


def test_ssp_training_survives_scheduled_server_crash():
    """End-to-end: SSP training through a mid-run server crash still
    completes, recovers the server, and stays within the staleness
    contract (every cache hit's age <= the bound)."""
    rows, _ = sparse_classification(120, 48, 10, seed=7)
    ctx = make_context(
        n_executors=4, n_servers=3, seed=42,
        consistency="ssp", staleness=2,
        failures=FailureConfig(
            server_failure_times=((1, 1e-4),), checkpoint_interval=5e-5,
        ),
    )
    result = train_logistic_regression(ctx, rows, 48, n_iterations=6,
                                       optimizer="sgd", seed=1)
    metrics = ctx.cluster.metrics
    assert result.iterations == 6
    assert metrics.counters["server-recoveries"] >= 1
    hist = metrics.latency.get("staleness-clocks")
    if hist is not None:
        assert hist.summary()["max"] <= 2.0


# -- partition timing: fate decided at the booked departure ------------------


def _backlogged_sender(horizon_target=6e-3):
    """A cluster whose executor-0 send NIC is booked out past *horizon_target*
    while its virtual clock still reads ~0 (deliver=False books only NICs)."""
    cluster = _chaos_cluster()
    network = cluster.network
    src = cluster.executors[0]
    sink = cluster.servers[0]
    while network.nic_horizon(src)[0] < horizon_target:
        network.transfer(src, sink, 200_000, deliver=False)
    assert cluster.clock.now(src) == 0.0
    return cluster, network, src


def test_backlog_pushes_transfer_into_partition_window():
    """Regression (PR 7): the partition check applies at the booked
    post-queue ``depart``, not the pre-queue arrival.  A window that opens
    only AFTER the message entered the NIC queue — but covers its true
    departure — must still drop it."""
    from repro.common.errors import NetworkPartitionedError

    cluster, network, src = _backlogged_sender()
    dst = cluster.executors[1]
    depart = network.nic_horizon(src)[0]
    # Inactive at the pre-queue arrival (t=0), active at the departure.
    cluster.failures.schedule_partition(dst, depart - 1e-4, depart + 1e-2)
    assert not cluster.failures.partition_active(dst, 0.0)
    with pytest.raises(NetworkPartitionedError):
        network.transfer(src, dst, 100, deliver=False)
    assert cluster.metrics.counters["partition-drops"] == 1
    # The dropped attempt consumed no send-side NIC capacity.
    assert network.nic_horizon(src)[0] == depart


def test_backlog_pushes_transfer_past_healed_window():
    """The mirror image: a window active when the message entered the
    queue, but healed by the time the backlog lets it depart, must NOT
    drop the transfer."""
    cluster, network, src = _backlogged_sender()
    dst = cluster.executors[1]
    depart = network.nic_horizon(src)[0]
    # Active at the pre-queue arrival (t=0), healed before the departure.
    cluster.failures.schedule_partition(dst, 0.0, depart - 1e-4)
    assert cluster.failures.partition_active(dst, 0.0)
    recv_done = network.transfer(src, dst, 100, deliver=False)
    assert recv_done > depart
    assert cluster.metrics.counters.get("partition-drops", 0) == 0


# -- chain replication under failures ----------------------------------------


def _chain_stream(crash):
    """A read-only serving stream over a lazy table with ``chain_replicas=1``.

    Phase A materializes rows, then (*crash* only) the middle server dies;
    phase B reads a pre-crash row owned by the dead server — served by its
    chain successor with no recovery; phase C streams brand-new ids, the
    first of which to land on the dead server triggers recover + promotion.
    Returns the final pulled vectors so the crashed run can be compared
    bit-for-bit against its uncrashed twin.
    """
    ctx = make_context(n_executors=2, n_servers=3, seed=13, chain_replicas=1)
    cluster = ctx.cluster
    metrics = cluster.metrics
    table = ctx.master.create_table(8, name="serve")
    clients = [ctx.client_for(node) for node in cluster.executors]
    ids = np.random.default_rng(7).integers(0, 48, size=(30, 2))
    served = 0
    for step, request_ids in enumerate(ids):
        clients[step % 2].pull_or_create(table, [int(i) for i in request_ids])
        served += 1
    layout = ctx.master.layout(table)
    created = sorted(ctx.master.info(table).created_rows)
    victim_row = next(r for r in created
                      if layout.shards_for_row(r)[0][0] == 1)
    if crash:
        ctx.master.servers[1].crash()
        # Zero-downtime read: the successor serves the copy, no recovery.
        clients[0].pull_or_create(table, [victim_row])
        assert metrics.counters.get("chain-reads", 0) >= 1
        assert metrics.counters.get("server-recoveries", 0) == 0
    else:
        clients[0].pull_or_create(table, [victim_row])
    fresh = np.random.default_rng(11).integers(48, 96, size=(30, 2))
    for step, request_ids in enumerate(fresh):
        clients[step % 2].pull_or_create(table, [int(i) for i in request_ids])
        served += 1
    rows = sorted(ctx.master.info(table).created_rows)
    vectors = clients[0].pull_or_create(table, rows)
    return ctx, served, rows, vectors


def test_chain_serving_crash_promotes_with_zero_drops():
    """Tentpole acceptance: a mid-stream crash under chain replication
    drops zero requests, recovers by successor promotion (never the
    checkpoint path — none exists), and every lazy-init vector the stream
    created reads back bit-identical to the uncrashed twin run."""
    ctx, served, rows, vectors = _chain_stream(crash=True)
    ctx_twin, served_twin, rows_twin, vectors_twin = _chain_stream(crash=False)
    metrics = ctx.metrics
    assert served == served_twin == 60
    # No request was dropped: every client op completed (retries included).
    assert metrics.counters.get("client-dropped-ops", 0) == 0
    # Recovery went through promotion, not checkpoint fallback.
    assert metrics.counters["chain-promotions"] >= 1
    assert metrics.counters.get("chain-fallbacks", 0) == 0
    assert ctx.master.checkpoints.recoveries == 0
    assert metrics.counters["server-recoveries"] == 1
    assert metrics.bytes_for_tag("chain-promote") > 0
    # Post-crash state is bit-identical to the run where nothing died.
    assert rows == rows_twin
    assert np.array_equal(vectors, vectors_twin)
    # The uncrashed twin never touched any failure machinery.
    assert "server-recoveries" not in ctx_twin.metrics.counters
    assert "chain-reads" not in ctx_twin.metrics.counters


def test_chain_serving_crash_is_deterministic():
    ctx_a, _served_a, rows_a, vectors_a = _chain_stream(crash=True)
    ctx_b, _served_b, rows_b, vectors_b = _chain_stream(crash=True)
    assert rows_a == rows_b
    assert np.array_equal(vectors_a, vectors_b)
    assert ctx_a.elapsed() == ctx_b.elapsed()
    assert ctx_a.metrics.counters == ctx_b.metrics.counters


def test_chain_double_crash_falls_back_to_checkpoint():
    """Primary AND its only successor die: promotion finds no valid holder
    and recovery falls back to the checkpoint — rolling back the
    post-checkpoint delta on the doubly-lost shard only.  Shards whose
    chain survived keep the delta, and the successor's later recovery goes
    through promotion as usual."""
    ctx = make_context(n_executors=2, n_servers=3, seed=17, chain_replicas=1)
    ctx.cluster.tracer.enable()  # retry/recovery spans recorded too
    client = ctx.client_for(ctx.cluster.executors[0])
    m = ctx.master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    ctx.master.checkpoint_all()
    client.push_add(m, 0, np.ones(30))  # post-checkpoint, unsnapshotted
    ctx.master.servers[0].crash()
    ctx.master.servers[1].crash()  # successor of 0: every holder now dead
    pulled = client.pull_row(m, 0)
    for server_index, start, stop in ctx.master.layout(m).shards_for_row(0):
        base = np.arange(30.0)[start:stop]
        if server_index == 0:
            # All M+1 holders died: checkpoint restore, delta rolled back.
            assert np.allclose(pulled[start:stop], base)
        else:
            # Server 1's shard is served by ITS surviving successor (or
            # its own store): the delta outlived the double crash.
            assert np.allclose(pulled[start:stop], base + 1.0)
    assert ctx.metrics.counters["chain-fallbacks"] == 1
    assert ctx.master.checkpoints.recoveries == 1
    # A mutation wakes the dead successor: ITS chain survived on server 2,
    # so this recovery is a promotion — no second fallback.
    client.push_add(m, 0, np.ones(30))
    assert ctx.metrics.counters["chain-promotions"] >= 1
    assert ctx.metrics.counters["chain-fallbacks"] == 1
    pulled = client.pull_row(m, 0)
    for server_index, start, stop in ctx.master.layout(m).shards_for_row(0):
        base = np.arange(30.0)[start:stop]
        expected = base + (1.0 if server_index == 0 else 2.0)
        assert np.allclose(pulled[start:stop], expected)


def test_chain_crash_during_resize_reforms():
    """A server dying mid-migration, after the resize tore the chains down
    but before they re-formed: the in-place recovery cannot promote (no
    links exist) and takes the checkpoint path; the sweep completes and
    the chain re-forms over the new topology."""
    ctx = make_context(n_executors=2, n_servers=3, seed=19, chain_replicas=1)
    client = ctx.client_for(ctx.cluster.executors[0])
    m = ctx.master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    ctx.master.checkpoint_all()
    assert ctx.cluster.chain.links
    ctx.master.servers[1].crash()  # dead when the migration reads it
    ctx.master.resize_servers(4)
    assert ctx.metrics.counters["server-recoveries"] == 1
    assert ctx.metrics.counters["chain-fallbacks"] >= 1
    assert "chain-promotions" not in ctx.metrics.counters
    assert ctx.metrics.counters["chain-reforms"] == 1
    # The chain map re-formed against the post-resize ring.
    chain = ctx.cluster.chain
    assert chain.links
    for (_matrix_id, primary), holders in chain.links.items():
        assert sorted(holders) == chain.successors(primary)
        assert chain.key_lag(_matrix_id, primary) == 0
    assert np.allclose(client.pull_row(m, 0), np.arange(30.0))
