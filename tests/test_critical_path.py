"""Critical-path attribution: the walk partitions time, exactly.

Synthetic-DAG tests pin the walk's semantics (child time belongs to the
child, residual to the parent, overlapping children resolve latest-end
first, root gaps are idle); integration tests run a real traced training
job and check the acceptance bar — per-stage categories sum to the stage
makespan — plus the whole-run breakdown's shape.
"""

import pytest

from repro.data import sparse_classification
from repro.experiments.runner import make_context
from repro.ml import train_logistic_regression
from repro.obs import critical_path as cp
from repro.obs.tracer import Tracer


def _tracer():
    # record() takes explicit intervals, so no clock is needed
    return Tracer(clock=None, enabled=True)


def _attributed(result):
    return sum(result.categories.values())


# -- synthetic DAGs ----------------------------------------------------------


def test_single_span_is_all_own_category():
    tracer = _tracer()
    span = tracer.record("n", "pull", 0.0, 4.0, cat="op")
    result = cp.from_span(tracer, span)
    assert result.categories["queueing"] == pytest.approx(4.0)
    assert _attributed(result) == pytest.approx(result.total) == \
        pytest.approx(4.0)


def test_child_time_belongs_to_child_rest_to_parent():
    tracer = _tracer()
    parent = tracer.record("n", "pull", 0.0, 10.0, cat="op")
    tracer.record("s", "service", 2.0, 5.0, cat="cpu",
                  parent_id=parent.span_id)
    result = cp.from_span(tracer, parent)
    assert result.categories["compute"] == pytest.approx(3.0)
    assert result.categories["queueing"] == pytest.approx(7.0)
    assert _attributed(result) == pytest.approx(10.0)


def test_overlapping_children_resolve_latest_end_first():
    """A child fully covered by later critical work is skipped: only the
    last thing blocking completion at each instant gets the time."""
    tracer = _tracer()
    parent = tracer.record("n", "pull", 0.0, 10.0, cat="op")
    tracer.record("n", "net", 1.0, 9.0, cat="nic-send",
                  parent_id=parent.span_id)
    tracer.record("s", "service", 2.0, 8.0, cat="cpu",
                  parent_id=parent.span_id)
    result = cp.from_span(tracer, parent)
    # [9,10] + [0,1] residual; [1,9] network; cpu covered entirely
    assert result.categories["queueing"] == pytest.approx(2.0)
    assert result.categories["network"] == pytest.approx(8.0)
    assert result.categories["compute"] == 0.0
    assert _attributed(result) == pytest.approx(10.0)


def test_staggered_children_chain_backward():
    tracer = _tracer()
    parent = tracer.record("n", "op", 0.0, 10.0, cat="op")
    tracer.record("n", "send", 1.0, 4.0, cat="nic-send",
                  parent_id=parent.span_id)
    tracer.record("s", "service", 3.0, 7.0, cat="cpu",
                  parent_id=parent.span_id)
    result = cp.from_span(tracer, parent)
    # backward: [7,10] residual, [3,7] cpu.  The send's *end* (4.0) is
    # covered by the later-ending cpu slot, so the send was never the last
    # thing blocking completion: it is skipped whole and [0,3] stays
    # parent residual.
    assert result.categories["queueing"] == pytest.approx(6.0)
    assert result.categories["compute"] == pytest.approx(4.0)
    assert result.categories["network"] == 0.0
    assert _attributed(result) == pytest.approx(10.0)


def test_wait_ops_categorize_by_name():
    tracer = _tracer()
    ssp = tracer.record("w", "staleness-wait", 0.0, 2.0, cat="op")
    retry = tracer.record("w", "retry-backoff", 2.0, 3.0, cat="op")
    assert cp.categorize(ssp) == "staleness-wait"
    assert cp.categorize(retry) == "retry-backoff"
    parent = tracer.record("w", "step", 0.0, 4.0, cat="task")
    ssp.parent_id = parent.span_id
    retry.parent_id = parent.span_id
    result = cp.from_span(tracer, parent)
    assert result.categories["staleness-wait"] == pytest.approx(2.0)
    assert result.categories["retry-backoff"] == pytest.approx(1.0)
    assert result.categories["compute"] == pytest.approx(1.0)


def test_nested_grandchildren_recurse():
    tracer = _tracer()
    stage = tracer.record("driver", "stage", 0.0, 10.0, cat="stage")
    task = tracer.record("e", "task", 1.0, 9.0, cat="task",
                         parent_id=stage.span_id)
    tracer.record("e", "net", 2.0, 6.0, cat="nic-send",
                  parent_id=task.span_id)
    result = cp.from_span(tracer, stage)
    assert result.categories["queueing"] == pytest.approx(2.0)  # stage ends
    assert result.categories["compute"] == pytest.approx(4.0)   # task rest
    assert result.categories["network"] == pytest.approx(4.0)
    assert _attributed(result) == pytest.approx(10.0)


def test_open_spans_are_ignored():
    tracer = _tracer()
    parent = tracer.record("n", "op", 0.0, 5.0, cat="op")
    dangling = tracer.record("n", "child", 1.0, 2.0, cat="cpu",
                             parent_id=parent.span_id)
    dangling.end = None  # still open: must not enter the walk
    result = cp.from_span(tracer, parent)
    assert result.categories["queueing"] == pytest.approx(5.0)


def test_analyze_attributes_root_gaps_to_idle():
    tracer = _tracer()
    tracer.record("n", "first", 0.0, 2.0, cat="op")
    tracer.record("n", "second", 5.0, 9.0, cat="op")
    result = cp.analyze(tracer)
    assert result.total == pytest.approx(9.0)
    assert result.terminal.op == "second"
    assert result.categories["idle"] == pytest.approx(3.0)
    assert result.categories["queueing"] == pytest.approx(6.0)
    assert _attributed(result) == pytest.approx(9.0)


def test_analyze_empty_tracer():
    result = cp.analyze(_tracer())
    assert result.total == 0.0
    assert _attributed(result) == 0.0
    assert result.terminal is None


def test_result_render_and_fractions():
    tracer = _tracer()
    span = tracer.record("n", "op", 0.0, 8.0, cat="op")
    tracer.record("n", "net", 0.0, 6.0, cat="nic-send",
                  parent_id=span.span_id)
    result = cp.from_span(tracer, span)
    assert result.fraction("network") == pytest.approx(0.75)
    text = result.render(title="unit")
    assert "== unit ==" in text
    assert "network" in text and "75.0%" in text
    d = result.to_dict()
    assert d["total"] == pytest.approx(8.0)
    assert set(d["categories"]) == set(cp.CATEGORIES)


# -- integration: real traced training runs ----------------------------------


def _traced_training_run(**kwargs):
    ctx = make_context(n_executors=2, n_servers=3, seed=11, **kwargs)
    ctx.cluster.tracer.enable()
    rows, _ = sparse_classification(80, 96, 8, seed=11)
    train_logistic_regression(ctx, rows, 96, optimizer="sgd",
                              n_iterations=2, batch_fraction=0.5, seed=11)
    return ctx


def test_stage_categories_sum_to_stage_makespan():
    """The acceptance bar: per-stage attribution sums to the makespan
    within 1% — here exact up to float addition."""
    ctx = _traced_training_run()
    breakdowns = cp.stage_breakdowns(ctx.cluster.tracer)
    assert breakdowns
    for span, result in breakdowns:
        assert result.total == pytest.approx(span.duration, abs=1e-12)
        attributed = _attributed(result)
        assert attributed == pytest.approx(span.duration, rel=1e-9)
        if span.duration > 0:
            assert abs(attributed - span.duration) <= 0.01 * span.duration
        assert all(v >= 0 for v in result.categories.values())


def test_run_breakdown_covers_the_traced_makespan():
    ctx = _traced_training_run()
    tracer = ctx.cluster.tracer
    result = cp.analyze(tracer)
    latest_root = max(
        (s for s in tracer.spans if s.parent_id is None and s.end is not None),
        key=lambda s: s.end,
    )
    assert result.total == pytest.approx(latest_root.end)
    assert _attributed(result) == pytest.approx(result.total, rel=1e-9)
    # a PS training run spends real time in compute AND network
    assert result.categories["compute"] > 0.0
    assert result.categories["network"] > 0.0
    # nothing fell through the categorization
    assert result.fraction("other") < 0.01


def test_ssp_gate_wait_becomes_a_traced_span():
    """A blocked SSP worker leaves a staleness-wait span covering exactly
    the gate interval, and the walk attributes it."""
    from repro.cluster.cluster import Cluster
    from repro.config import ClusterConfig

    cluster = Cluster(ClusterConfig(n_executors=4, n_servers=3, seed=42,
                                    consistency="ssp", staleness=1))
    cluster.tracer.enable()
    model = cluster.consistency
    fast, slow = cluster.executors[0], cluster.executors[1]
    cluster.clock.set_at_least(slow, 5.0)
    model.advance(cluster, slow)
    model.advance(cluster, fast)
    model.advance(cluster, fast)
    model.sync(cluster, fast)
    waits = cluster.tracer.spans_for(op="staleness-wait")
    assert len(waits) == 1
    wait = waits[0]
    assert wait.node == fast
    assert wait.end == pytest.approx(5.0)
    assert wait.duration == pytest.approx(5.0 - wait.start)
    assert wait.args["clock"] == 2
    result = cp.analyze(cluster.tracer)
    assert result.categories["staleness-wait"] == \
        pytest.approx(wait.duration)
    assert _attributed(result) == pytest.approx(result.total, rel=1e-9)
