"""Property tests for the wire codecs: round-trip bounds and honest bytes.

Every codec must satisfy two contracts the cost model relies on:

- **loss class**: the decode(encode(x)) error obeys the codec's
  documented bound (zero for lossless, elementwise bounds for the
  quantizers, error-feedback conservation for top-k);
- **honest accounting**: ``Encoded.nbytes`` is the actual size of the
  encoded representation, and for fixed-rate codecs it equals
  ``encoded_bytes(len(x))`` — the property that lets responses be priced
  from the request alone.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import PSError
from repro.common.sizeof import FLOAT_BYTES, INDEX_BYTES
from repro.ps.codecs import (
    CODEC_NAMES,
    FP16_MAX,
    DeltaCodec,
    Fp16Codec,
    IdentityCodec,
    Int8Codec,
    TopKCodec,
    make_codec,
)

payloads = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
    min_size=1,
    max_size=64,
).map(lambda xs: np.asarray(xs, dtype=float))


# -- identity -----------------------------------------------------------------


@given(x=payloads)
@settings(max_examples=60, deadline=None)
def test_identity_bit_exact_and_honest(x):
    codec = IdentityCodec()
    enc = codec.encode(x)
    out = codec.decode(enc)
    assert out.dtype == np.float64
    assert np.array_equal(out, x)  # bit-exact
    assert enc.nbytes == x.size * FLOAT_BYTES
    assert enc.nbytes == codec.encoded_bytes(x.size)


def test_identity_decode_returns_a_copy():
    codec = IdentityCodec()
    x = np.array([1.0, 2.0])
    enc = codec.encode(x)
    out = codec.decode(enc)
    out[0] = 99.0
    assert codec.decode(enc)[0] == 1.0


# -- fp16 ---------------------------------------------------------------------


@given(x=payloads)
@settings(max_examples=60, deadline=None)
def test_fp16_error_bound_and_honest(x):
    codec = Fp16Codec()
    enc = codec.encode(x)
    out = codec.decode(enc)
    clipped = np.clip(x, -FP16_MAX, FP16_MAX)
    # Half-precision round-to-nearest: relative 2^-11 in the normal
    # range, absolute 2^-24 near zero (subnormal spacing).
    bound = np.maximum(2.0 ** -11 * np.abs(clipped), 2.0 ** -24)
    assert np.all(np.abs(out - clipped) <= bound)
    assert enc.nbytes == 2 * x.size
    assert enc.nbytes == codec.encoded_bytes(x.size)


def test_fp16_clips_out_of_range():
    codec = Fp16Codec()
    out = codec.decode(codec.encode(np.array([1e30, -1e30])))
    assert out[0] == pytest.approx(FP16_MAX)
    assert out[1] == pytest.approx(-FP16_MAX)
    assert np.all(np.isfinite(out))


# -- int8 ---------------------------------------------------------------------


@given(x=payloads)
@settings(max_examples=60, deadline=None)
def test_int8_error_bound_and_honest(x):
    codec = Int8Codec()
    enc = codec.encode(x)
    out = codec.decode(enc)
    peak = float(np.max(np.abs(x)))
    scale = peak / 127.0 if peak > 0 else 1.0
    # Round-to-nearest against one scale per payload: error <= scale/2.
    assert np.all(np.abs(out - x) <= scale / 2.0 + 1e-12)
    assert enc.nbytes == x.size + FLOAT_BYTES
    assert enc.nbytes == codec.encoded_bytes(x.size)


def test_int8_all_zero_roundtrips_exactly():
    codec = Int8Codec()
    x = np.zeros(17)
    assert np.array_equal(codec.decode(codec.encode(x)), x)


# -- topk ---------------------------------------------------------------------


@given(x=payloads)
@settings(max_examples=60, deadline=None)
def test_topk_keeps_largest_and_honest(x):
    codec = TopKCodec(ratio=0.25)
    enc = codec.encode(x)  # stateless use: no key, no residual
    out = codec.decode(enc)
    k = codec.k_for(x.size)
    kept = np.nonzero(out)[0]
    assert len(kept) <= k
    assert np.array_equal(out[kept], x[kept])
    # Nothing dropped is larger in magnitude than anything kept.
    if kept.size and kept.size < x.size:
        dropped = np.setdiff1d(np.arange(x.size), kept)
        assert np.max(np.abs(x[dropped])) <= np.min(np.abs(x[kept])) + 1e-12
    assert enc.nbytes == INDEX_BYTES + k * (INDEX_BYTES + FLOAT_BYTES)
    assert enc.nbytes == codec.encoded_bytes(x.size)


@given(chunks=st.lists(payloads.filter(lambda a: a.size >= 4), min_size=2,
                       max_size=6))
@settings(max_examples=40, deadline=None)
def test_topk_error_feedback_conserves_mass(chunks):
    """decode(enc) + residual_after == values + residual_before, exactly.

    Dropped gradient mass is delayed into the stream's residual, never
    lost — the Stich et al. error-feedback invariant, per message.
    """
    size = chunks[0].size
    codec = TopKCodec(ratio=0.25)
    key = ("client", "m", 0, 1)
    for chunk in chunks:
        chunk = np.resize(chunk, size)  # one stream, constant width
        before = codec.residual(key)
        before = np.zeros(size) if before is None else before
        enc = codec.encode(chunk, key=key)
        after = codec.residual(key)
        assert np.array_equal(codec.decode(enc) + after, chunk + before)


def test_topk_rejects_bad_ratio():
    with pytest.raises(PSError):
        TopKCodec(ratio=0.0)
    with pytest.raises(PSError):
        TopKCodec(ratio=1.5)


def test_topk_k_for_edges():
    codec = TopKCodec(ratio=0.1)
    assert codec.k_for(0) == 0
    assert codec.k_for(1) == 1  # at least one entry always ships
    assert codec.k_for(100) == 10
    assert TopKCodec(ratio=1.0).k_for(7) == 7


# -- delta --------------------------------------------------------------------


@given(chunks=st.lists(payloads, min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_delta_lossless_over_a_stream(chunks):
    size = max(chunk.size for chunk in chunks)
    codec = DeltaCodec()
    key = ("client", "m", 0, 1)
    for chunk in chunks:
        chunk = np.resize(chunk, size)
        enc = codec.encode(chunk, key=key)
        out = codec.decode(enc, key=key)
        assert np.array_equal(out, chunk)  # lossless, bit-exact
        # Honest worst case: a dense first payload, or every entry
        # changed as (index, value) pairs — delta may legitimately
        # exceed dense size, and nbytes must say so.
        assert enc.nbytes <= INDEX_BYTES + size * (INDEX_BYTES + FLOAT_BYTES)


def test_delta_first_payload_is_dense_then_sparse():
    codec = DeltaCodec()
    key = "s"
    x = np.arange(8.0)
    first = codec.encode(x, key=key)
    assert first.payload[0] == "full"
    assert first.nbytes == 8 * FLOAT_BYTES
    y = x.copy()
    y[3] = -1.0
    second = codec.encode(y, key=key)
    assert second.payload[0] == "delta"
    assert second.nbytes == INDEX_BYTES + 1 * (INDEX_BYTES + FLOAT_BYTES)
    codec.decode(first, key=key)
    assert np.array_equal(codec.decode(second, key=key), y)


def test_delta_decode_without_base_raises():
    enc_side = DeltaCodec()
    key = "s"
    enc_side.encode(np.arange(4.0), key=key)
    second = enc_side.encode(np.array([9.0, 1.0, 2.0, 3.0]), key=key)
    dec_side = DeltaCodec()
    with pytest.raises(PSError):
        dec_side.decode(second, key=key)


def test_delta_is_not_fixed_rate():
    with pytest.raises(PSError):
        DeltaCodec().encoded_bytes(10)


def test_delta_decode_uses_encoded_key_when_arg_missing():
    codec = DeltaCodec()
    x = np.arange(5.0)
    enc = codec.encode(x, key="k")
    assert np.array_equal(codec.decode(enc), x)
    y = x.copy()
    y[0] = 7.0
    enc2 = codec.encode(y, key="k")
    assert np.array_equal(codec.decode(enc2), y)


# -- factory ------------------------------------------------------------------


def test_make_codec_covers_every_name():
    for name in CODEC_NAMES:
        codec = make_codec(name)
        assert codec.name == name
        assert codec.loss_class in ("lossless", "quantized", "sparsified")


def test_make_codec_threads_topk_ratio():
    assert make_codec("topk", topk_ratio=0.5).ratio == 0.5


def test_make_codec_rejects_unknown():
    with pytest.raises(PSError):
        make_codec("gzip")
