"""Unit tests for the parameter-server storage and kernels."""

import numpy as np
import pytest

from repro.common.errors import MatrixNotFoundError, PSError, ServerDownError
from repro.ps.server import PSServer


@pytest.fixture
def server(cluster):
    s = PSServer(cluster, cluster.servers[0], 0)
    s.allocate_row("m", 0, 10, 20, init="zero")
    return s


def test_allocate_zero(server):
    shard = server.shard("m", 0)
    assert shard.start == 10 and shard.stop == 20
    assert np.all(shard.values == 0)
    assert len(shard) == 10


def test_allocate_random_deterministic(cluster):
    from repro.common.rng import RngRegistry

    s = PSServer(cluster, cluster.servers[0], 0)
    s.allocate_row("m", 0, 0, 10, init="random",
                   rng=RngRegistry(5).get("x"), scale=0.5)
    t = PSServer(cluster, cluster.servers[1], 1)
    t.allocate_row("m", 0, 0, 10, init="random",
                   rng=RngRegistry(5).get("x"), scale=0.5)
    assert np.allclose(s.shard("m", 0).values, t.shard("m", 0).values)


def test_allocate_uniform_bounded(cluster):
    from repro.common.rng import RngRegistry

    s = PSServer(cluster, cluster.servers[0], 0)
    s.allocate_row("m", 0, 0, 100, init="uniform",
                   rng=RngRegistry(1).get("x"), scale=0.2)
    values = s.shard("m", 0).values
    assert np.all(np.abs(values) <= 0.2)
    assert np.any(values != 0)


def test_allocate_random_requires_rng(cluster):
    s = PSServer(cluster, cluster.servers[0], 0)
    with pytest.raises(PSError):
        s.allocate_row("m", 0, 0, 4, init="random")


def test_allocate_unknown_init(cluster):
    s = PSServer(cluster, cluster.servers[0], 0)
    with pytest.raises(PSError):
        s.allocate_row("m", 0, 0, 4, init="fnord")


def test_missing_shard_raises(server):
    with pytest.raises(MatrixNotFoundError):
        server.shard("m", 1)
    with pytest.raises(MatrixNotFoundError):
        server.shard("other", 0)


def test_has_shard(server):
    assert server.has_shard("m", 0)
    assert not server.has_shard("m", 3)


def test_read_full_and_indexed(server):
    server.assign("m", 0, np.arange(10.0))
    assert np.allclose(server.read("m", 0), np.arange(10.0))
    # Global indices 12, 17 are local offsets 2, 7.
    assert np.allclose(server.read("m", 0, np.array([12, 17])), [2.0, 7.0])


def test_read_returns_copy(server):
    values = server.read("m", 0)
    values[:] = 99
    assert server.read("m", 0)[0] == 0.0


def test_add_dense_and_sparse(server):
    server.add("m", 0, np.ones(10))
    server.add("m", 0, np.array([5.0]), np.array([13]))
    got = server.read("m", 0)
    assert got[3] == 6.0
    assert got[0] == 1.0


def test_add_duplicate_indices_accumulate(server):
    server.add("m", 0, np.array([1.0, 2.0]), np.array([10, 10]))
    assert server.read("m", 0)[0] == 3.0


def test_assign_sparse(server):
    server.assign("m", 0, np.array([7.0]), np.array([19]))
    assert server.read("m", 0)[9] == 7.0


def test_fill(server):
    server.fill("m", 0, 2.5)
    assert np.all(server.read("m", 0) == 2.5)


def test_aggregates(server):
    server.assign("m", 0, np.array([0, 1, 2, 3, 0, 0, 0, 0, -1, 4.0]))
    assert server.aggregate("m", 0, "sum") == pytest.approx(9.0)
    assert server.aggregate("m", 0, "nnz") == 5
    assert server.aggregate("m", 0, "sumsq") == pytest.approx(1 + 4 + 9 + 1 + 16)
    assert server.aggregate("m", 0, "max") == 4.0
    assert server.aggregate("m", 0, "min") == -1.0


def test_aggregate_unknown_kind(server):
    with pytest.raises(PSError):
        server.aggregate("m", 0, "median")


def test_execute_kernel_aligned(server):
    server.allocate_row("m", 1, 10, 20, init="zero")
    server.assign("m", 0, np.full(10, 2.0))
    server.assign("m", 1, np.full(10, 3.0))

    def dot(arrays):
        return float(np.dot(arrays[0], arrays[1]))

    assert server.execute_kernel(dot, [("m", 0), ("m", 1)]) == 60.0


def test_execute_kernel_mutates_in_place(server):
    server.assign("m", 0, np.ones(10))

    def double(arrays):
        arrays[0] *= 2

    server.execute_kernel(double, [("m", 0)])
    assert np.all(server.read("m", 0) == 2.0)


def test_execute_kernel_misaligned_rejected(server):
    server.allocate_row("n", 0, 0, 10, init="zero")
    with pytest.raises(PSError):
        server.execute_kernel(lambda a: None, [("m", 0), ("n", 0)])


def test_execute_kernel_injects_range(server):
    from repro.core.kernels import with_range

    @with_range
    def probe(arrays, start, stop):
        return (start, stop)

    assert server.execute_kernel(probe, [("m", 0)]) == (10, 20)


def test_drop_matrix(server):
    server.drop_matrix("m")
    assert not server.has_shard("m", 0)
    server.drop_matrix("m")  # idempotent


def test_stored_bytes(server):
    assert server.stored_bytes() == 80
    server.allocate_row("m", 1, 0, 5, init="zero")
    assert server.stored_bytes() == 120


def test_crash_loses_state_and_rejects_ops(server):
    server.crash()
    assert not server.alive
    with pytest.raises(ServerDownError):
        server.read("m", 0)


def test_snapshot_restore_round_trip(server):
    server.assign("m", 0, np.arange(10.0))
    snapshot = server.snapshot()
    server.crash()
    server.restore(snapshot)
    assert server.alive
    assert np.allclose(server.read("m", 0), np.arange(10.0))


def test_snapshot_is_deep_copy(server):
    snapshot = server.snapshot()
    server.assign("m", 0, np.full(10, 9.0))
    assert np.all(snapshot["m"][0].values == 0)


def test_scheduled_failure_fires_on_access(cluster):
    s = PSServer(cluster, cluster.servers[0], 0)
    s.allocate_row("m", 0, 0, 4, init="zero")
    cluster.failures.schedule_server_failure(s.node_id, at_time=0.5)
    cluster.clock.advance(s.node_id, 1.0)
    with pytest.raises(ServerDownError):
        s.read("m", 0)
    assert not s.alive


def test_service_queues_by_arrival_not_call_order(server):
    """Requests arriving at disjoint times do not queue behind each other
    regardless of the order the simulator processes them in."""
    big_flops = server.cluster.config.node.flops  # 1 virtual second
    server.begin(10.0)
    server._service(big_flops, "x")
    late = server.last_completion
    server.begin(0.0)
    server._service(big_flops, "x")
    early = server.last_completion
    assert late == pytest.approx(11.0)
    assert early == pytest.approx(1.0)
