"""CLI tests (``python -m repro ...``)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


def test_quickcheck_passes(capsys):
    assert main(["quickcheck"]) == 0
    out = capsys.readouterr().out
    assert out.count("PASS") == 5
    assert "FAIL" not in out


def test_dataset_command(capsys):
    assert main(["dataset", "graph1", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "DeepWalk" in out
    assert "254 vertices" in out


def test_dataset_unknown(capsys):
    assert main(["dataset", "imagenet"]) == 1
    assert "unknown dataset" in capsys.readouterr().out


@pytest.mark.parametrize("workload",
                         ["lr", "svm", "fm", "gbdt", "lda", "line"])
def test_train_commands(capsys, workload):
    code = main([
        "train", workload, "--iterations", "2",
        "--executors", "4", "--servers", "3", "--seed", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "loss=" in out
    assert "virtual time" in out


def test_train_deepwalk(capsys):
    assert main(["train", "deepwalk", "--iterations", "1",
                 "--executors", "4", "--servers", "2"]) == 0
    assert "deepwalk" in capsys.readouterr().out


def test_trace_command(capsys, tmp_path):
    out_path = tmp_path / "trace.json"
    code = main([
        "trace", "lr", "--iterations", "1",
        "--executors", "4", "--servers", "3", "--seed", "1",
        "--out", str(out_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "per-op latency" in out
    assert "p50_s" in out
    assert "per-server load" in out
    assert "final loss" in out
    import json

    with open(out_path, encoding="utf-8") as handle:
        document = json.load(handle)
    events = document["traceEvents"]
    assert any(e["ph"] == "X" and e["dur"] >= 0 for e in events)
    assert any(e["ph"] == "M" for e in events)


def test_critical_path_command(capsys):
    code = main([
        "critical-path", "lr", "--iterations", "2",
        "--executors", "2", "--servers", "3", "--seed", "1", "--stages",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "total attributed:" in out
    assert "compute" in out and "network" in out and "queueing" in out
    assert "stage:" in out  # per-stage breakdowns under --stages
    assert "virtual makespan:" in out


def test_critical_path_ssp(capsys):
    assert main([
        "critical-path", "lr", "--iterations", "2",
        "--executors", "2", "--servers", "2", "--seed", "1",
        "--consistency", "ssp", "--staleness", "1",
    ]) == 0
    assert "total attributed:" in capsys.readouterr().out


def test_bench_gate_command(capsys, tmp_path):
    from repro.config import ClusterConfig
    from repro.core.context import PS2Context
    from repro.obs import bench

    ctx = PS2Context(config=ClusterConfig(n_executors=2, n_servers=2,
                                          seed=7))
    w = ctx.dense(128, rows=1)
    w.push(np.arange(128.0))
    w.pull()
    record = bench.bench_record("cli", [ctx.cluster],
                                params={"iterations": 1})
    results = tmp_path / "results"
    baselines = tmp_path / "baselines"
    bench.write_record(record, str(results))
    bench.write_record(record, str(baselines))
    assert main(["bench-gate", "--results", str(results),
                 "--baselines", str(baselines)]) == 0
    assert "bench gate passed" in capsys.readouterr().out

    # regress the baseline beyond a tightened tolerance: exit code 1
    record["total_wire_bytes"] /= 1.5
    record["contexts"][0]["total_wire_bytes"] /= 1.5
    bench.write_record(record, str(baselines))
    assert main(["bench-gate", "--results", str(results),
                 "--baselines", str(baselines)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "bench gate FAILED" in out
    # a loose explicit tolerance waves the same drift through
    assert main(["bench-gate", "--results", str(results),
                 "--baselines", str(baselines),
                 "--bytes-tolerance", "0.9"]) == 0


def test_experiments_listing(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "bench_fig10_lr_end2end.py" in out
    assert "pytest benchmarks/ --benchmark-only" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["train", "resnet"])


def test_profile_command(capsys, tmp_path):
    dump = tmp_path / "profile.pstats"
    code = main([
        "profile", "fm", "--iterations", "1",
        "--executors", "4", "--servers", "3", "--seed", "1",
        "--top", "5", "--out", str(dump),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "host profile" in out
    assert "tottime" in out
    assert dump.exists()
    import pstats

    stats = pstats.Stats(str(dump))
    assert stats.total_calls > 0


def test_profile_sort_choices():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["profile", "lr", "--sort", "bogus"])
