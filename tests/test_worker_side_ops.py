"""Column/row ops issued from INSIDE tasks: traffic attribution and timing.

The DeepWalk path issues DCV ops from executors (Figure 5: "the executor
incurs a DCV dot operator").  These tests pin down that worker-issued ops
charge the worker, not the coordinator, and that the protocol sizes match
the message formulas.
"""

import numpy as np
import pytest

from repro.cluster.cluster import DRIVER
from repro.common.sizeof import MESSAGE_OVERHEAD_BYTES
from repro.ps import messages


def test_worker_issued_dot_charges_executor(ps2):
    a = ps2.dense(30, rows=4).fill(1.0)
    b = a.derive().fill(2.0)
    data = ps2.parallelize([0], n_partitions=1)
    before_driver = ps2.metrics.bytes_sent.get(DRIVER, 0)

    def task(ctx, iterator):
        list(iterator)
        return [a.dot(b, task_ctx=ctx)]

    (value,) = data.map_partitions_with_context(task).collect()
    assert value == pytest.approx(60.0)
    sent = ps2.metrics.bytes_sent
    # The executor that ran the task carried the kernel requests...
    assert sent.get("executor-0", 0) > 0
    # ...and the driver sent only control-plane traffic (task launch).
    driver_delta = sent.get(DRIVER, 0) - before_driver
    assert driver_delta < 2000


def test_worker_issued_iaxpy_is_fire_and_forget(ps2):
    a = ps2.dense(30, rows=4).fill(1.0)
    b = a.derive().fill(1.0)
    data = ps2.parallelize([0], n_partitions=1)

    def task(ctx, iterator):
        list(iterator)
        a.pull(task_ctx=ctx)  # warm the routing cache
        clock = ps2.cluster.clock
        t0 = clock.now(ctx.executor)
        a.iaxpy(b, 1.0, task_ctx=ctx)
        return [clock.now(ctx.executor) - t0]

    (duration,) = data.map_partitions_with_context(task).collect()
    # No blocking response: only the client RPC CPU charge lands.
    assert duration < 1e-4
    assert np.allclose(a.pull(), 2.0)


def test_worker_pull_waits_for_responses(ps2):
    a = ps2.dense(30, rows=4).fill(3.0)
    data = ps2.parallelize([0], n_partitions=1)

    def task(ctx, iterator):
        list(iterator)
        clock = ps2.cluster.clock
        t0 = clock.now(ctx.executor)
        values = a.pull(task_ctx=ctx)
        return [(clock.now(ctx.executor) - t0, float(values.sum()))]

    ((duration, total),) = data.map_partitions_with_context(task).collect()
    assert total == pytest.approx(90.0)
    # A pull blocks for at least one network round trip.
    assert duration >= 2 * ps2.cluster.config.network.latency


def test_zip_from_worker(ps2):
    w = ps2.dense(12, rows=4).fill(1.0)
    g = w.derive().fill(2.0)
    data = ps2.parallelize([0], n_partitions=1)

    def task(ctx, iterator):
        list(iterator)
        result = w.zip(g).map_partitions(
            lambda arrays: float(arrays[1].sum()), task_ctx=ctx
        )
        return [result.sum()]

    (total,) = data.map_partitions_with_context(task).collect()
    assert total == pytest.approx(24.0)


# -- protocol byte accounting ----------------------------------------------------

def test_sparse_pull_bytes_match_formulas(ps2):
    a = ps2.dense(3000)
    indices = np.arange(100)
    before_req = ps2.metrics.bytes_for_tag("pull:req")
    before_resp = ps2.metrics.bytes_for_tag("pull:resp")
    a.pull(indices=indices)
    req = ps2.metrics.bytes_for_tag("pull:req") - before_req
    resp = ps2.metrics.bytes_for_tag("pull:resp") - before_resp
    # All 100 contiguous indices land on a single server shard (dim/3=1000).
    assert req == messages.sparse_pull_request_bytes(100) \
        + MESSAGE_OVERHEAD_BYTES
    assert resp == messages.sparse_pull_response_bytes(100) \
        + MESSAGE_OVERHEAD_BYTES


def test_dense_pull_bytes_match_formulas(ps2):
    a = ps2.dense(3000)
    before_resp = ps2.metrics.bytes_for_tag("pull:resp")
    a.pull()
    resp = ps2.metrics.bytes_for_tag("pull:resp") - before_resp
    expected = sum(
        messages.dense_pull_response_bytes(stop - start)
        + MESSAGE_OVERHEAD_BYTES
        for _s, start, stop in a.layout.shards_for_row(a.row)
    )
    assert resp == expected


def test_sparse_push_bytes_match_formulas(ps2):
    a = ps2.dense(3000)
    before = ps2.metrics.bytes_for_tag("push:req")
    a.add(np.ones(50), indices=np.arange(50))
    pushed = ps2.metrics.bytes_for_tag("push:req") - before
    assert pushed == messages.sparse_push_bytes(50) + MESSAGE_OVERHEAD_BYTES


def test_kernel_request_bytes_scale_with_operands(ps2):
    a = ps2.dense(300, rows=8)
    b = a.derive()
    c = a.derive()
    before = ps2.metrics.bytes_for_tag("kernel:req")
    a.zip(b, c).map_partitions(lambda arrays: None, wait=False)
    sent = ps2.metrics.bytes_for_tag("kernel:req") - before
    n_shards = len(a.layout.shards_for_row(a.row))
    assert sent == n_shards * (
        messages.scalar_op_request_bytes(3) + MESSAGE_OVERHEAD_BYTES
    )


def test_aggregate_ships_scalars_only(ps2):
    a = ps2.dense(100000)
    before = ps2.metrics.bytes_for_tag("rowagg:resp")
    a.sum()
    shipped = ps2.metrics.bytes_for_tag("rowagg:resp") - before
    # Three servers, one scalar each — independent of the 100K dimension.
    assert shipped == 3 * (
        messages.scalar_response_bytes() + MESSAGE_OVERHEAD_BYTES
    )
